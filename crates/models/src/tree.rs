//! Histogram-based CART regression trees.
//!
//! The base learner for [`crate::Gbdt`]. Features are quantile-binned
//! once per training run (LightGBM-style — the library the paper's
//! Music/Credit/Tracking Kaggle entries used), so finding a split is a
//! linear scan over at most 64 bins per feature.

use serde::{Deserialize, Serialize};
use willump_data::Matrix;

use crate::ModelError;

/// Maximum number of histogram bins per feature.
pub const MAX_BINS: usize = 64;

/// Hyperparameters for a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of rows in a leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (XGBoost-style lambda).
    pub lambda: f64,
    /// Minimum gain for a split to be kept.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 5,
            min_samples_leaf: 10,
            lambda: 1.0,
            min_gain: 1e-6,
        }
    }
}

/// Per-feature quantile bin edges shared by all trees of an ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinMapper {
    /// `edges[f]` are ascending thresholds; bin b holds values in
    /// `(edges[b-1], edges[b]]`, with the last bin unbounded above.
    edges: Vec<Vec<f64>>,
}

impl BinMapper {
    /// Build quantile bin edges from training features.
    pub fn fit(x: &Matrix) -> BinMapper {
        let n = x.n_rows();
        let mut edges = Vec::with_capacity(x.n_cols());
        for f in 0..x.n_cols() {
            let mut vals = x.column(f);
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            let mut e = Vec::new();
            if vals.len() > 1 {
                let bins = vals.len().min(MAX_BINS);
                for b in 1..bins {
                    // The edge is the *largest value of the left group*,
                    // so `value <= edge` routes it left.
                    let idx = (b * vals.len() / bins).clamp(1, vals.len() - 1);
                    let edge = vals[idx - 1];
                    if e.last().is_none_or(|last| *last < edge) {
                        e.push(edge);
                    }
                }
            }
            let _ = n;
            edges.push(e);
        }
        BinMapper { edges }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins for feature `f` (≥ 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// Bin index of `value` for feature `f`.
    pub fn bin(&self, f: usize, value: f64) -> u8 {
        let e = &self.edges[f];
        // Values <= edges[i] fall in bin i; above all edges -> last bin.
        let idx = e.partition_point(|edge| *edge < value);
        idx as u8
    }

    /// The numeric threshold separating bin `b` from bin `b+1` of
    /// feature `f` (i.e. go left iff `value <= threshold`).
    pub fn threshold(&self, f: usize, b: u8) -> f64 {
        self.edges[f][b as usize]
    }

    /// Bin an entire matrix (row-major `u8` bins).
    pub fn bin_matrix(&self, x: &Matrix) -> Vec<u8> {
        let mut out = Vec::with_capacity(x.n_rows() * x.n_cols());
        for r in 0..x.n_rows() {
            for (f, v) in x.row(r).iter().enumerate() {
                out.push(self.bin(f, *v));
            }
        }
        out
    }
}

/// One node of a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Split {
        feature: u32,
        /// Go left iff `value <= threshold`.
        threshold: f64,
        left: u32,
        right: u32,
    },
    Leaf {
        value: f64,
    },
}

/// A regression tree fit to gradient/hessian targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Total split gain credited to each feature (for importances).
    feature_gains: Vec<f64>,
}

struct BuildCtx<'a> {
    bins: &'a [u8],
    n_features: usize,
    mapper: &'a BinMapper,
    grad: &'a [f64],
    hess: &'a [f64],
    params: &'a TreeParams,
}

impl DecisionTree {
    /// Fit a tree minimizing the second-order objective on the given
    /// gradients and hessians (XGBoost-style), using pre-binned
    /// features.
    ///
    /// # Errors
    /// Returns [`ModelError::ShapeMismatch`] if `grad`/`hess` lengths
    /// disagree with the row count implied by `bins`.
    pub fn fit_gradients(
        bins: &[u8],
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        params: &TreeParams,
    ) -> Result<DecisionTree, ModelError> {
        let n_features = mapper.n_features();
        if n_features == 0 || !bins.len().is_multiple_of(n_features) {
            return Err(ModelError::ShapeMismatch {
                context: "binned buffer does not divide into feature rows".into(),
            });
        }
        let n_rows = bins.len() / n_features;
        if grad.len() != n_rows || hess.len() != n_rows {
            return Err(ModelError::ShapeMismatch {
                context: format!(
                    "{n_rows} binned rows vs {} gradients / {} hessians",
                    grad.len(),
                    hess.len()
                ),
            });
        }
        if n_rows == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        let ctx = BuildCtx {
            bins,
            n_features,
            mapper,
            grad,
            hess,
            params,
        };
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            feature_gains: vec![0.0; n_features],
        };
        let rows: Vec<u32> = (0..n_rows as u32).collect();
        tree.build(&ctx, rows, 0);
        Ok(tree)
    }

    /// Recursively build the subtree over `rows`, returning its index.
    fn build(&mut self, ctx: &BuildCtx<'_>, rows: Vec<u32>, depth: usize) -> u32 {
        let (g_total, h_total) = rows.iter().fold((0.0, 0.0), |(g, h), &r| {
            (g + ctx.grad[r as usize], h + ctx.hess[r as usize])
        });
        let leaf_value = -g_total / (h_total + ctx.params.lambda);
        let make_leaf = |tree: &mut DecisionTree| {
            tree.nodes.push(Node::Leaf { value: leaf_value });
            (tree.nodes.len() - 1) as u32
        };
        if depth >= ctx.params.max_depth || rows.len() < 2 * ctx.params.min_samples_leaf {
            return make_leaf(self);
        }
        let parent_score = g_total * g_total / (h_total + ctx.params.lambda);
        let mut best: Option<(usize, u8, f64)> = None; // (feature, bin, gain)
        let mut hist_g = [0.0f64; MAX_BINS];
        let mut hist_h = [0.0f64; MAX_BINS];
        let mut hist_n = [0u32; MAX_BINS];
        for f in 0..ctx.n_features {
            let n_bins = ctx.mapper.n_bins(f);
            if n_bins < 2 {
                continue;
            }
            hist_g[..n_bins].fill(0.0);
            hist_h[..n_bins].fill(0.0);
            hist_n[..n_bins].fill(0);
            for &r in &rows {
                let b = ctx.bins[r as usize * ctx.n_features + f] as usize;
                hist_g[b] += ctx.grad[r as usize];
                hist_h[b] += ctx.hess[r as usize];
                hist_n[b] += 1;
            }
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            let mut n_left = 0u32;
            for b in 0..n_bins - 1 {
                g_left += hist_g[b];
                h_left += hist_h[b];
                n_left += hist_n[b];
                let n_right = rows.len() as u32 - n_left;
                if (n_left as usize) < ctx.params.min_samples_leaf
                    || (n_right as usize) < ctx.params.min_samples_leaf
                {
                    continue;
                }
                let g_right = g_total - g_left;
                let h_right = h_total - h_left;
                let gain = g_left * g_left / (h_left + ctx.params.lambda)
                    + g_right * g_right / (h_right + ctx.params.lambda)
                    - parent_score;
                if gain > ctx.params.min_gain && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, b as u8, gain));
                }
            }
        }
        let Some((feature, bin, gain)) = best else {
            return make_leaf(self);
        };
        self.feature_gains[feature] += gain;
        let threshold = ctx.mapper.threshold(feature, bin);
        let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows
            .iter()
            .partition(|&&r| ctx.bins[r as usize * ctx.n_features + feature] <= bin);
        let node_idx = self.nodes.len() as u32;
        self.nodes.push(Node::Split {
            feature: feature as u32,
            threshold,
            left: 0,
            right: 0,
        });
        let left = self.build(ctx, left_rows, depth + 1);
        let right = self.build(ctx, right_rows, depth + 1);
        match &mut self.nodes[node_idx as usize] {
            Node::Split {
                left: l, right: r, ..
            } => {
                *l = left;
                *r = right;
            }
            Node::Leaf { .. } => unreachable!("just pushed a split"),
        }
        node_idx
    }

    /// Predict the leaf value for one dense feature row.
    ///
    /// # Panics
    /// Panics if `row` is narrower than the features the tree splits on.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total split gain credited to each feature.
    pub fn feature_gains(&self) -> &[f64] {
        &self.feature_gains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // Target is a step function of feature 0; feature 1 is noise.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let x0 = i as f64 / 200.0;
            let x1 = ((i * 31) % 200) as f64 / 200.0;
            rows.push(vec![x0, x1]);
            y.push(if x0 > 0.5 { 2.0 } else { -1.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    fn fit_regression(x: &Matrix, y: &[f64], params: &TreeParams) -> (DecisionTree, BinMapper) {
        let mapper = BinMapper::fit(x);
        let bins = mapper.bin_matrix(x);
        // Squared loss: grad = pred - y with pred = 0, hess = 1.
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; y.len()];
        let tree = DecisionTree::fit_gradients(&bins, &mapper, &grad, &hess, params).unwrap();
        (tree, mapper)
    }

    #[test]
    fn bin_mapper_quantiles() {
        let x = Matrix::from_rows(&(0..100).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let m = BinMapper::fit(&x);
        assert_eq!(m.n_features(), 1);
        assert!(m.n_bins(0) <= MAX_BINS);
        assert!(m.n_bins(0) > 32);
        // Monotone binning.
        assert!(m.bin(0, 0.0) <= m.bin(0, 50.0));
        assert!(m.bin(0, 50.0) <= m.bin(0, 99.0));
    }

    #[test]
    fn constant_feature_gets_single_bin() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let m = BinMapper::fit(&x);
        assert_eq!(m.n_bins(0), 1);
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data();
        let (tree, _) = fit_regression(&x, &y, &TreeParams::default());
        // With lambda=1 predictions shrink slightly; check sign and rough level.
        let lo = tree.predict_row(&[0.1, 0.5]);
        let hi = tree.predict_row(&[0.9, 0.5]);
        assert!(lo < -0.8, "lo {lo}");
        assert!(hi > 1.7, "hi {hi}");
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let (x, y) = step_data();
        let (tree, _) = fit_regression(
            &x,
            &y,
            &TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = step_data();
        let (tree, _) = fit_regression(
            &x,
            &y,
            &TreeParams {
                min_samples_leaf: 150,
                ..TreeParams::default()
            },
        );
        // 200 rows cannot split into two leaves of >= 150.
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn informative_feature_earns_the_gain() {
        let (x, y) = step_data();
        let (tree, _) = fit_regression(&x, &y, &TreeParams::default());
        let gains = tree.feature_gains();
        assert!(gains[0] > 0.0);
        assert!(gains[0] > gains[1] * 10.0, "gains {gains:?}");
    }

    #[test]
    fn shape_validation() {
        let mapper = BinMapper::fit(&Matrix::from_rows(&[vec![1.0], vec![2.0]]));
        let bins = vec![0u8, 1];
        assert!(DecisionTree::fit_gradients(
            &bins,
            &mapper,
            &[1.0],
            &[1.0, 1.0],
            &TreeParams::default()
        )
        .is_err());
    }
}
