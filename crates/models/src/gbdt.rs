//! Gradient-boosted decision trees for classification and regression.
//!
//! The "GBDT" model of paper Table 1 (Music, Credit, Tracking). Trees
//! are fit to first/second-order gradients of logistic loss
//! (classification) or squared loss (regression) over histogram-binned
//! features, with per-feature gain importances — the importances
//! Willump's cascade optimizer consumes for ensembles.

use serde::{Deserialize, Serialize};
use willump_data::{FeatureMatrix, Matrix};

use crate::tree::{BinMapper, DecisionTree, TreeParams};
use crate::ModelError;

/// Objective of a [`Gbdt`] ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GbdtObjective {
    /// Binary classification with logistic loss; scores are
    /// probabilities.
    Logistic,
    /// Regression with squared loss; scores are raw predictions.
    Squared,
}

/// Hyperparameters for [`Gbdt`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Base-learner parameters.
    pub tree: TreeParams,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 50,
            learning_rate: 0.1,
            tree: TreeParams::default(),
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A trained gradient-boosted tree ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbdt {
    objective: GbdtObjective,
    base_score: f64,
    learning_rate: f64,
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl Gbdt {
    /// Fit an ensemble.
    ///
    /// Sparse inputs are densified: GBDTs in the benchmarks run on
    /// narrow tabular features, so this mirrors how the original
    /// pipelines call LightGBM.
    ///
    /// # Errors
    /// Returns [`ModelError`] on empty/mismatched data or, for the
    /// logistic objective, labels outside {0, 1}.
    pub fn fit(
        x: &FeatureMatrix,
        y: &[f64],
        objective: GbdtObjective,
        params: &GbdtParams,
    ) -> Result<Gbdt, ModelError> {
        if x.n_rows() == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        if x.n_rows() != y.len() {
            return Err(ModelError::ShapeMismatch {
                context: format!("{} feature rows vs {} labels", x.n_rows(), y.len()),
            });
        }
        if objective == GbdtObjective::Logistic && y.iter().any(|v| *v != 0.0 && *v != 1.0) {
            return Err(ModelError::BadLabels {
                reason: "logistic GBDT expects labels in {0, 1}".into(),
            });
        }
        let dense = x.to_dense();
        let mapper = BinMapper::fit(&dense);
        let bins = mapper.bin_matrix(&dense);
        let n = y.len();

        let base_score = match objective {
            GbdtObjective::Logistic => {
                let p = (y.iter().sum::<f64>() / n as f64).clamp(1e-6, 1.0 - 1e-6);
                (p / (1.0 - p)).ln()
            }
            GbdtObjective::Squared => y.iter().sum::<f64>() / n as f64,
        };

        let mut raw = vec![base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            match objective {
                GbdtObjective::Logistic => {
                    for i in 0..n {
                        let p = sigmoid(raw[i]);
                        grad[i] = p - y[i];
                        hess[i] = (p * (1.0 - p)).max(1e-9);
                    }
                }
                GbdtObjective::Squared => {
                    for i in 0..n {
                        grad[i] = raw[i] - y[i];
                        hess[i] = 1.0;
                    }
                }
            }
            let tree = DecisionTree::fit_gradients(&bins, &mapper, &grad, &hess, &params.tree)?;
            for (i, r) in raw.iter_mut().enumerate() {
                *r += params.learning_rate * tree.predict_row(dense.row(i));
            }
            trees.push(tree);
        }
        Ok(Gbdt {
            objective,
            base_score,
            learning_rate: params.learning_rate,
            trees,
            n_features: dense.n_cols(),
        })
    }

    /// The ensemble objective.
    pub fn objective(&self) -> GbdtObjective {
        self.objective
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features expected.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Raw (margin) prediction for one dense row.
    pub fn predict_raw_row(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Score one dense row: probability (logistic) or value (squared).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let raw = self.predict_raw_row(row);
        match self.objective {
            GbdtObjective::Logistic => sigmoid(raw),
            GbdtObjective::Squared => raw,
        }
    }

    /// Score every row of `x`.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<f64> {
        let dense = x.to_dense();
        (0..dense.n_rows())
            .map(|r| self.predict_row(dense.row(r)))
            .collect()
    }

    /// Score every row of a dense matrix without conversion.
    pub fn predict_dense(&self, x: &Matrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|r| self.predict_row(x.row(r)))
            .collect()
    }

    /// Total split gain per feature, normalized to sum to 1 (zero
    /// vector when the ensemble never split).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut gains = vec![0.0; self.n_features];
        for t in &self.trees {
            for (g, tg) in gains.iter_mut().zip(t.feature_gains()) {
                *g += tg;
            }
        }
        let total: f64 = gains.iter().sum();
        if total > 0.0 {
            for g in &mut gains {
                *g /= total;
            }
        }
        gains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like() -> (FeatureMatrix, Vec<f64>) {
        // Nonlinear target: y = 1 iff (x0 > 0.5) xor (x1 > 0.5).
        // Linear models fail here; trees should not.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = (i % 20) as f64 / 20.0;
            let b = (i / 20) as f64 / 20.0;
            rows.push(vec![a, b]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        (FeatureMatrix::Dense(Matrix::from_rows(&rows)), y)
    }

    #[test]
    fn classifier_learns_xor() {
        let (x, y) = xor_like();
        let m = Gbdt::fit(&x, &y, GbdtObjective::Logistic, &GbdtParams::default()).unwrap();
        let p = m.predict(&x);
        let acc = p
            .iter()
            .zip(&y)
            .filter(|(pi, yi)| (**pi > 0.5) == (**yi > 0.5))
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn regressor_fits_smooth_function() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = i as f64 / 300.0;
            rows.push(vec![a]);
            y.push((a * 6.0).sin());
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let m = Gbdt::fit(
            &x,
            &y,
            GbdtObjective::Squared,
            &GbdtParams {
                n_trees: 100,
                learning_rate: 0.2,
                tree: TreeParams {
                    max_depth: 4,
                    min_samples_leaf: 5,
                    ..TreeParams::default()
                },
            },
        )
        .unwrap();
        let pred = m.predict(&x);
        let mse: f64 = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let (x, y) = xor_like();
        let m = Gbdt::fit(&x, &y, GbdtObjective::Logistic, &GbdtParams::default()).unwrap();
        for p in m.predict(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn importances_sum_to_one_and_favor_signal() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let signal = (i % 2) as f64;
            // Noise is constant across each (label 0, label 1) pair, so
            // it carries no information about the label.
            let noise = ((i / 2 * 37) % 100) as f64 / 100.0;
            rows.push(vec![signal, noise]);
            y.push(signal);
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let m = Gbdt::fit(&x, &y, GbdtObjective::Logistic, &GbdtParams::default()).unwrap();
        let imp = m.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.9, "importances {imp:?}");
    }

    #[test]
    fn label_validation() {
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[vec![1.0], vec![2.0]]));
        assert!(matches!(
            Gbdt::fit(
                &x,
                &[0.3, 0.7],
                GbdtObjective::Logistic,
                &GbdtParams::default()
            ),
            Err(ModelError::BadLabels { .. })
        ));
        // Same labels are fine for regression.
        assert!(Gbdt::fit(
            &x,
            &[0.3, 0.7],
            GbdtObjective::Squared,
            &GbdtParams::default()
        )
        .is_ok());
    }

    #[test]
    fn empty_and_mismatched_inputs() {
        let x = FeatureMatrix::Dense(Matrix::zeros(0, 1));
        assert!(matches!(
            Gbdt::fit(&x, &[], GbdtObjective::Squared, &GbdtParams::default()),
            Err(ModelError::EmptyTrainingSet)
        ));
        let x = FeatureMatrix::Dense(Matrix::zeros(2, 1));
        assert!(Gbdt::fit(&x, &[1.0], GbdtObjective::Squared, &GbdtParams::default()).is_err());
    }

    #[test]
    fn single_row_matches_batch() {
        let (x, y) = xor_like();
        let m = Gbdt::fit(&x, &y, GbdtObjective::Logistic, &GbdtParams::default()).unwrap();
        let batch = m.predict(&x);
        let dense = x.to_dense();
        for r in (0..dense.n_rows()).step_by(37) {
            assert!((m.predict_row(dense.row(r)) - batch[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn base_score_handles_all_one_class() {
        let x = FeatureMatrix::Dense(Matrix::from_rows(&vec![vec![1.0]; 20]));
        let y = vec![1.0; 20];
        let m = Gbdt::fit(&x, &y, GbdtObjective::Logistic, &GbdtParams::default()).unwrap();
        assert!(m.predict_row(&[1.0]) > 0.99);
    }
}
