//! Uniform model specification and trained-model dispatch.
//!
//! Willump's cascade optimizer trains *two* models from the same spec
//! — a small model on the efficient feature subset and a full model on
//! everything (paper §4.2, "Training Models") — so specs must be
//! reusable across feature widths. [`ModelSpec::fit`] is that factory;
//! [`TrainedModel`] is the width-specific result.

use serde::{Deserialize, Serialize};
use willump_data::FeatureMatrix;

use crate::forest::{ForestObjective, ForestParams, RandomForest};
use crate::gbdt::{Gbdt, GbdtObjective, GbdtParams};
use crate::linear::{LinearParams, LinearRegression, LogisticParams, LogisticRegression};
use crate::mlp::{Mlp, MlpParams};
use crate::ModelError;

/// The prediction task of a pipeline (paper Table 1's "Prediction
/// Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Binary classification; scores are positive-class probabilities.
    BinaryClassification,
    /// Regression; scores are predicted values.
    Regression,
}

/// A trainable model family with hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Logistic regression (classification).
    Logistic(LogisticParams),
    /// Ordinary least squares (regression).
    Linear(LinearParams),
    /// GBDT with logistic loss (classification).
    GbdtClassifier(GbdtParams),
    /// GBDT with squared loss (regression).
    GbdtRegressor(GbdtParams),
    /// Random forest with vote averaging (classification).
    ForestClassifier(ForestParams),
    /// Random forest with leaf averaging (regression).
    ForestRegressor(ForestParams),
    /// MLP with sigmoid output (classification).
    MlpClassifier(MlpParams),
    /// MLP with linear output (regression).
    MlpRegressor(MlpParams),
}

impl ModelSpec {
    /// The task this spec trains for.
    pub fn task(&self) -> Task {
        match self {
            ModelSpec::Logistic(_)
            | ModelSpec::GbdtClassifier(_)
            | ModelSpec::ForestClassifier(_)
            | ModelSpec::MlpClassifier(_) => Task::BinaryClassification,
            ModelSpec::Linear(_)
            | ModelSpec::GbdtRegressor(_)
            | ModelSpec::ForestRegressor(_)
            | ModelSpec::MlpRegressor(_) => Task::Regression,
        }
    }

    /// Train on features `x` and labels `y`.
    ///
    /// # Errors
    /// Propagates the underlying model's validation errors.
    pub fn fit(&self, x: &FeatureMatrix, y: &[f64], seed: u64) -> Result<TrainedModel, ModelError> {
        Ok(match self {
            ModelSpec::Logistic(p) => {
                TrainedModel::Logistic(LogisticRegression::fit(x, y, p, seed)?)
            }
            ModelSpec::Linear(p) => TrainedModel::Linear(LinearRegression::fit(x, y, p, seed)?),
            ModelSpec::GbdtClassifier(p) => {
                TrainedModel::Gbdt(Gbdt::fit(x, y, GbdtObjective::Logistic, p)?)
            }
            ModelSpec::GbdtRegressor(p) => {
                TrainedModel::Gbdt(Gbdt::fit(x, y, GbdtObjective::Squared, p)?)
            }
            ModelSpec::ForestClassifier(p) => TrainedModel::Forest(RandomForest::fit(
                x,
                y,
                ForestObjective::Classification,
                p,
                seed,
            )?),
            ModelSpec::ForestRegressor(p) => TrainedModel::Forest(RandomForest::fit(
                x,
                y,
                ForestObjective::Regression,
                p,
                seed,
            )?),
            ModelSpec::MlpClassifier(p) => {
                let params = MlpParams {
                    classification: true,
                    ..p.clone()
                };
                TrainedModel::Mlp(Mlp::fit(x, y, &params, seed)?)
            }
            ModelSpec::MlpRegressor(p) => {
                let params = MlpParams {
                    classification: false,
                    ..p.clone()
                };
                TrainedModel::Mlp(Mlp::fit(x, y, &params, seed)?)
            }
        })
    }
}

/// A trained model of any supported family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainedModel {
    /// Trained logistic regression.
    Logistic(LogisticRegression),
    /// Trained linear regression.
    Linear(LinearRegression),
    /// Trained GBDT (either objective).
    Gbdt(Gbdt),
    /// Trained random forest (either objective).
    Forest(RandomForest),
    /// Trained MLP (either output).
    Mlp(Mlp),
}

impl TrainedModel {
    /// The model's task.
    pub fn task(&self) -> Task {
        match self {
            TrainedModel::Logistic(_) => Task::BinaryClassification,
            TrainedModel::Linear(_) => Task::Regression,
            TrainedModel::Gbdt(g) => match g.objective() {
                GbdtObjective::Logistic => Task::BinaryClassification,
                GbdtObjective::Squared => Task::Regression,
            },
            TrainedModel::Forest(f) => match f.objective() {
                ForestObjective::Classification => Task::BinaryClassification,
                ForestObjective::Regression => Task::Regression,
            },
            TrainedModel::Mlp(m) => {
                if m.is_classifier() {
                    Task::BinaryClassification
                } else {
                    Task::Regression
                }
            }
        }
    }

    /// Score every row of `x`: positive-class probability for
    /// classification, predicted value for regression.
    pub fn predict_scores(&self, x: &FeatureMatrix) -> Vec<f64> {
        match self {
            TrainedModel::Logistic(m) => m.predict_proba(x),
            TrainedModel::Linear(m) => m.predict(x),
            TrainedModel::Gbdt(m) => m.predict(x),
            TrainedModel::Forest(m) => m.predict(x),
            TrainedModel::Mlp(m) => m.predict(x),
        }
    }

    /// Score one row given sparse `(column, value)` entries.
    ///
    /// For GBDT this materializes a dense row, since trees index
    /// features positionally.
    pub fn predict_score_row(&self, entries: &[(usize, f64)], n_cols: usize) -> f64 {
        match self {
            TrainedModel::Logistic(m) => m.predict_proba_row(entries),
            TrainedModel::Linear(m) => m.predict_row(entries),
            TrainedModel::Mlp(m) => m.predict_row(entries),
            TrainedModel::Gbdt(m) => {
                let mut row = vec![0.0; n_cols];
                for (c, v) in entries {
                    row[*c] = *v;
                }
                m.predict_row(&row)
            }
            TrainedModel::Forest(m) => {
                let mut row = vec![0.0; n_cols];
                for (c, v) in entries {
                    row[*c] = *v;
                }
                m.predict_row(&row)
            }
        }
    }

    /// Hard 0/1 predictions at threshold 0.5 (classification only).
    pub fn predict_classes(&self, x: &FeatureMatrix) -> Vec<f64> {
        self.predict_scores(x)
            .into_iter()
            .map(|p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Classification confidence per row: `max(p, 1 - p)`.
    ///
    /// This is the quantity compared against Willump's cascade
    /// threshold (paper §4.2, "Identifying the Cascade Threshold").
    pub fn confidences(&self, x: &FeatureMatrix) -> Vec<f64> {
        self.predict_scores(x)
            .into_iter()
            .map(|p| p.max(1.0 - p))
            .collect()
    }

    /// Native feature importances, if the family has them: |coef| for
    /// linear models (to be scaled by feature magnitude), normalized
    /// split gain for GBDTs. MLPs return `None` (the paper's GBDT
    /// proxy is implemented in [`crate::importance`]).
    pub fn native_importances(&self) -> Option<Vec<f64>> {
        match self {
            TrainedModel::Logistic(m) => Some(m.weights().iter().map(|w| w.abs()).collect()),
            TrainedModel::Linear(m) => Some(m.weights().iter().map(|w| w.abs()).collect()),
            TrainedModel::Gbdt(m) => Some(m.feature_importances()),
            TrainedModel::Forest(m) => Some(m.feature_importances()),
            TrainedModel::Mlp(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::Matrix;

    fn tiny() -> (FeatureMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = (i % 10) as f64 / 10.0;
            rows.push(vec![a, 1.0 - a]);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        (FeatureMatrix::Dense(Matrix::from_rows(&rows)), y)
    }

    #[test]
    fn spec_tasks() {
        assert_eq!(
            ModelSpec::Logistic(LogisticParams::default()).task(),
            Task::BinaryClassification
        );
        assert_eq!(
            ModelSpec::GbdtRegressor(GbdtParams::default()).task(),
            Task::Regression
        );
        assert_eq!(
            ModelSpec::MlpClassifier(MlpParams::default()).task(),
            Task::BinaryClassification
        );
    }

    #[test]
    fn every_family_trains_and_scores() {
        let (x, y) = tiny();
        let values: Vec<f64> = (0..40).map(|i| i as f64 / 40.0).collect();
        let specs = [
            ModelSpec::Logistic(LogisticParams::default()),
            ModelSpec::GbdtClassifier(GbdtParams::default()),
            ModelSpec::MlpClassifier(MlpParams::default()),
        ];
        for spec in specs {
            let m = spec.fit(&x, &y, 1).unwrap();
            assert_eq!(m.task(), Task::BinaryClassification);
            let p = m.predict_scores(&x);
            assert_eq!(p.len(), 40);
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        let specs = [
            ModelSpec::Linear(LinearParams::default()),
            ModelSpec::GbdtRegressor(GbdtParams::default()),
            ModelSpec::MlpRegressor(MlpParams::default()),
        ];
        for spec in specs {
            let m = spec.fit(&x, &values, 1).unwrap();
            assert_eq!(m.task(), Task::Regression);
            assert_eq!(m.predict_scores(&x).len(), 40);
        }
    }

    #[test]
    fn confidence_is_distance_from_half() {
        let (x, y) = tiny();
        let m = ModelSpec::Logistic(LogisticParams::default())
            .fit(&x, &y, 3)
            .unwrap();
        let p = m.predict_scores(&x);
        let c = m.confidences(&x);
        for (pi, ci) in p.iter().zip(&c) {
            assert!((ci - pi.max(1.0 - pi)).abs() < 1e-12);
            assert!(*ci >= 0.5);
        }
    }

    #[test]
    fn row_scoring_matches_batch_for_gbdt() {
        let (x, y) = tiny();
        let m = ModelSpec::GbdtClassifier(GbdtParams::default())
            .fit(&x, &y, 1)
            .unwrap();
        let batch = m.predict_scores(&x);
        for (r, b) in batch.iter().enumerate() {
            let one = m.predict_score_row(&x.row_entries(r), x.n_cols());
            assert!((one - b).abs() < 1e-12);
        }
    }

    #[test]
    fn native_importances_presence() {
        let (x, y) = tiny();
        let lg = ModelSpec::Logistic(LogisticParams::default())
            .fit(&x, &y, 1)
            .unwrap();
        assert!(lg.native_importances().is_some());
        let mlp = ModelSpec::MlpClassifier(MlpParams::default())
            .fit(&x, &y, 1)
            .unwrap();
        assert!(mlp.native_importances().is_none());
    }

    #[test]
    fn predict_classes_thresholds() {
        let (x, y) = tiny();
        let m = ModelSpec::Logistic(LogisticParams::default())
            .fit(&x, &y, 2)
            .unwrap();
        let cls = m.predict_classes(&x);
        assert!(cls.iter().all(|c| *c == 0.0 || *c == 1.0));
    }
}
