//! Prediction-importance estimators (paper §4.2, "Computing IFV
//! Statistics").
//!
//! Willump needs a per-feature importance for every model family:
//!
//! - **linear models**: |coefficient| scaled by the feature's average
//!   magnitude,
//! - **ensembles (GBDT)**: permutation importance — the increase in
//!   prediction error when one feature's values are shuffled,
//! - **models with no native metric (MLP)**: train a proxy GBDT on the
//!   same data and use its importances.
//!
//! Group (IFV-level) importance is the sum over the IFV's features.

use willump_data::FeatureMatrix;

use crate::gbdt::{Gbdt, GbdtObjective, GbdtParams};
use crate::metrics;
use crate::spec::{Task, TrainedModel};
use crate::ModelError;

/// splitmix64 mixer for deterministic permutation shuffles.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Linear-model importance: `|coef_j| * mean(|x_j|)`.
///
/// # Panics
/// Panics if `coefs.len() != x.n_cols()`.
pub fn linear_importances(coefs: &[f64], x: &FeatureMatrix) -> Vec<f64> {
    assert_eq!(coefs.len(), x.n_cols(), "coefficient width mismatch");
    let mean_abs = match x {
        FeatureMatrix::Dense(m) => m.column_mean_abs(),
        FeatureMatrix::Sparse(m) => m.column_mean_abs(),
    };
    coefs
        .iter()
        .zip(&mean_abs)
        .map(|(c, m)| c.abs() * m)
        .collect()
}

/// Permutation importance of every feature: the drop in quality
/// (accuracy for classification, negative MSE for regression) when
/// that feature's column is shuffled while others are left unchanged.
///
/// Negative drops are clamped to zero — shuffling a useless feature
/// can improve error by chance, but "negative importance" has no
/// meaning for cascade selection.
pub fn permutation_importances(
    model: &TrainedModel,
    x: &FeatureMatrix,
    y: &[f64],
    seed: u64,
) -> Vec<f64> {
    let dense = x.to_dense();
    let n = dense.n_rows();
    let base_scores = model.predict_scores(x);
    let base_quality = quality(model.task(), &base_scores, y);
    let mut out = Vec::with_capacity(dense.n_cols());
    let mut state = seed ^ 0xABCD_EF01_2345_6789;
    for f in 0..dense.n_cols() {
        // Deterministic shuffle of column f.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (mix(&mut state) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut shuffled = dense.clone();
        for (r, &src) in perm.iter().enumerate() {
            let v = dense.get(src, f);
            shuffled.set(r, f, v);
        }
        let scores = model.predict_scores(&FeatureMatrix::Dense(shuffled));
        let q = quality(model.task(), &scores, y);
        out.push((base_quality - q).max(0.0));
    }
    out
}

fn quality(task: Task, scores: &[f64], y: &[f64]) -> f64 {
    match task {
        Task::BinaryClassification => metrics::accuracy(scores, y),
        Task::Regression => -metrics::mse(scores, y),
    }
}

/// Row cap for the GBDT proxy's training sample.
const PROXY_MAX_ROWS: usize = 1_000;
/// Feature cap for the GBDT proxy (top columns by mass).
const PROXY_MAX_FEATURES: usize = 256;

/// GBDT-proxy importances for models with no native metric (the
/// paper's fallback for neural nets): train a GBDT on `(x, y)` and
/// return its gain importances.
///
/// Proxy training is bounded — at most `PROXY_MAX_ROWS` (1 000) rows
/// and the `PROXY_MAX_FEATURES` (256) columns with the largest mass
/// (other columns report zero importance). Feature selection by proxy
/// is routinely done on subsamples; unbounded proxy training on a
/// wide TF-IDF matrix would cost more than the model being optimized.
///
/// # Errors
/// Propagates GBDT training errors.
pub fn gbdt_proxy_importances(
    x: &FeatureMatrix,
    y: &[f64],
    task: Task,
) -> Result<Vec<f64>, ModelError> {
    let n_rows = x.n_rows().min(PROXY_MAX_ROWS);
    let n_cols = x.n_cols();

    // Column mass over the sampled rows; densify only the selected
    // columns.
    let mut mass = vec![0.0f64; n_cols];
    for r in 0..n_rows {
        for (c, v) in x.row_entries(r) {
            mass[c] += v.abs();
        }
    }
    let mut order: Vec<usize> = (0..n_cols).collect();
    order.sort_unstable_by(|&a, &b| {
        mass[b]
            .partial_cmp(&mass[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let selected: Vec<usize> = order
        .into_iter()
        .take(PROXY_MAX_FEATURES)
        .filter(|&c| mass[c] > 0.0)
        .collect();
    let mut col_to_slot = vec![usize::MAX; n_cols];
    for (slot, &c) in selected.iter().enumerate() {
        col_to_slot[c] = slot;
    }
    let mut sub = willump_data::Matrix::zeros(n_rows, selected.len().max(1));
    for r in 0..n_rows {
        for (c, v) in x.row_entries(r) {
            let slot = col_to_slot[c];
            if slot != usize::MAX {
                sub.row_mut(r)[slot] = v;
            }
        }
    }

    let params = GbdtParams {
        n_trees: 30,
        ..GbdtParams::default()
    };
    let objective = match task {
        Task::BinaryClassification => GbdtObjective::Logistic,
        Task::Regression => GbdtObjective::Squared,
    };
    let gbdt = Gbdt::fit(&FeatureMatrix::Dense(sub), &y[..n_rows], objective, &params)?;
    let proxy_imp = gbdt.feature_importances();
    let mut out = vec![0.0; n_cols];
    for (slot, &c) in selected.iter().enumerate() {
        out[c] = proxy_imp[slot];
    }
    Ok(out)
}

/// Importance of a feature *group* (an IFV): the sum of its features'
/// importances (paper §4.2: "The prediction importance of an IFV is
/// the sum of the prediction importances of its features").
///
/// # Panics
/// Panics if any index is out of bounds.
pub fn group_importance(per_feature: &[f64], group: &[usize]) -> f64 {
    group.iter().map(|&i| per_feature[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{LogisticParams, LogisticRegression};
    use crate::spec::ModelSpec;
    use willump_data::Matrix;

    /// Feature 0 decides the label; feature 1 is noise.
    fn signal_noise() -> (FeatureMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let signal = (i % 2) as f64;
            // Noise is constant across each (label 0, label 1) pair, so
            // it carries no information about the label.
            let noise = ((i / 2 * 37) % 100) as f64 / 100.0;
            rows.push(vec![signal, noise]);
            y.push(signal);
        }
        (FeatureMatrix::Dense(Matrix::from_rows(&rows)), y)
    }

    #[test]
    fn linear_importance_scales_by_magnitude() {
        // Same coefficient, different feature scales.
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 200.0]]));
        let imp = linear_importances(&[1.0, 1.0], &x);
        assert!(imp[1] > imp[0] * 50.0);
    }

    #[test]
    fn permutation_importance_finds_the_signal() {
        let (x, y) = signal_noise();
        let model = ModelSpec::GbdtClassifier(GbdtParams::default())
            .fit(&x, &y, 0)
            .unwrap();
        let imp = permutation_importances(&model, &x, &y, 7);
        assert!(imp[0] > 0.3, "signal importance {imp:?}");
        assert!(imp[1] < 0.05, "noise importance {imp:?}");
    }

    #[test]
    fn permutation_importance_regression() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let a = i as f64 / 100.0;
            rows.push(vec![a, 0.5]);
            y.push(3.0 * a);
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let model = ModelSpec::GbdtRegressor(GbdtParams::default())
            .fit(&x, &y, 0)
            .unwrap();
        let imp = permutation_importances(&model, &x, &y, 3);
        assert!(imp[0] > imp[1]);
        assert!(imp[1] >= 0.0);
    }

    #[test]
    fn gbdt_proxy_matches_signal() {
        let (x, y) = signal_noise();
        let imp = gbdt_proxy_importances(&x, &y, Task::BinaryClassification).unwrap();
        assert!(imp[0] > 0.9, "{imp:?}");
    }

    #[test]
    fn gbdt_proxy_bounds_wide_matrices() {
        // 600 columns, signal in column 500: the proxy must stay
        // bounded yet still surface the signal (column 500 carries
        // the most mass, so selection keeps it).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let mut r = vec![0.0; 600];
            let signal = (i % 2) as f64;
            r[500] = signal * 2.0 + 0.1;
            r[i % 400] = 0.01; // scattered low-mass noise
            rows.push(r);
            y.push(signal);
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let imp = gbdt_proxy_importances(&x, &y, Task::BinaryClassification).unwrap();
        assert_eq!(imp.len(), 600);
        assert!(imp[500] > 0.9, "signal col importance {}", imp[500]);
        // Unselected columns report exactly zero.
        let nonzero = imp.iter().filter(|v| **v > 0.0).count();
        assert!(nonzero <= PROXY_MAX_FEATURES, "nonzero {nonzero}");
    }

    #[test]
    fn group_importance_sums() {
        let per = [0.1, 0.2, 0.3];
        assert!((group_importance(&per, &[0, 2]) - 0.4).abs() < 1e-12);
        assert_eq!(group_importance(&per, &[]), 0.0);
    }

    #[test]
    fn logistic_coefficients_feed_linear_importance() {
        let (x, y) = signal_noise();
        let m = LogisticRegression::fit(&x, &y, &LogisticParams::default(), 0).unwrap();
        let coefs: Vec<f64> = m.weights().to_vec();
        let imp = linear_importances(&coefs, &x);
        assert!(imp[0] > imp[1]);
    }
}
