//! Probability calibration for classifier scores.
//!
//! Willump's cascade threshold (paper §4.2) compares small-model
//! *confidences* against a cutoff, so the quality of the cascade's
//! accuracy/throughput tradeoff depends on how well those scores track
//! true correctness probabilities. GBDTs and MLPs are often
//! miscalibrated; this module provides the two standard fixes:
//!
//! - [`PlattScaler`]: fits a one-dimensional logistic regression
//!   `sigma(a * s + b)` over raw scores (Platt 1999),
//! - [`IsotonicCalibrator`]: pool-adjacent-violators (PAV) isotonic
//!   regression, a non-parametric monotone fit.
//!
//! Both expose `fit(scores, labels)` / `calibrate(score)` and are
//! evaluated with [`crate::metrics::brier_score`].

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// Platt scaling: logistic calibration `p = sigma(a * s + b)`.
///
/// Fit by gradient descent on log loss with the label smoothing from
/// Platt's original paper (targets `(n+ + 1) / (n+ + 2)` and
/// `1 / (n- + 2)` instead of hard 0/1), which keeps the fit stable
/// when one class is rare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlattScaler {
    a: f64,
    b: f64,
}

impl PlattScaler {
    /// Fit the scaler on held-out `(score, label)` pairs.
    ///
    /// # Errors
    /// Returns [`ModelError::ShapeMismatch`] when inputs are empty or
    /// mismatched and [`ModelError::BadLabels`] when only one class is
    /// present.
    pub fn fit(scores: &[f64], labels: &[f64]) -> Result<PlattScaler, ModelError> {
        if scores.is_empty() || scores.len() != labels.len() {
            return Err(ModelError::ShapeMismatch {
                context: format!(
                    "platt fit needs matching non-empty scores/labels, got {}/{}",
                    scores.len(),
                    labels.len()
                ),
            });
        }
        let n_pos = labels.iter().filter(|&&y| y > 0.5).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        if n_pos == 0.0 || n_neg == 0.0 {
            return Err(ModelError::BadLabels {
                reason: "platt fit needs both classes present".into(),
            });
        }
        // Platt's smoothed targets.
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&y| if y > 0.5 { t_pos } else { t_neg })
            .collect();

        // Gradient descent on log loss; the 1-D problem is convex and
        // well-conditioned after centering scores.
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        let mut a = 1.0;
        let mut b = 0.0;
        let lr = 0.5;
        let n = scores.len() as f64;
        for _ in 0..500 {
            let mut ga = 0.0;
            let mut gb = 0.0;
            for (&s, &t) in scores.iter().zip(&targets) {
                let z = a * (s - mean) + b;
                let p = sigmoid(z);
                let d = p - t;
                ga += d * (s - mean);
                gb += d;
            }
            a -= lr * ga / n;
            b -= lr * gb / n;
        }
        // Fold the centering into the intercept.
        Ok(PlattScaler { a, b: b - a * mean })
    }

    /// The slope of the fitted logistic map.
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// The intercept of the fitted logistic map.
    pub fn intercept(&self) -> f64 {
        self.b
    }

    /// Map a raw score to a calibrated probability.
    pub fn calibrate(&self, score: f64) -> f64 {
        sigmoid(self.a * score + self.b)
    }

    /// Calibrate a batch of scores.
    pub fn calibrate_batch(&self, scores: &[f64]) -> Vec<f64> {
        scores.iter().map(|&s| self.calibrate(s)).collect()
    }
}

/// Isotonic calibration via pool-adjacent-violators.
///
/// Learns a non-decreasing piecewise function from scores to
/// empirical positive rates: queries inside a pooled block's score
/// span return the block mean, queries between blocks interpolate
/// linearly, and queries outside the fitted range clamp to the end
/// blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsotonicCalibrator {
    /// First score of each pooled block, ascending.
    starts: Vec<f64>,
    /// Last score of each pooled block, ascending.
    ends: Vec<f64>,
    /// Calibrated probability of each block, non-decreasing.
    ys: Vec<f64>,
}

impl IsotonicCalibrator {
    /// Fit the calibrator on held-out `(score, label)` pairs.
    ///
    /// # Errors
    /// Returns [`ModelError::ShapeMismatch`] when inputs are empty or
    /// mismatched.
    pub fn fit(scores: &[f64], labels: &[f64]) -> Result<IsotonicCalibrator, ModelError> {
        if scores.is_empty() || scores.len() != labels.len() {
            return Err(ModelError::ShapeMismatch {
                context: format!(
                    "isotonic fit needs matching non-empty scores/labels, got {}/{}",
                    scores.len(),
                    labels.len()
                ),
            });
        }
        let mut pairs: Vec<(f64, f64)> =
            scores.iter().copied().zip(labels.iter().copied()).collect();
        pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // Pool adjacent violators: maintain blocks of
        // (weight, mean, span).
        struct Block {
            weight: f64,
            mean: f64,
            start: f64,
            end: f64,
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(pairs.len());
        for (x, y) in pairs {
            blocks.push(Block {
                weight: 1.0,
                mean: y,
                start: x,
                end: x,
            });
            while blocks.len() >= 2 {
                let last = blocks.len() - 1;
                // Merge on violation (>) and on ties (=) so the fitted
                // function is the canonical minimal one.
                if blocks[last - 1].mean < blocks[last].mean {
                    break;
                }
                let b = blocks.pop().expect("len >= 2");
                let a = blocks.last_mut().expect("len >= 1");
                let w = a.weight + b.weight;
                a.mean = (a.mean * a.weight + b.mean * b.weight) / w;
                a.weight = w;
                a.end = b.end; // block spans up to the later score
            }
        }
        Ok(IsotonicCalibrator {
            starts: blocks.iter().map(|b| b.start).collect(),
            ends: blocks.iter().map(|b| b.end).collect(),
            ys: blocks.iter().map(|b| b.mean).collect(),
        })
    }

    /// Number of monotone blocks in the fitted function.
    pub fn n_blocks(&self) -> usize {
        self.ys.len()
    }

    /// Map a raw score to a calibrated probability.
    pub fn calibrate(&self, score: f64) -> f64 {
        // Index of the first block starting after `score`.
        let i = self
            .starts
            .partition_point(|s| *s <= score || s.partial_cmp(&score).is_none());
        if i == 0 {
            return self.ys[0]; // before the first block
        }
        let prev = i - 1;
        if score <= self.ends[prev] || i == self.ys.len() {
            // Inside block `prev`, or past the last block.
            return self.ys[prev];
        }
        // Between block `prev`'s end and block `i`'s start: interpolate.
        let (x0, x1) = (self.ends[prev], self.starts[i]);
        let (y0, y1) = (self.ys[prev], self.ys[i]);
        if (x1 - x0).abs() < f64::EPSILON {
            y1
        } else {
            y0 + (y1 - y0) * (score - x0) / (x1 - x0)
        }
    }

    /// Calibrate a batch of scores.
    pub fn calibrate_batch(&self, scores: &[f64]) -> Vec<f64> {
        scores.iter().map(|&s| self.calibrate(s)).collect()
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::brier_score;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Miscalibrated synthetic scores: true probability is sigmoid(4x)
    /// but the "model" reports overly-hedged sigmoid(x).
    fn miscalibrated(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(-2.0..2.0);
            let true_p = sigmoid(4.0 * x);
            labels.push(if rng.gen::<f64>() < true_p { 1.0 } else { 0.0 });
            scores.push(sigmoid(x));
        }
        (scores, labels)
    }

    #[test]
    fn platt_improves_brier_on_miscalibrated_scores() {
        let (scores, labels) = miscalibrated(4000, 7);
        let p = PlattScaler::fit(&scores, &labels).unwrap();
        let cal = p.calibrate_batch(&scores);
        let before = brier_score(&scores, &labels);
        let after = brier_score(&cal, &labels);
        assert!(after < before, "brier {before:.4} -> {after:.4}");
    }

    #[test]
    fn platt_is_monotone() {
        let (scores, labels) = miscalibrated(1000, 8);
        let p = PlattScaler::fit(&scores, &labels).unwrap();
        assert!(p.slope() > 0.0, "positive association preserved");
        let lo = p.calibrate(0.1);
        let hi = p.calibrate(0.9);
        assert!(hi > lo);
    }

    #[test]
    fn platt_rejects_degenerate_inputs() {
        assert!(PlattScaler::fit(&[], &[]).is_err());
        assert!(PlattScaler::fit(&[0.5], &[1.0, 0.0]).is_err());
        assert!(PlattScaler::fit(&[0.2, 0.8], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn isotonic_output_is_monotone_step() {
        let (scores, labels) = miscalibrated(2000, 9);
        let iso = IsotonicCalibrator::fit(&scores, &labels).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let s = i as f64 / 100.0;
            let c = iso.calibrate(s);
            assert!(c >= prev - 1e-12, "monotone violated at {s}: {c} < {prev}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn isotonic_improves_brier() {
        let (scores, labels) = miscalibrated(4000, 10);
        let iso = IsotonicCalibrator::fit(&scores, &labels).unwrap();
        let cal = iso.calibrate_batch(&scores);
        assert!(brier_score(&cal, &labels) < brier_score(&scores, &labels));
    }

    #[test]
    fn isotonic_perfectly_separable_becomes_two_blocks() {
        let scores = vec![0.1, 0.2, 0.3, 0.7, 0.8, 0.9];
        let labels = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let iso = IsotonicCalibrator::fit(&scores, &labels).unwrap();
        assert_eq!(iso.n_blocks(), 2);
        assert!(iso.calibrate(0.15) < 0.01);
        assert!(iso.calibrate(0.85) > 0.99);
    }

    #[test]
    fn isotonic_handles_constant_labels() {
        let iso = IsotonicCalibrator::fit(&[0.1, 0.5, 0.9], &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(iso.n_blocks(), 1);
        assert!((iso.calibrate(0.3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isotonic_rejects_bad_inputs() {
        assert!(IsotonicCalibrator::fit(&[], &[]).is_err());
        assert!(IsotonicCalibrator::fit(&[0.5], &[]).is_err());
    }

    #[test]
    fn calibrators_clamp_out_of_range_queries() {
        let iso = IsotonicCalibrator::fit(&[0.2, 0.8], &[0.0, 1.0]).unwrap();
        assert!((iso.calibrate(-5.0) - iso.calibrate(0.2)).abs() < 1e-12);
        assert!((iso.calibrate(5.0) - iso.calibrate(0.8)).abs() < 1e-12);
    }
}
