//! # willump-models
//!
//! From-scratch ML models for the Willump reproduction, covering the
//! model types of the paper's six benchmarks (Table 1): linear models
//! (Product, Toxic), gradient-boosted decision trees (Music, Credit,
//! Tracking), and a small neural network (Price).
//!
//! The crate exposes a uniform [`ModelSpec`] → [`TrainedModel`]
//! interface so Willump's optimizer can train *small* models on
//! efficient feature subsets and *full* models on all features with
//! the same code path, plus:
//!
//! - [`metrics`]: accuracy/AUC/MSE and the top-K metrics the paper
//!   reports (precision@K, mean average precision, average value),
//! - [`importance`]: prediction-importance estimators per paper §4.2
//!   (coefficient-based for linear models, gain- and permutation-based
//!   for ensembles, GBDT-proxy for models with no native importances).
//!
//! ```
//! use willump_data::{FeatureMatrix, Matrix};
//! use willump_models::{LogisticParams, ModelSpec};
//!
//! # fn main() -> Result<(), willump_models::ModelError> {
//! let x = FeatureMatrix::Dense(Matrix::from_rows(&[
//!     vec![0.0, 1.0],
//!     vec![1.0, 0.0],
//!     vec![0.1, 0.9],
//!     vec![0.9, 0.2],
//! ]));
//! let y = [0.0, 1.0, 0.0, 1.0];
//! let model = ModelSpec::Logistic(LogisticParams::default()).fit(&x, &y, 42)?;
//! let p = model.predict_scores(&x);
//! assert!(p[1] > p[0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod calibrate;
mod error;
mod forest;
mod gbdt;
pub mod importance;
mod linear;
pub mod metrics;
mod mlp;
mod spec;
mod tree;

pub use calibrate::{IsotonicCalibrator, PlattScaler};
pub use error::ModelError;
pub use forest::{ForestObjective, ForestParams, RandomForest};
pub use gbdt::{Gbdt, GbdtParams};
pub use linear::{LinearParams, LinearRegression, LogisticParams, LogisticRegression};
pub use mlp::{Mlp, MlpParams};
pub use spec::{ModelSpec, Task, TrainedModel};
pub use tree::{DecisionTree, TreeParams};
