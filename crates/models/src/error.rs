//! Error type for model training and prediction.

use std::error::Error;
use std::fmt;

/// Errors produced during model training or prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Features and labels disagreed in length, or widths mismatched.
    ShapeMismatch {
        /// What was being attempted.
        context: String,
    },
    /// The training set was empty or degenerate.
    EmptyTrainingSet,
    /// Labels were invalid for the task (e.g. non-0/1 for
    /// classification).
    BadLabels {
        /// Why they were rejected.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            ModelError::EmptyTrainingSet => f.write_str("training set is empty"),
            ModelError::BadLabels { reason } => write!(f, "invalid labels: {reason}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            ModelError::EmptyTrainingSet.to_string(),
            "training set is empty"
        );
        let e = ModelError::BadLabels {
            reason: "nan".into(),
        };
        assert!(e.to_string().contains("nan"));
    }
}
