//! A small single-hidden-layer neural network.
//!
//! The Price benchmark's model (paper Table 1: "NN") is a compact MLP
//! over sparse TF-IDF + one-hot features; this implementation keeps
//! the first-layer forward and backward passes proportional to the
//! nonzeros of the input row.

use serde::{Deserialize, Serialize};
use willump_data::FeatureMatrix;

use crate::ModelError;

/// Hyperparameters for [`Mlp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden layer width.
    pub hidden: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Train a sigmoid output for classification (`true`) or a linear
    /// output for regression (`false`).
    pub classification: bool,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: 32,
            epochs: 20,
            learning_rate: 0.05,
            l2: 1e-6,
            classification: false,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// splitmix64 PRNG for weight init and row shuffling.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (mix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A 1-hidden-layer MLP with ReLU activations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// `w1[h]` is the input→hidden weight row for hidden unit `h`.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    classification: bool,
}

impl Mlp {
    /// Fit the network with plain SGD.
    ///
    /// # Errors
    /// Returns [`ModelError`] on empty/mismatched data or, in
    /// classification mode, labels outside {0, 1}.
    pub fn fit(
        x: &FeatureMatrix,
        y: &[f64],
        params: &MlpParams,
        seed: u64,
    ) -> Result<Mlp, ModelError> {
        if x.n_rows() == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        if x.n_rows() != y.len() {
            return Err(ModelError::ShapeMismatch {
                context: format!("{} feature rows vs {} labels", x.n_rows(), y.len()),
            });
        }
        if params.classification && y.iter().any(|v| *v != 0.0 && *v != 1.0) {
            return Err(ModelError::BadLabels {
                reason: "classification MLP expects labels in {0, 1}".into(),
            });
        }
        let d = x.n_cols();
        let h = params.hidden.max(1);
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let scale = (2.0 / (d.max(1) as f64)).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| {
                (0..d)
                    .map(|_| (uniform(&mut state) - 0.5) * 2.0 * scale)
                    .collect()
            })
            .collect();
        let mut b1 = vec![0.0; h];
        let w2_scale = (2.0 / h as f64).sqrt();
        let mut w2: Vec<f64> = (0..h)
            .map(|_| (uniform(&mut state) - 0.5) * 2.0 * w2_scale)
            .collect();
        let mut b2 = if params.classification {
            0.0
        } else {
            y.iter().sum::<f64>() / y.len() as f64
        };

        let n = x.n_rows();
        let mut hidden = vec![0.0; h];
        let mut act = vec![0.0; h];
        for epoch in 0..params.epochs {
            // Deterministic per-epoch row order.
            let mut order: Vec<usize> = (0..n).collect();
            let mut st = seed ^ (epoch as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            for i in (1..n).rev() {
                let j = (mix(&mut st) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let lr = params.learning_rate / (1.0 + epoch as f64 * 0.1);
            for &i in &order {
                let entries = x.row_entries(i);
                for k in 0..h {
                    let mut z = b1[k];
                    let wrow = &w1[k];
                    for (c, v) in &entries {
                        z += wrow[*c] * v;
                    }
                    hidden[k] = z;
                    act[k] = z.max(0.0);
                }
                let out = act.iter().zip(&w2).map(|(a, w)| a * w).sum::<f64>() + b2;
                let pred = if params.classification {
                    sigmoid(out)
                } else {
                    out
                };
                // dL/dout is (pred - y) for both squared loss and
                // logistic loss with sigmoid output.
                let delta = pred - y[i];
                for k in 0..h {
                    let grad_w2 = delta * act[k];
                    let grad_hidden = if hidden[k] > 0.0 { delta * w2[k] } else { 0.0 };
                    w2[k] -= lr * (grad_w2 + params.l2 * w2[k]);
                    if grad_hidden != 0.0 {
                        let wrow = &mut w1[k];
                        for (c, v) in &entries {
                            wrow[*c] -= lr * (grad_hidden * v + params.l2 * wrow[*c]);
                        }
                        b1[k] -= lr * grad_hidden;
                    }
                }
                b2 -= lr * delta;
            }
        }
        Ok(Mlp {
            w1,
            b1,
            w2,
            b2,
            classification: params.classification,
        })
    }

    /// Whether the output is a probability.
    pub fn is_classifier(&self) -> bool {
        self.classification
    }

    /// Hidden layer width.
    pub fn hidden_width(&self) -> usize {
        self.w2.len()
    }

    /// Score one row given sparse `(column, value)` entries.
    pub fn predict_row(&self, entries: &[(usize, f64)]) -> f64 {
        let mut out = self.b2;
        for (k, wrow) in self.w1.iter().enumerate() {
            let mut z = self.b1[k];
            for (c, v) in entries {
                z += wrow[*c] * v;
            }
            if z > 0.0 {
                out += z * self.w2[k];
            }
        }
        if self.classification {
            sigmoid(out)
        } else {
            out
        }
    }

    /// Score every row of `x`.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|r| self.predict_row(&x.row_entries(r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::{Matrix, SparseMatrix};

    #[test]
    fn regressor_learns_nonlinear_function() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = i as f64 / 300.0;
            rows.push(vec![a, 1.0 - a]);
            y.push((a - 0.5).abs()); // V shape: not linear
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let m = Mlp::fit(
            &x,
            &y,
            &MlpParams {
                hidden: 16,
                epochs: 80,
                learning_rate: 0.1,
                ..MlpParams::default()
            },
            11,
        )
        .unwrap();
        let pred = m.predict(&x);
        let mse = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.004, "mse {mse}");
    }

    #[test]
    fn classifier_outputs_probabilities() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 20) as f64 / 20.0;
            rows.push(vec![a]);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let m = Mlp::fit(
            &x,
            &y,
            &MlpParams {
                classification: true,
                epochs: 60,
                learning_rate: 0.2,
                ..MlpParams::default()
            },
            5,
        )
        .unwrap();
        let p = m.predict(&x);
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        let acc = p
            .iter()
            .zip(&y)
            .filter(|(pi, yi)| (**pi > 0.5) == (**yi > 0.5))
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn sparse_input_supported() {
        let dense = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let x = FeatureMatrix::Sparse(SparseMatrix::from_dense(&dense));
        let m = Mlp::fit(&x, &[0.0, 1.0], &MlpParams::default(), 1).unwrap();
        let p = m.predict(&x);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn validation_errors() {
        let x = FeatureMatrix::Dense(Matrix::zeros(0, 1));
        assert!(Mlp::fit(&x, &[], &MlpParams::default(), 0).is_err());
        let x = FeatureMatrix::Dense(Matrix::zeros(2, 1));
        assert!(Mlp::fit(&x, &[1.0], &MlpParams::default(), 0).is_err());
        assert!(Mlp::fit(
            &x,
            &[0.5, 0.5],
            &MlpParams {
                classification: true,
                ..MlpParams::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[vec![0.2], vec![0.8]]));
        let y = [0.0, 1.0];
        let a = Mlp::fit(&x, &y, &MlpParams::default(), 99).unwrap();
        let b = Mlp::fit(&x, &y, &MlpParams::default(), 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn row_matches_batch() {
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[vec![0.3, 0.7], vec![0.9, 0.1]]));
        let m = Mlp::fit(&x, &[0.0, 1.0], &MlpParams::default(), 2).unwrap();
        let batch = m.predict(&x);
        for (r, b) in batch.iter().enumerate() {
            assert!((m.predict_row(&x.row_entries(r)) - b).abs() < 1e-12);
        }
    }
}
