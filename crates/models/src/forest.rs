//! Random forests: bagged CART trees with feature subsampling.
//!
//! Paper §4.2 names random forests alongside GBDTs as the ensemble
//! families whose prediction importances Willump estimates by
//! permutation. This implementation reuses the histogram tree builder
//! with bootstrap resampling and per-tree feature masks.

use serde::{Deserialize, Serialize};
use willump_data::{FeatureMatrix, Matrix};

use crate::tree::{BinMapper, DecisionTree, TreeParams};
use crate::ModelError;

/// Objective of a [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForestObjective {
    /// Binary classification; scores are vote-averaged probabilities.
    Classification,
    /// Regression; scores are leaf-value averages.
    Regression,
}

/// Hyperparameters for [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Fraction of features considered per tree (`0 < f <= 1`).
    pub feature_fraction: f64,
    /// Base-learner parameters.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 40,
            feature_fraction: 0.7,
            tree: TreeParams {
                max_depth: 8,
                min_samples_leaf: 3,
                // A whisper of regularization keeps empty-bootstrap
                // leaves at value 0 instead of 0/0.
                lambda: 1e-6,
                min_gain: 1e-9,
            },
        }
    }
}

/// splitmix64 mixer for bootstrap sampling and feature masks.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bagged ensemble of CART trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    objective: ForestObjective,
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fit a forest with bootstrap rows and per-tree feature masks.
    ///
    /// # Errors
    /// Returns [`ModelError`] on empty/mismatched data, labels outside
    /// {0, 1} for classification, or invalid `feature_fraction`.
    pub fn fit(
        x: &FeatureMatrix,
        y: &[f64],
        objective: ForestObjective,
        params: &ForestParams,
        seed: u64,
    ) -> Result<RandomForest, ModelError> {
        if x.n_rows() == 0 {
            return Err(ModelError::EmptyTrainingSet);
        }
        if x.n_rows() != y.len() {
            return Err(ModelError::ShapeMismatch {
                context: format!("{} feature rows vs {} labels", x.n_rows(), y.len()),
            });
        }
        if objective == ForestObjective::Classification && y.iter().any(|v| *v != 0.0 && *v != 1.0)
        {
            return Err(ModelError::BadLabels {
                reason: "classification forest expects labels in {0, 1}".into(),
            });
        }
        if !(0.0..=1.0).contains(&params.feature_fraction) || params.feature_fraction == 0.0 {
            return Err(ModelError::BadLabels {
                reason: format!(
                    "feature_fraction {} must be in (0, 1]",
                    params.feature_fraction
                ),
            });
        }
        let dense = x.to_dense();
        let n = dense.n_rows();
        let d = dense.n_cols();
        let mapper = BinMapper::fit(&dense);
        let bins = mapper.bin_matrix(&dense);
        let keep = ((d as f64 * params.feature_fraction).ceil() as usize).clamp(1, d);

        let mut state = seed ^ 0xF0E1_D2C3_B4A5_9687;
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut boot_grad = vec![0.0; n];
        let mut boot_hess = vec![0.0; n];
        for _ in 0..params.n_trees {
            // Bootstrap: weight rows by their draw count; squared loss
            // against raw labels makes leaves bagged means.
            boot_grad.fill(0.0);
            boot_hess.fill(0.0);
            for _ in 0..n {
                let r = (mix(&mut state) % n as u64) as usize;
                boot_grad[r] -= y[r];
                boot_hess[r] += 1.0;
            }
            // Feature mask: trees only see a random subset; masked
            // features get zero hessian gain by zeroing their bins is
            // not possible, so we emulate the mask by duplicating the
            // binned buffer with masked columns collapsed to bin 0.
            let mut masked_bins = bins.clone();
            if keep < d {
                let mut allowed = vec![false; d];
                let mut chosen = 0;
                while chosen < keep {
                    let f = (mix(&mut state) % d as u64) as usize;
                    if !allowed[f] {
                        allowed[f] = true;
                        chosen += 1;
                    }
                }
                for (i, b) in masked_bins.iter_mut().enumerate() {
                    if !allowed[i % d] {
                        *b = 0;
                    }
                }
            }
            // Rows with zero hessian (not drawn) contribute nothing.
            let tree = DecisionTree::fit_gradients(
                &masked_bins,
                &mapper,
                &boot_grad,
                &boot_hess,
                &params.tree,
            )?;
            trees.push(tree);
        }
        Ok(RandomForest {
            objective,
            trees,
            n_features: d,
        })
    }

    /// The forest objective.
    pub fn objective(&self) -> ForestObjective {
        self.objective
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Score one dense row: mean over trees, clamped to [0, 1] for
    /// classification.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mean = self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
            / self.trees.len().max(1) as f64;
        match self.objective {
            ForestObjective::Classification => mean.clamp(0.0, 1.0),
            ForestObjective::Regression => mean,
        }
    }

    /// Score every row of `x`.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<f64> {
        let dense = x.to_dense();
        (0..dense.n_rows())
            .map(|r| self.predict_row(dense.row(r)))
            .collect()
    }

    /// Score every row of a dense matrix without conversion.
    pub fn predict_dense(&self, x: &Matrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|r| self.predict_row(x.row(r)))
            .collect()
    }

    /// Gain-based feature importances, normalized to sum to 1.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut gains = vec![0.0; self.n_features];
        for t in &self.trees {
            for (g, tg) in gains.iter_mut().zip(t.feature_gains()) {
                *g += tg;
            }
        }
        let total: f64 = gains.iter().sum();
        if total > 0.0 {
            for g in &mut gains {
                *g /= total;
            }
        }
        gains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (FeatureMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = (i % 20) as f64 / 20.0;
            let b = ((i / 2 * 13) % 50) as f64 / 50.0; // pair-constant noise
            rows.push(vec![a, b]);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        (FeatureMatrix::Dense(Matrix::from_rows(&rows)), y)
    }

    #[test]
    fn classifies_step_function() {
        let (x, y) = step_data();
        let f = RandomForest::fit(
            &x,
            &y,
            ForestObjective::Classification,
            &ForestParams::default(),
            7,
        )
        .unwrap();
        let p = f.predict(&x);
        let acc = p
            .iter()
            .zip(&y)
            .filter(|(pi, yi)| (**pi > 0.5) == (**yi > 0.5))
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn regression_tracks_targets() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let a = i as f64 / 300.0;
            rows.push(vec![a]);
            y.push(2.0 * a + 1.0);
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let f = RandomForest::fit(
            &x,
            &y,
            ForestObjective::Regression,
            &ForestParams::default(),
            3,
        )
        .unwrap();
        let pred = f.predict(&x);
        let mse = pred
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.05, "mse {mse}");
    }

    #[test]
    fn importances_favor_signal() {
        let (x, y) = step_data();
        let f = RandomForest::fit(
            &x,
            &y,
            ForestObjective::Classification,
            &ForestParams::default(),
            1,
        )
        .unwrap();
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "{imp:?}");
    }

    #[test]
    fn validation() {
        let (x, y) = step_data();
        assert!(RandomForest::fit(
            &x,
            &y,
            ForestObjective::Classification,
            &ForestParams {
                feature_fraction: 0.0,
                ..ForestParams::default()
            },
            0,
        )
        .is_err());
        let empty = FeatureMatrix::Dense(Matrix::zeros(0, 1));
        assert!(RandomForest::fit(
            &empty,
            &[],
            ForestObjective::Regression,
            &ForestParams::default(),
            0
        )
        .is_err());
        assert!(RandomForest::fit(
            &x,
            &vec![0.5; x.n_rows()],
            ForestObjective::Classification,
            &ForestParams::default(),
            0
        )
        .is_err());
    }

    #[test]
    fn deterministic_per_seed_and_varied_across_seeds() {
        let (x, y) = step_data();
        let a = RandomForest::fit(
            &x,
            &y,
            ForestObjective::Classification,
            &ForestParams::default(),
            9,
        )
        .unwrap();
        let b = RandomForest::fit(
            &x,
            &y,
            ForestObjective::Classification,
            &ForestParams::default(),
            9,
        )
        .unwrap();
        assert_eq!(a, b);
        let c = RandomForest::fit(
            &x,
            &y,
            ForestObjective::Classification,
            &ForestParams::default(),
            10,
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn single_row_matches_batch() {
        let (x, y) = step_data();
        let f = RandomForest::fit(
            &x,
            &y,
            ForestObjective::Classification,
            &ForestParams::default(),
            2,
        )
        .unwrap();
        let batch = f.predict(&x);
        let dense = x.to_dense();
        for r in (0..dense.n_rows()).step_by(57) {
            assert!((f.predict_row(dense.row(r)) - batch[r]).abs() < 1e-12);
        }
    }
}
