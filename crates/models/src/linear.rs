//! Linear and logistic regression trained with averaged SGD.
//!
//! These cover the "Linear" model rows of paper Table 1 (Product and
//! Toxic use logistic regression over TF-IDF features). Training
//! iterates sparse or dense rows directly, so wide text features stay
//! cheap.

use serde::{Deserialize, Serialize};
use willump_data::FeatureMatrix;

use crate::ModelError;

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticParams {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial learning rate (decays as `lr / (1 + t * decay)`).
    pub learning_rate: f64,
    /// Learning-rate decay constant.
    pub decay: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            epochs: 30,
            learning_rate: 0.5,
            decay: 0.01,
            l2: 1e-6,
        }
    }
}

/// Hyperparameters for [`LinearRegression`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearParams {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial learning rate (decays as `lr / (1 + t * decay)`).
    pub learning_rate: f64,
    /// Learning-rate decay constant.
    pub decay: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LinearParams {
    fn default() -> Self {
        LinearParams {
            epochs: 40,
            learning_rate: 0.05,
            decay: 0.01,
            l2: 1e-6,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

fn validate(x: &FeatureMatrix, y: &[f64]) -> Result<(), ModelError> {
    if x.n_rows() == 0 {
        return Err(ModelError::EmptyTrainingSet);
    }
    if x.n_rows() != y.len() {
        return Err(ModelError::ShapeMismatch {
            context: format!("{} feature rows vs {} labels", x.n_rows(), y.len()),
        });
    }
    Ok(())
}

/// Shuffled row order per epoch, derived deterministically from a seed
/// with a splitmix64-style mixer (keeps this module independent of the
/// `rand` crate's API churn).
fn epoch_order(n: usize, seed: u64, epoch: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Binary logistic regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Fit on features `x` and 0/1 labels `y`.
    ///
    /// # Errors
    /// Returns [`ModelError`] on shape mismatches, empty data, or
    /// labels outside {0, 1}.
    pub fn fit(
        x: &FeatureMatrix,
        y: &[f64],
        params: &LogisticParams,
        seed: u64,
    ) -> Result<LogisticRegression, ModelError> {
        validate(x, y)?;
        if y.iter().any(|v| *v != 0.0 && *v != 1.0) {
            return Err(ModelError::BadLabels {
                reason: "logistic regression expects labels in {0, 1}".into(),
            });
        }
        let d = x.n_cols();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut t = 0.0f64;
        for epoch in 0..params.epochs {
            for &i in &epoch_order(x.n_rows(), seed, epoch) {
                let lr = params.learning_rate / (1.0 + t * params.decay);
                t += 1.0;
                let z = x.row_dot(i, &w) + b;
                let err = sigmoid(z) - y[i];
                for (c, v) in x.row_entries(i) {
                    w[c] -= lr * (err * v + params.l2 * w[c]);
                }
                b -= lr * err;
            }
        }
        Ok(LogisticRegression {
            weights: w,
            bias: b,
        })
    }

    /// Fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Probability of the positive class for every row of `x`.
    pub fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|r| sigmoid(x.row_dot(r, &self.weights) + self.bias))
            .collect()
    }

    /// Probability of the positive class for one sparse/dense row.
    pub fn predict_proba_row(&self, entries: &[(usize, f64)]) -> f64 {
        let z: f64 = entries
            .iter()
            .map(|(c, v)| self.weights[*c] * v)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }
}

/// Ordinary least squares fit by averaged SGD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearRegression {
    /// Fit on features `x` and real-valued targets `y`.
    ///
    /// # Errors
    /// Returns [`ModelError`] on shape mismatches or empty data.
    pub fn fit(
        x: &FeatureMatrix,
        y: &[f64],
        params: &LinearParams,
        seed: u64,
    ) -> Result<LinearRegression, ModelError> {
        validate(x, y)?;
        let d = x.n_cols();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut t = 0.0f64;
        for epoch in 0..params.epochs {
            for &i in &epoch_order(x.n_rows(), seed, epoch) {
                let lr = params.learning_rate / (1.0 + t * params.decay);
                t += 1.0;
                let err = x.row_dot(i, &w) + b - y[i];
                for (c, v) in x.row_entries(i) {
                    w[c] -= lr * (err * v + params.l2 * w[c]);
                }
                b -= lr * err;
            }
        }
        Ok(LinearRegression {
            weights: w,
            bias: b,
        })
    }

    /// Fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicted value for every row of `x`.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|r| x.row_dot(r, &self.weights) + self.bias)
            .collect()
    }

    /// Predicted value for one sparse/dense row.
    pub fn predict_row(&self, entries: &[(usize, f64)]) -> f64 {
        entries
            .iter()
            .map(|(c, v)| self.weights[*c] * v)
            .sum::<f64>()
            + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::{Matrix, SparseMatrix};

    fn separable() -> (FeatureMatrix, Vec<f64>) {
        // y = 1 iff x0 > x1.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let a = (i % 10) as f64 / 10.0;
            let b = ((i * 7) % 10) as f64 / 10.0;
            rows.push(vec![a, b]);
            y.push(if a > b { 1.0 } else { 0.0 });
        }
        (FeatureMatrix::Dense(Matrix::from_rows(&rows)), y)
    }

    #[test]
    fn logistic_learns_separable_data() {
        let (x, y) = separable();
        let m = LogisticRegression::fit(&x, &y, &LogisticParams::default(), 1).unwrap();
        let p = m.predict_proba(&x);
        let acc = p
            .iter()
            .zip(&y)
            .filter(|(pi, yi)| (**pi > 0.5) == (**yi > 0.5))
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn logistic_rejects_bad_labels() {
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[vec![1.0]]));
        assert!(matches!(
            LogisticRegression::fit(&x, &[0.5], &LogisticParams::default(), 0),
            Err(ModelError::BadLabels { .. })
        ));
    }

    #[test]
    fn shape_errors() {
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[vec![1.0]]));
        assert!(matches!(
            LogisticRegression::fit(&x, &[1.0, 0.0], &LogisticParams::default(), 0),
            Err(ModelError::ShapeMismatch { .. })
        ));
        let empty = FeatureMatrix::Dense(Matrix::zeros(0, 2));
        assert!(matches!(
            LinearRegression::fit(&empty, &[], &LinearParams::default(), 0),
            Err(ModelError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn linear_recovers_coefficients() {
        // y = 2*x0 - 3*x1 + 1
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let a = (i as f64) / 25.0 - 1.0;
            let b = ((i * 13 % 50) as f64) / 25.0 - 1.0;
            rows.push(vec![a, b]);
            y.push(2.0 * a - 3.0 * b + 1.0);
        }
        let x = FeatureMatrix::Dense(Matrix::from_rows(&rows));
        let m = LinearRegression::fit(
            &x,
            &y,
            &LinearParams {
                epochs: 200,
                learning_rate: 0.1,
                decay: 0.001,
                l2: 0.0,
            },
            3,
        )
        .unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 0.05, "{:?}", m.weights());
        assert!((m.weights()[1] + 3.0).abs() < 0.05);
        assert!((m.bias() - 1.0).abs() < 0.05);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let (x, y) = separable();
        let dense = LogisticRegression::fit(&x, &y, &LogisticParams::default(), 7).unwrap();
        let sparse_x = FeatureMatrix::Sparse(SparseMatrix::from_dense(&x.to_dense()));
        let sparse = LogisticRegression::fit(&sparse_x, &y, &LogisticParams::default(), 7).unwrap();
        for (a, b) in dense.weights().iter().zip(sparse.weights()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn row_prediction_matches_batch() {
        let (x, y) = separable();
        let m = LogisticRegression::fit(&x, &y, &LogisticParams::default(), 5).unwrap();
        let batch = m.predict_proba(&x);
        for (r, b) in batch.iter().enumerate() {
            let one = m.predict_proba_row(&x.row_entries(r));
            assert!((b - one).abs() < 1e-12);
        }
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = separable();
        let a = LogisticRegression::fit(&x, &y, &LogisticParams::default(), 9).unwrap();
        let b = LogisticRegression::fit(&x, &y, &LogisticParams::default(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
