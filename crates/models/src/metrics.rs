//! Evaluation metrics, including the top-K metrics of paper Tables 4-7.

/// Fraction of rows where the thresholded score matches the 0/1 label.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn accuracy(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty inputs");
    let correct = scores
        .iter()
        .zip(labels)
        .filter(|(s, y)| (**s > 0.5) == (**y > 0.5))
        .count();
    correct as f64 / scores.len() as f64
}

/// Mean squared error.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Area under the ROC curve via the rank-sum formulation.
///
/// Returns 0.5 when either class is absent.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn auc(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty inputs");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    // Average ranks over ties.
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let n_pos = labels.iter().filter(|y| **y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let pos_rank_sum: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, y)| **y > 0.5)
        .map(|(r, _)| r)
        .sum();
    (pos_rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Indices of the `k` largest scores, best first. Ties broken by lower
/// index for determinism.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Precision of a predicted top-K set against the true top-K set:
/// `|predicted ∩ true| / K` (paper Table 4's "Precision").
///
/// # Panics
/// Panics if `predicted` is empty.
pub fn precision_at_k(predicted: &[usize], truth: &[usize]) -> f64 {
    assert!(!predicted.is_empty(), "empty top-K");
    let truth_set: std::collections::HashSet<usize> = truth.iter().copied().collect();
    let hits = predicted.iter().filter(|i| truth_set.contains(i)).count();
    hits as f64 / predicted.len() as f64
}

/// Mean average precision of a predicted top-K *ranking* against the
/// true top-K set (paper Table 4's "Mean Average Precision"): the mean
/// over predicted ranks of precision-so-far at each relevant hit.
///
/// # Panics
/// Panics if `predicted` is empty.
pub fn mean_average_precision(predicted: &[usize], truth: &[usize]) -> f64 {
    assert!(!predicted.is_empty(), "empty top-K");
    let truth_set: std::collections::HashSet<usize> = truth.iter().copied().collect();
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, idx) in predicted.iter().enumerate() {
        if truth_set.contains(idx) {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    if truth.is_empty() {
        return 0.0;
    }
    sum / truth.len().min(predicted.len()) as f64
}

/// Mean true score of a selected index set (paper Table 4's "Average
/// Value": how good the items we returned actually are).
///
/// # Panics
/// Panics if `selected` is empty.
pub fn average_value(selected: &[usize], true_scores: &[f64]) -> f64 {
    assert!(!selected.is_empty(), "empty selection");
    selected.iter().map(|&i| true_scores[i]).sum::<f64>() / selected.len() as f64
}

/// Brier score: mean squared error between predicted probabilities
/// and 0/1 outcomes. Lower is better; used to evaluate the
/// [`crate::calibrate`] calibrators.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn brier_score(probs: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "length mismatch");
    assert!(!probs.is_empty(), "empty inputs");
    probs
        .iter()
        .zip(labels)
        .map(|(p, y)| {
            let o = if *y > 0.5 { 1.0 } else { 0.0 };
            (p - o) * (p - o)
        })
        .sum::<f64>()
        / probs.len() as f64
}

/// Half-width of a 95 % normal-approximation confidence interval for
/// an accuracy measured on `n` samples.
///
/// The paper deems a cascade's accuracy loss "not statistically
/// significant" when it falls inside this interval (§6.3).
pub fn accuracy_ci_95(acc: f64, n: usize) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    1.96 * (acc * (1.0 - acc) / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0.9, 0.1], &[1.0, 0.0]), 1.0);
        assert_eq!(accuracy(&[0.9, 0.9], &[1.0, 0.0]), 0.5);
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &labels), 0.5);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn top_k_orders_descending() {
        let idx = top_k_indices(&[0.1, 0.9, 0.5, 0.9], 3);
        assert_eq!(idx, vec![1, 3, 2]);
        assert_eq!(top_k_indices(&[1.0], 5), vec![0]);
    }

    #[test]
    fn precision_counts_overlap() {
        assert_eq!(precision_at_k(&[1, 2, 3, 4], &[2, 4, 6, 8]), 0.5);
        assert_eq!(precision_at_k(&[1], &[1]), 1.0);
    }

    #[test]
    fn map_rewards_early_hits() {
        // Hit at rank 1 only.
        let early = mean_average_precision(&[5, 9, 8], &[5, 1, 2]);
        // Same single hit, at rank 3.
        let late = mean_average_precision(&[9, 8, 5], &[5, 1, 2]);
        assert!(early > late);
        // Perfect ranking has mAP 1.
        assert_eq!(mean_average_precision(&[1, 2], &[1, 2]), 1.0);
    }

    #[test]
    fn average_value_means_true_scores() {
        let scores = [0.1, 0.5, 0.9];
        assert!((average_value(&[0, 2], &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brier_rewards_sharp_correct_probabilities() {
        let labels = [1.0, 0.0];
        assert!(brier_score(&[0.99, 0.01], &labels) < brier_score(&[0.6, 0.4], &labels));
        assert_eq!(brier_score(&[1.0, 0.0], &labels), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &labels), 1.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        assert!(accuracy_ci_95(0.9, 100) > accuracy_ci_95(0.9, 10_000));
        assert_eq!(accuracy_ci_95(0.9, 0), f64::INFINITY);
        assert_eq!(accuracy_ci_95(1.0, 50), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[0.5], &[1.0, 0.0]);
    }
}
