//! Word and character tokenization.

/// Split text into lowercase word tokens on non-alphanumeric
/// boundaries, discarding empty tokens.
///
/// ```
/// use willump_featurize::tokenize::words;
///
/// assert_eq!(words("Hello, GBDT-world!"), vec!["hello", "gbdt", "world"]);
/// ```
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for c in ch.to_lowercase() {
                cur.push(c);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Lowercase the text and collapse runs of whitespace to single
/// spaces; the character-n-gram analyzer runs over this form, matching
/// sklearn's `analyzer="char"` preprocessing used by the Toxic
/// benchmark entry.
pub fn normalize_chars(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for c in ch.to_lowercase() {
                out.push(c);
            }
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_splits_and_lowercases() {
        assert_eq!(words("One two,THREE"), vec!["one", "two", "three"]);
        assert_eq!(words("a1-b2"), vec!["a1", "b2"]);
        assert_eq!(words(""), Vec::<String>::new());
        assert_eq!(words("...!!!"), Vec::<String>::new());
    }

    #[test]
    fn words_handles_unicode() {
        assert_eq!(words("Ünïcode tëst"), vec!["ünïcode", "tëst"]);
    }

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize_chars("  A  b\t c \n"), "a b c");
        assert_eq!(normalize_chars(""), "");
        assert_eq!(normalize_chars("xyz"), "xyz");
    }
}
