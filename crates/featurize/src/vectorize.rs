//! Count and TF-IDF vectorizers over word or character n-grams.
//!
//! These are the expensive feature-computing operators in the Product,
//! Toxic, and Price benchmarks (paper Table 1). Semantics follow
//! sklearn: smooth IDF, optional sublinear TF, and L1/L2/none row
//! normalization.

use std::collections::HashMap;

use willump_data::{SparseMatrix, SparseRowBuilder};

use crate::ngrams::{char_ngrams, word_ngrams};
use crate::tokenize::{normalize_chars, words};
use crate::vocab::{VocabBuilder, Vocabulary};
use crate::FeatError;

/// What unit n-grams are computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analyzer {
    /// Word n-grams over alphanumeric tokens.
    Word,
    /// Character n-grams over whitespace-normalized text.
    Char,
}

/// Row normalization applied after weighting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// No normalization.
    None,
    /// Divide by the L1 norm.
    L1,
    /// Divide by the L2 norm.
    L2,
}

/// Configuration shared by [`CountVectorizer`] and [`TfIdfVectorizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct VectorizerConfig {
    /// Token unit.
    pub analyzer: Analyzer,
    /// Smallest n-gram order (≥ 1).
    pub ngram_lo: usize,
    /// Largest n-gram order (≥ `ngram_lo`).
    pub ngram_hi: usize,
    /// Minimum document frequency for a term to enter the vocabulary.
    pub min_df: u32,
    /// Cap on vocabulary size (most frequent kept).
    pub max_features: Option<usize>,
    /// Row normalization.
    pub norm: Norm,
    /// Use `1 + ln(tf)` instead of raw term frequency.
    pub sublinear_tf: bool,
}

impl Default for VectorizerConfig {
    fn default() -> Self {
        VectorizerConfig {
            analyzer: Analyzer::Word,
            ngram_lo: 1,
            ngram_hi: 1,
            min_df: 1,
            max_features: None,
            norm: Norm::L2,
            sublinear_tf: false,
        }
    }
}

impl VectorizerConfig {
    fn validate(&self) -> Result<(), FeatError> {
        if self.ngram_lo == 0 || self.ngram_lo > self.ngram_hi {
            return Err(FeatError::BadConfig {
                reason: format!(
                    "n-gram range {}..={} is invalid",
                    self.ngram_lo, self.ngram_hi
                ),
            });
        }
        Ok(())
    }

    /// Run the analyzer over one document, yielding each n-gram.
    ///
    /// Exposed so alternative execution engines (the interpreted
    /// Python-baseline engine in `willump-graph`) can reimplement the
    /// counting loop with their own cost model while sharing the
    /// analyzer semantics.
    pub fn analyze(&self, doc: &str, mut f: impl FnMut(&str)) {
        match self.analyzer {
            Analyzer::Word => {
                let toks = words(doc);
                word_ngrams(&toks, self.ngram_lo, self.ngram_hi, &mut f);
            }
            Analyzer::Char => {
                let norm = normalize_chars(doc);
                char_ngrams(&norm, self.ngram_lo, self.ngram_hi, &mut f);
            }
        }
    }
}

/// Term-count featurization over n-grams.
#[derive(Debug, Clone)]
pub struct CountVectorizer {
    config: VectorizerConfig,
    vocab: Option<Vocabulary>,
}

impl CountVectorizer {
    /// A new, unfitted vectorizer.
    ///
    /// # Errors
    /// Returns [`FeatError::BadConfig`] for an invalid n-gram range.
    pub fn new(config: VectorizerConfig) -> Result<CountVectorizer, FeatError> {
        config.validate()?;
        Ok(CountVectorizer {
            config,
            vocab: None,
        })
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocab.as_ref()
    }

    /// The analyzer configuration.
    pub fn config(&self) -> &VectorizerConfig {
        &self.config
    }

    /// Number of output feature columns (0 before fit).
    pub fn n_features(&self) -> usize {
        self.vocab.as_ref().map_or(0, Vocabulary::len)
    }

    /// Learn the vocabulary from a corpus.
    pub fn fit<S: AsRef<str>>(&mut self, corpus: &[S]) {
        let mut b = VocabBuilder::new();
        let mut distinct: Vec<String> = Vec::new();
        let mut seen: HashMap<String, ()> = HashMap::new();
        for doc in corpus {
            distinct.clear();
            seen.clear();
            self.config.analyze(doc.as_ref(), |g| {
                if !seen.contains_key(g) {
                    seen.insert(g.to_string(), ());
                    distinct.push(g.to_string());
                }
            });
            b.add_document(distinct.iter().map(String::as_str));
        }
        self.vocab = Some(b.finish(self.config.min_df, self.config.max_features));
    }

    /// Count in-vocabulary n-grams for one document.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform_one(&self, doc: &str) -> Result<Vec<(usize, f64)>, FeatError> {
        let vocab = self.vocab.as_ref().ok_or(FeatError::NotFitted {
            transformer: "CountVectorizer",
        })?;
        let mut counts: HashMap<u32, f64> = HashMap::new();
        self.config.analyze(doc, |g| {
            if let Some(id) = vocab.get(g) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        });
        let mut row: Vec<(usize, f64)> = counts.into_iter().map(|(c, v)| (c as usize, v)).collect();
        row.sort_unstable_by_key(|(c, _)| *c);
        Ok(row)
    }

    /// Count n-grams for a batch of documents into a sparse matrix.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform<S: AsRef<str>>(&self, docs: &[S]) -> Result<SparseMatrix, FeatError> {
        let n = self.n_features();
        if self.vocab.is_none() {
            return Err(FeatError::NotFitted {
                transformer: "CountVectorizer",
            });
        }
        let mut b = SparseRowBuilder::new(n);
        for doc in docs {
            b.push_row(&self.transform_one(doc.as_ref())?);
        }
        Ok(b.finish())
    }

    /// Fit then transform the same corpus.
    ///
    /// # Errors
    /// Propagates transform errors (cannot be `NotFitted`).
    pub fn fit_transform<S: AsRef<str>>(
        &mut self,
        corpus: &[S],
    ) -> Result<SparseMatrix, FeatError> {
        self.fit(corpus);
        self.transform(corpus)
    }
}

/// TF-IDF featurization over n-grams.
///
/// IDF uses sklearn's smooth formulation
/// `idf(t) = ln((1 + n) / (1 + df(t))) + 1`.
///
/// ```
/// use willump_featurize::{TfIdfVectorizer, VectorizerConfig};
///
/// # fn main() -> Result<(), willump_featurize::FeatError> {
/// let mut v = TfIdfVectorizer::new(VectorizerConfig::default())?;
/// let m = v.fit_transform(&["cats and dogs", "dogs and more dogs"])?;
/// assert_eq!(m.n_rows(), 2);
/// assert!(m.n_cols() >= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TfIdfVectorizer {
    counter: CountVectorizer,
    idf: Vec<f64>,
}

impl TfIdfVectorizer {
    /// A new, unfitted vectorizer.
    ///
    /// # Errors
    /// Returns [`FeatError::BadConfig`] for an invalid n-gram range.
    pub fn new(config: VectorizerConfig) -> Result<TfIdfVectorizer, FeatError> {
        Ok(TfIdfVectorizer {
            counter: CountVectorizer::new(config)?,
            idf: Vec::new(),
        })
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.counter.vocabulary()
    }

    /// The analyzer configuration.
    pub fn config(&self) -> &VectorizerConfig {
        self.counter.config()
    }

    /// Number of output feature columns (0 before fit).
    pub fn n_features(&self) -> usize {
        self.counter.n_features()
    }

    /// The fitted IDF weights (empty before fit).
    pub fn idf(&self) -> &[f64] {
        &self.idf
    }

    /// Apply TF weighting, IDF weighting, and row normalization to raw
    /// in-vocabulary counts (in place). Shared by `transform_one` and
    /// alternative engines that produce the counts themselves.
    ///
    /// # Panics
    /// Panics if called before `fit` (no IDF weights).
    pub fn weigh(&self, row: &mut [(usize, f64)]) {
        assert!(
            !self.idf.is_empty() || self.n_features() == 0,
            "weigh called before fit"
        );
        let cfg = self.counter.config();
        for (c, v) in row.iter_mut() {
            let tf = if cfg.sublinear_tf { 1.0 + v.ln() } else { *v };
            *v = tf * self.idf[*c];
        }
        match cfg.norm {
            Norm::None => {}
            Norm::L1 => {
                let s: f64 = row.iter().map(|(_, v)| v.abs()).sum();
                if s > 0.0 {
                    for (_, v) in row.iter_mut() {
                        *v /= s;
                    }
                }
            }
            Norm::L2 => {
                let s: f64 = row.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
                if s > 0.0 {
                    for (_, v) in row.iter_mut() {
                        *v /= s;
                    }
                }
            }
        }
    }

    /// Learn vocabulary and IDF weights from a corpus.
    pub fn fit<S: AsRef<str>>(&mut self, corpus: &[S]) {
        self.counter.fit(corpus);
        let vocab = self.counter.vocabulary().expect("fit populates vocab");
        let n_docs = corpus.len() as f64;
        self.idf = (0..vocab.len())
            .map(|i| ((1.0 + n_docs) / (1.0 + f64::from(vocab.doc_freq(i)))).ln() + 1.0)
            .collect();
    }

    /// TF-IDF featurize one document as sorted `(column, value)` pairs.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform_one(&self, doc: &str) -> Result<Vec<(usize, f64)>, FeatError> {
        if self.idf.is_empty() && self.counter.vocabulary().is_none() {
            return Err(FeatError::NotFitted {
                transformer: "TfIdfVectorizer",
            });
        }
        let mut row = self.counter.transform_one(doc)?;
        self.weigh(&mut row);
        Ok(row)
    }

    /// TF-IDF featurize a batch of documents into a sparse matrix.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform<S: AsRef<str>>(&self, docs: &[S]) -> Result<SparseMatrix, FeatError> {
        let mut b = SparseRowBuilder::new(self.n_features());
        for doc in docs {
            b.push_row(&self.transform_one(doc.as_ref())?);
        }
        Ok(b.finish())
    }

    /// Fit then transform the same corpus.
    ///
    /// # Errors
    /// Propagates transform errors (cannot be `NotFitted`).
    pub fn fit_transform<S: AsRef<str>>(
        &mut self,
        corpus: &[S],
    ) -> Result<SparseMatrix, FeatError> {
        self.fit(corpus);
        self.transform(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_config() -> VectorizerConfig {
        VectorizerConfig::default()
    }

    #[test]
    fn count_vectorizer_counts() {
        let mut v = CountVectorizer::new(word_config()).unwrap();
        let m = v.fit_transform(&["a b a", "b c"]).unwrap();
        assert_eq!(m.n_rows(), 2);
        let vocab = v.vocabulary().unwrap();
        let a = vocab.get("a").unwrap() as usize;
        let b = vocab.get("b").unwrap() as usize;
        let row0 = m.row_pairs(0);
        assert!(row0.contains(&(a, 2.0)));
        assert!(row0.contains(&(b, 1.0)));
    }

    #[test]
    fn transform_before_fit_errors() {
        let v = CountVectorizer::new(word_config()).unwrap();
        assert!(matches!(
            v.transform_one("x"),
            Err(FeatError::NotFitted { .. })
        ));
        let t = TfIdfVectorizer::new(word_config()).unwrap();
        assert!(t.transform_one("x").is_err());
    }

    #[test]
    fn unseen_terms_are_ignored() {
        let mut v = CountVectorizer::new(word_config()).unwrap();
        v.fit(&["known words only"]);
        let row = v.transform_one("unknown stuff").unwrap();
        assert!(row.is_empty());
    }

    #[test]
    fn tfidf_l2_rows_are_unit_norm() {
        let mut v = TfIdfVectorizer::new(word_config()).unwrap();
        let m = v.fit_transform(&["a b c", "a a d", "b d e"]).unwrap();
        for r in 0..m.n_rows() {
            let norm: f64 = m
                .row_pairs(r)
                .iter()
                .map(|(_, v)| v * v)
                .sum::<f64>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {r} norm {norm}");
        }
    }

    #[test]
    fn idf_downweights_common_terms() {
        let mut v = TfIdfVectorizer::new(VectorizerConfig {
            norm: Norm::None,
            ..word_config()
        })
        .unwrap();
        v.fit(&["common rare", "common", "common other"]);
        let vocab = v.vocabulary().unwrap();
        let common = vocab.get("common").unwrap() as usize;
        let rare = vocab.get("rare").unwrap() as usize;
        assert!(v.idf()[rare] > v.idf()[common]);
    }

    #[test]
    fn sublinear_tf_dampens_counts() {
        let base = TfIdfVectorizer::new(VectorizerConfig {
            norm: Norm::None,
            ..word_config()
        })
        .unwrap();
        let mut raw = base.clone();
        raw.fit(&["w w w w", "x"]);
        let mut sub = TfIdfVectorizer::new(VectorizerConfig {
            norm: Norm::None,
            sublinear_tf: true,
            ..word_config()
        })
        .unwrap();
        sub.fit(&["w w w w", "x"]);
        let w = raw.vocabulary().unwrap().get("w").unwrap() as usize;
        let raw_v = raw.transform_one("w w w w").unwrap();
        let sub_v = sub.transform_one("w w w w").unwrap();
        let rv = raw_v.iter().find(|(c, _)| *c == w).unwrap().1;
        let sv = sub_v.iter().find(|(c, _)| *c == w).unwrap().1;
        assert!(sv < rv);
    }

    #[test]
    fn char_analyzer_ngram_range() {
        let mut v = CountVectorizer::new(VectorizerConfig {
            analyzer: Analyzer::Char,
            ngram_lo: 2,
            ngram_hi: 3,
            ..word_config()
        })
        .unwrap();
        v.fit(&["abc"]);
        let vocab = v.vocabulary().unwrap();
        assert!(vocab.get("ab").is_some());
        assert!(vocab.get("abc").is_some());
        assert!(vocab.get("a").is_none());
    }

    #[test]
    fn invalid_range_rejected() {
        assert!(CountVectorizer::new(VectorizerConfig {
            ngram_lo: 3,
            ngram_hi: 2,
            ..word_config()
        })
        .is_err());
        assert!(TfIdfVectorizer::new(VectorizerConfig {
            ngram_lo: 0,
            ngram_hi: 1,
            ..word_config()
        })
        .is_err());
    }

    #[test]
    fn max_features_caps_width() {
        let mut v = CountVectorizer::new(VectorizerConfig {
            max_features: Some(2),
            ..word_config()
        })
        .unwrap();
        v.fit(&["a b c d e", "a b"]);
        assert_eq!(v.n_features(), 2);
    }

    #[test]
    fn batch_matches_single_row() {
        let mut v = TfIdfVectorizer::new(word_config()).unwrap();
        let docs = ["quick brown fox", "lazy dog", "quick dog"];
        v.fit(&docs);
        let batch = v.transform(&docs).unwrap();
        for (r, doc) in docs.iter().enumerate() {
            assert_eq!(batch.row_pairs(r), v.transform_one(doc).unwrap());
        }
    }
}
