//! N-gram extraction over word tokens and characters.

/// Emit word n-grams of orders `lo..=hi` (joined with spaces) into
/// `out`, calling `f` once per n-gram.
///
/// ```
/// use willump_featurize::ngrams::word_ngrams;
///
/// let toks = vec!["a".to_string(), "b".to_string(), "c".to_string()];
/// let mut grams = Vec::new();
/// word_ngrams(&toks, 1, 2, |g| grams.push(g.to_string()));
/// assert_eq!(grams, vec!["a", "b", "c", "a b", "b c"]);
/// ```
///
/// # Panics
/// Panics if `lo == 0` or `lo > hi`.
pub fn word_ngrams(tokens: &[String], lo: usize, hi: usize, mut f: impl FnMut(&str)) {
    assert!(lo >= 1 && lo <= hi, "invalid n-gram range {lo}..={hi}");
    let mut buf = String::new();
    for n in lo..=hi {
        if n > tokens.len() {
            break;
        }
        for window in tokens.windows(n) {
            buf.clear();
            for (i, tok) in window.iter().enumerate() {
                if i > 0 {
                    buf.push(' ');
                }
                buf.push_str(tok);
            }
            f(&buf);
        }
    }
}

/// Emit character n-grams of orders `lo..=hi` from normalized text,
/// calling `f` once per n-gram.
///
/// Operates on `char` boundaries, so multi-byte text is safe.
///
/// # Panics
/// Panics if `lo == 0` or `lo > hi`.
pub fn char_ngrams(text: &str, lo: usize, hi: usize, mut f: impl FnMut(&str)) {
    assert!(lo >= 1 && lo <= hi, "invalid n-gram range {lo}..={hi}");
    let chars: Vec<char> = text.chars().collect();
    let mut buf = String::new();
    for n in lo..=hi {
        if n > chars.len() {
            break;
        }
        for window in chars.windows(n) {
            buf.clear();
            buf.extend(window.iter());
            f(&buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_words(tokens: &[&str], lo: usize, hi: usize) -> Vec<String> {
        let toks: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        word_ngrams(&toks, lo, hi, |g| out.push(g.to_string()));
        out
    }

    fn collect_chars(text: &str, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        char_ngrams(text, lo, hi, |g| out.push(g.to_string()));
        out
    }

    #[test]
    fn unigrams_only() {
        assert_eq!(collect_words(&["x", "y"], 1, 1), vec!["x", "y"]);
    }

    #[test]
    fn bigram_window() {
        assert_eq!(
            collect_words(&["a", "b", "c"], 2, 3),
            vec!["a b", "b c", "a b c"]
        );
    }

    #[test]
    fn short_input_yields_what_fits() {
        assert_eq!(collect_words(&["solo"], 2, 3), Vec::<String>::new());
        assert_eq!(collect_words(&["solo"], 1, 3), vec!["solo"]);
    }

    #[test]
    fn char_ngrams_basic() {
        assert_eq!(collect_chars("abc", 2, 2), vec!["ab", "bc"]);
        assert_eq!(collect_chars("ab", 1, 3), vec!["a", "b", "ab"]);
    }

    #[test]
    fn char_ngrams_multibyte_safe() {
        assert_eq!(collect_chars("héé", 2, 2), vec!["hé", "éé"]);
    }

    #[test]
    #[should_panic(expected = "invalid n-gram range")]
    fn zero_order_panics() {
        word_ngrams(&[], 0, 1, |_| {});
    }
}
