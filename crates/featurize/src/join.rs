//! Lookup joins against a feature store.
//!
//! The Music, Credit, and Tracking benchmarks compute most features by
//! joining entity ids (user, song, ip, ...) against precomputed
//! feature tables — the paper's "remote data lookup, data joins"
//! operators. [`StoreJoin`] performs one such join through a
//! [`willump_store::Store`], which charges simulated network latency
//! and counts round trips when the tables are remote.

use willump_data::Matrix;
use willump_store::{Key, Store};

use crate::FeatError;

/// A keyed lookup join against one table of a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreJoin {
    store: Store,
    table: String,
    dim: usize,
}

impl StoreJoin {
    /// A join against `table` in `store`.
    ///
    /// # Errors
    /// Returns [`FeatError::Store`] if the table does not exist.
    pub fn new(store: Store, table: impl Into<String>) -> Result<StoreJoin, FeatError> {
        let table = table.into();
        let dim = store.table_dim(&table)?;
        Ok(StoreJoin { store, table, dim })
    }

    /// Output feature width (the table's row dimension).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The table name joined against.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The underlying store handle.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Join a batch of keys, producing one feature row per key.
    ///
    /// All keys are fetched in a single batched request (one round
    /// trip), matching the paper's asynchronous batched Redis queries.
    ///
    /// # Errors
    /// Returns [`FeatError::Store`] for missing tables/keys.
    pub fn join_batch(&self, keys: &[Key]) -> Result<Matrix, FeatError> {
        let rows = self.store.get_batch(&self.table, keys)?;
        let mut out = Matrix::zeros(keys.len(), self.dim);
        for (r, row) in rows.iter().enumerate() {
            out.row_mut(r).copy_from_slice(row);
        }
        Ok(out)
    }

    /// Join a single key (one round trip).
    ///
    /// # Errors
    /// Returns [`FeatError::Store`] for missing tables/keys.
    pub fn join_one(&self, key: &Key) -> Result<Vec<f64>, FeatError> {
        let rows = self
            .store
            .get_batch(&self.table, std::slice::from_ref(key))?;
        Ok(rows[0].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_store::{FeatureTable, LatencyModel};

    fn store() -> Store {
        let mut t = FeatureTable::new(2);
        t.insert(Key::Int(1), vec![1.0, 2.0]).unwrap();
        t.insert(Key::Int(2), vec![3.0, 4.0]).unwrap();
        t.set_default(vec![0.0, 0.0]).unwrap();
        Store::remote(
            [("songs".to_string(), t)],
            LatencyModel::virtual_network(1_000, 10),
        )
    }

    #[test]
    fn join_batch_is_one_round_trip() {
        let s = store();
        let j = StoreJoin::new(s.clone(), "songs").unwrap();
        let m = j
            .join_batch(&[Key::Int(2), Key::Int(1), Key::Int(99)])
            .unwrap();
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]); // default row
        assert_eq!(s.stats().round_trips(), 1);
        assert_eq!(s.stats().keys_fetched(), 3);
    }

    #[test]
    fn join_one() {
        let s = store();
        let j = StoreJoin::new(s.clone(), "songs").unwrap();
        assert_eq!(j.join_one(&Key::Int(1)).unwrap(), vec![1.0, 2.0]);
        assert_eq!(j.dim(), 2);
        assert_eq!(j.table(), "songs");
    }

    #[test]
    fn unknown_table_is_error() {
        let s = store();
        assert!(StoreJoin::new(s, "nope").is_err());
    }
}
