//! Stateless hashing vectorizer: analyzer + hashing trick, no fit.
//!
//! A `HashingVectorizer` maps documents straight to a fixed-width
//! sparse representation without learning a vocabulary, trading exact
//! term identity for zero fit cost and bounded memory. Production
//! serving systems reach for it when vocabularies churn faster than
//! models retrain; for Willump it also gives the cascades optimizer a
//! text IFV whose cost does not grow with corpus size.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use willump_data::{SparseMatrix, SparseRowBuilder};

use crate::vectorize::{Norm, VectorizerConfig};
use crate::FeatError;

/// Hashing-trick text vectorizer sharing [`VectorizerConfig`]'s
/// analyzer (word/char n-grams) but projecting n-grams into
/// `n_features` signed-hash buckets instead of a fitted vocabulary.
#[derive(Debug, Clone)]
pub struct HashingVectorizer {
    config: VectorizerConfig,
    n_features: usize,
}

impl HashingVectorizer {
    /// A vectorizer with `n_features` output columns.
    ///
    /// `config.min_df` and `config.max_features` are ignored — the
    /// hashing trick has no vocabulary to prune.
    ///
    /// # Errors
    /// Returns [`FeatError::BadConfig`] for an invalid n-gram range or
    /// `n_features == 0`.
    pub fn new(
        config: VectorizerConfig,
        n_features: usize,
    ) -> Result<HashingVectorizer, FeatError> {
        if n_features == 0 {
            return Err(FeatError::BadConfig {
                reason: "hashing vectorizer needs at least one column".into(),
            });
        }
        // Reuse the n-gram range validation by constructing a counter.
        crate::CountVectorizer::new(config.clone())?;
        Ok(HashingVectorizer { config, n_features })
    }

    /// Number of output columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The analyzer configuration.
    pub fn config(&self) -> &VectorizerConfig {
        &self.config
    }

    /// Vectorize one document as sorted `(column, value)` pairs.
    pub fn transform_one(&self, doc: &str) -> Vec<(usize, f64)> {
        let mut acc: HashMap<usize, f64> = HashMap::new();
        self.config.analyze(doc, |g| {
            let mut h = DefaultHasher::new();
            g.hash(&mut h);
            let hv = h.finish();
            let col = (hv % self.n_features as u64) as usize;
            let sign = if hv & (1 << 63) == 0 { 1.0 } else { -1.0 };
            *acc.entry(col).or_insert(0.0) += sign;
        });
        let mut row: Vec<(usize, f64)> = acc.into_iter().filter(|(_, v)| *v != 0.0).collect();
        row.sort_unstable_by_key(|(c, _)| *c);
        match self.config.norm {
            Norm::None => {}
            Norm::L1 => {
                let s: f64 = row.iter().map(|(_, v)| v.abs()).sum();
                if s > 0.0 {
                    for (_, v) in &mut row {
                        *v /= s;
                    }
                }
            }
            Norm::L2 => {
                let s: f64 = row.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
                if s > 0.0 {
                    for (_, v) in &mut row {
                        *v /= s;
                    }
                }
            }
        }
        row
    }

    /// Vectorize a batch of documents into a sparse matrix.
    pub fn transform<S: AsRef<str>>(&self, docs: &[S]) -> SparseMatrix {
        let mut b = SparseRowBuilder::new(self.n_features);
        for doc in docs {
            b.push_row(&self.transform_one(doc.as_ref()));
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectorize::Analyzer;

    fn cfg(norm: Norm) -> VectorizerConfig {
        VectorizerConfig {
            norm,
            ..VectorizerConfig::default()
        }
    }

    #[test]
    fn deterministic_and_bounded() {
        let v = HashingVectorizer::new(cfg(Norm::None), 32).unwrap();
        let a = v.transform_one("the quick brown fox");
        let b = v.transform_one("the quick brown fox");
        assert_eq!(a, b);
        assert!(a.iter().all(|(c, _)| *c < 32));
        assert!(!a.is_empty());
    }

    #[test]
    fn no_fit_needed_and_width_is_fixed() {
        let v = HashingVectorizer::new(cfg(Norm::None), 8).unwrap();
        let m = v.transform(&["a b", "c d e", ""]);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 8);
        assert!(m.row_pairs(2).is_empty(), "empty doc hashes to nothing");
    }

    #[test]
    fn l2_norm_applied() {
        let v = HashingVectorizer::new(cfg(Norm::L2), 64).unwrap();
        let row = v.transform_one("some words for hashing here");
        let norm: f64 = row.iter().map(|(_, v)| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn char_analyzer_works() {
        let v = HashingVectorizer::new(
            VectorizerConfig {
                analyzer: Analyzer::Char,
                ngram_lo: 2,
                ngram_hi: 3,
                norm: Norm::None,
                ..VectorizerConfig::default()
            },
            128,
        )
        .unwrap();
        let row = v.transform_one("abcd");
        // "abcd" has 3 bigrams + 2 trigrams; collisions may merge some.
        let mass: f64 = row.iter().map(|(_, v)| v.abs()).sum();
        assert!((1.0..=5.0).contains(&mass), "mass {mass}");
    }

    #[test]
    fn batch_matches_single_row() {
        let v = HashingVectorizer::new(cfg(Norm::L2), 16).unwrap();
        let docs = ["alpha beta", "gamma", "alpha gamma delta"];
        let m = v.transform(&docs);
        for (r, d) in docs.iter().enumerate() {
            assert_eq!(m.row_pairs(r), v.transform_one(d));
        }
    }

    #[test]
    fn rejects_bad_config() {
        assert!(HashingVectorizer::new(cfg(Norm::None), 0).is_err());
        assert!(HashingVectorizer::new(
            VectorizerConfig {
                ngram_lo: 0,
                ..VectorizerConfig::default()
            },
            8
        )
        .is_err());
    }
}
