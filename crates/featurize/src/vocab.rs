//! Token vocabularies mapping terms to feature-column indices.

use std::collections::HashMap;

/// A term → column-index mapping built from a training corpus.
///
/// Built by counting document frequencies and keeping the
/// `max_features` most frequent terms above `min_df`, like sklearn's
/// vectorizers (used in the Product/Toxic/Price Kaggle entries).
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    index: HashMap<String, u32>,
    terms: Vec<String>,
    doc_freq: Vec<u32>,
}

impl Vocabulary {
    /// An empty vocabulary to be populated via [`VocabBuilder`].
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The column index for `term`, if present.
    pub fn get(&self, term: &str) -> Option<u32> {
        self.index.get(term).copied()
    }

    /// The term at column `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn term(&self, i: usize) -> &str {
        &self.terms[i]
    }

    /// Document frequency (from the fit corpus) of the term at `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn doc_freq(&self, i: usize) -> u32 {
        self.doc_freq[i]
    }

    /// Construct directly from `(term, document frequency)` pairs, in
    /// column order. Used by tests and snapshots.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, u32)>) -> Vocabulary {
        let mut v = Vocabulary::new();
        for (term, df) in pairs {
            let id = v.terms.len() as u32;
            v.index.insert(term.clone(), id);
            v.terms.push(term);
            v.doc_freq.push(df);
        }
        v
    }
}

/// Accumulates per-document term sets and finalizes a [`Vocabulary`].
#[derive(Debug, Default)]
pub struct VocabBuilder {
    doc_freq: HashMap<String, u32>,
    n_docs: u32,
}

impl VocabBuilder {
    /// A fresh builder.
    pub fn new() -> VocabBuilder {
        VocabBuilder::default()
    }

    /// Number of documents seen.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Record one document's distinct terms.
    pub fn add_document<'a>(&mut self, distinct_terms: impl IntoIterator<Item = &'a str>) {
        self.n_docs += 1;
        for t in distinct_terms {
            *self.doc_freq.entry(t.to_string()).or_insert(0) += 1;
        }
    }

    /// Finalize, keeping terms with document frequency ≥ `min_df`,
    /// truncated to the `max_features` most frequent (ties broken
    /// lexicographically for determinism).
    pub fn finish(self, min_df: u32, max_features: Option<usize>) -> Vocabulary {
        let mut entries: Vec<(String, u32)> = self
            .doc_freq
            .into_iter()
            .filter(|(_, df)| *df >= min_df)
            .collect();
        // Sort by descending document frequency, then term, so the
        // vocabulary is deterministic across runs.
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if let Some(m) = max_features {
            entries.truncate(m);
        }
        // Re-sort kept terms lexicographically so column order is
        // stable under small max_features changes.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Vocabulary::from_pairs(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut b = VocabBuilder::new();
        b.add_document(["a", "b"]);
        b.add_document(["b", "c"]);
        b.add_document(["b"]);
        assert_eq!(b.n_docs(), 3);
        let v = b.finish(1, None);
        assert_eq!(v.len(), 3);
        let b_idx = v.get("b").unwrap() as usize;
        assert_eq!(v.doc_freq(b_idx), 3);
        assert_eq!(v.get("z"), None);
        assert_eq!(v.term(b_idx), "b");
    }

    #[test]
    fn min_df_filters_rare_terms() {
        let mut b = VocabBuilder::new();
        b.add_document(["common", "rare"]);
        b.add_document(["common"]);
        let v = b.finish(2, None);
        assert_eq!(v.len(), 1);
        assert!(v.get("rare").is_none());
    }

    #[test]
    fn max_features_keeps_most_frequent() {
        let mut b = VocabBuilder::new();
        for _ in 0..3 {
            b.add_document(["hot"]);
        }
        b.add_document(["cold", "hot"]);
        b.add_document(["warm", "cold"]);
        let v = b.finish(1, Some(2));
        assert_eq!(v.len(), 2);
        assert!(v.get("hot").is_some());
        assert!(v.get("cold").is_some());
        assert!(v.get("warm").is_none());
    }

    #[test]
    fn deterministic_order() {
        let make = || {
            let mut b = VocabBuilder::new();
            b.add_document(["x", "y", "z"]);
            b.add_document(["y"]);
            b.finish(1, None)
        };
        let v1 = make();
        let v2 = make();
        for i in 0..v1.len() {
            assert_eq!(v1.term(i), v2.term(i));
        }
    }
}
