//! Smoothed mean target encoding for high-cardinality categoricals.
//!
//! Entity-heavy workloads (Music's user/song ids, Tracking's ip/app
//! ids) carry most of their signal in per-entity label statistics.
//! Kaggle-style pipelines encode those as the smoothed mean of the
//! training label per category — exactly the sort of cheap,
//! high-importance feature Willump's cascades promote into the
//! efficient set.

use std::collections::HashMap;

use willump_data::Matrix;

use crate::FeatError;

/// Smoothed mean target encoder.
///
/// Encodes category `c` as
/// `(sum_y(c) + smoothing * prior) / (count(c) + smoothing)`, where
/// `prior` is the global label mean. Unknown categories at transform
/// time encode as the prior. `smoothing = 0` gives the raw per-category
/// mean (undefined categories still fall back to the prior).
#[derive(Debug, Clone)]
pub struct TargetEncoder {
    smoothing: f64,
    prior: f64,
    codes: HashMap<String, f64>,
    fitted: bool,
}

impl TargetEncoder {
    /// An encoder with the given additive smoothing strength.
    ///
    /// # Errors
    /// Returns [`FeatError::BadConfig`] if `smoothing` is negative or
    /// not finite.
    pub fn new(smoothing: f64) -> Result<TargetEncoder, FeatError> {
        if !smoothing.is_finite() || smoothing < 0.0 {
            return Err(FeatError::BadConfig {
                reason: format!("smoothing must be finite and >= 0, got {smoothing}"),
            });
        }
        Ok(TargetEncoder {
            smoothing,
            prior: 0.0,
            codes: HashMap::new(),
            fitted: false,
        })
    }

    /// The global label mean learned at fit time.
    pub fn prior(&self) -> f64 {
        self.prior
    }

    /// Number of distinct categories seen at fit time.
    pub fn n_categories(&self) -> usize {
        self.codes.len()
    }

    /// Learn per-category smoothed label means.
    ///
    /// # Errors
    /// Returns [`FeatError::ShapeMismatch`] when `values` and `labels`
    /// differ in length, and [`FeatError::BadConfig`] when they are
    /// empty.
    pub fn fit<S: AsRef<str>>(&mut self, values: &[S], labels: &[f64]) -> Result<(), FeatError> {
        if values.len() != labels.len() {
            return Err(FeatError::ShapeMismatch {
                expected: values.len(),
                found: labels.len(),
            });
        }
        if values.is_empty() {
            return Err(FeatError::BadConfig {
                reason: "target encoder needs at least one row".into(),
            });
        }
        self.prior = labels.iter().sum::<f64>() / labels.len() as f64;
        let mut sums: HashMap<&str, (f64, f64)> = HashMap::new();
        for (v, &y) in values.iter().zip(labels) {
            let e = sums.entry(v.as_ref()).or_insert((0.0, 0.0));
            e.0 += y;
            e.1 += 1.0;
        }
        self.codes = sums
            .into_iter()
            .map(|(k, (sum, count))| {
                let code = (sum + self.smoothing * self.prior) / (count + self.smoothing);
                (k.to_string(), code)
            })
            .collect();
        self.fitted = true;
        Ok(())
    }

    /// The encoding for one value (the prior when unknown).
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform_one(&self, value: &str) -> Result<f64, FeatError> {
        if !self.fitted {
            return Err(FeatError::NotFitted {
                transformer: "TargetEncoder",
            });
        }
        Ok(self.codes.get(value).copied().unwrap_or(self.prior))
    }

    /// Encode a batch as a single-column dense matrix.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform<S: AsRef<str>>(&self, values: &[S]) -> Result<Matrix, FeatError> {
        let col: Result<Vec<f64>, FeatError> = values
            .iter()
            .map(|v| self.transform_one(v.as_ref()))
            .collect();
        Ok(Matrix::column_vector(col?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsmoothed_codes_are_category_means() {
        let mut e = TargetEncoder::new(0.0).unwrap();
        e.fit(&["a", "a", "b", "b"], &[1.0, 0.0, 1.0, 1.0]).unwrap();
        assert!((e.transform_one("a").unwrap() - 0.5).abs() < 1e-12);
        assert!((e.transform_one("b").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_pulls_toward_prior() {
        // prior = 0.5; category "a" has one positive example.
        let mut e = TargetEncoder::new(10.0).unwrap();
        e.fit(&["a", "b", "c", "d"], &[1.0, 0.0, 1.0, 0.0]).unwrap();
        let code = e.transform_one("a").unwrap();
        assert!(code > 0.5 && code < 0.6, "heavily smoothed: {code}");
        // Raw mean would be 1.0; smoothing must shrink it.
        let mut raw = TargetEncoder::new(0.0).unwrap();
        raw.fit(&["a", "b", "c", "d"], &[1.0, 0.0, 1.0, 0.0])
            .unwrap();
        assert!(raw.transform_one("a").unwrap() > code);
    }

    #[test]
    fn unknown_category_gets_prior() {
        let mut e = TargetEncoder::new(1.0).unwrap();
        e.fit(&["a", "b"], &[1.0, 0.0]).unwrap();
        assert!((e.transform_one("zzz").unwrap() - e.prior()).abs() < 1e-12);
        assert!((e.prior() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_one_by_one() {
        let mut e = TargetEncoder::new(2.0).unwrap();
        e.fit(&["x", "y", "x"], &[1.0, 0.0, 1.0]).unwrap();
        let m = e.transform(&["x", "y", "nope"]).unwrap();
        let col = m.column(0);
        for (i, v) in ["x", "y", "nope"].iter().enumerate() {
            assert!((col[i] - e.transform_one(v).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(TargetEncoder::new(-1.0).is_err());
        assert!(TargetEncoder::new(f64::NAN).is_err());
        let mut e = TargetEncoder::new(1.0).unwrap();
        assert!(e.fit(&["a"], &[1.0, 2.0]).is_err());
        assert!(e.fit(&[] as &[&str], &[]).is_err());
        let unfitted = TargetEncoder::new(1.0).unwrap();
        assert!(unfitted.transform_one("a").is_err());
    }

    #[test]
    fn counts_categories() {
        let mut e = TargetEncoder::new(1.0).unwrap();
        e.fit(&["a", "b", "a"], &[1.0, 0.0, 1.0]).unwrap();
        assert_eq!(e.n_categories(), 2);
    }
}
