//! Standardization of dense numeric features.

use willump_data::Matrix;

use crate::FeatError;

/// Standardize columns to zero mean and unit variance.
///
/// Constant columns (zero variance) pass through centered but not
/// scaled, matching sklearn.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// A new, unfitted scaler.
    pub fn new() -> StandardScaler {
        StandardScaler::default()
    }

    /// Fitted per-column means (empty before fit).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations (empty before fit).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Learn column means and standard deviations.
    pub fn fit(&mut self, x: &Matrix) {
        let n = x.n_rows().max(1) as f64;
        self.means = x.column_means();
        let mut vars = vec![0.0; x.n_cols()];
        for r in 0..x.n_rows() {
            for (v, (xi, m)) in vars.iter_mut().zip(x.row(r).iter().zip(&self.means)) {
                *v += (xi - m) * (xi - m);
            }
        }
        self.stds = vars.into_iter().map(|v| (v / n).sqrt()).collect();
    }

    /// Standardize a batch.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before fit or
    /// [`FeatError::ShapeMismatch`] on width mismatch.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, FeatError> {
        if self.means.is_empty() {
            return Err(FeatError::NotFitted {
                transformer: "StandardScaler",
            });
        }
        if x.n_cols() != self.means.len() {
            return Err(FeatError::ShapeMismatch {
                expected: self.means.len(),
                found: x.n_cols(),
            });
        }
        let mut out = x.clone();
        for r in 0..out.n_rows() {
            let row = out.row_mut(r);
            for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v -= m;
                if *s > 0.0 {
                    *v /= s;
                }
            }
        }
        Ok(out)
    }

    /// Standardize one row in place.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before fit or
    /// [`FeatError::ShapeMismatch`] on width mismatch.
    pub fn transform_one(&self, row: &mut [f64]) -> Result<(), FeatError> {
        if self.means.is_empty() {
            return Err(FeatError::NotFitted {
                transformer: "StandardScaler",
            });
        }
        if row.len() != self.means.len() {
            return Err(FeatError::ShapeMismatch {
                expected: self.means.len(),
                found: row.len(),
            });
        }
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v -= m;
            if *s > 0.0 {
                *v /= s;
            }
        }
        Ok(())
    }

    /// Fit then transform the same matrix.
    ///
    /// # Errors
    /// Propagates transform errors (cannot be `NotFitted`).
    pub fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix, FeatError> {
        self.fit(x);
        self.transform(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]]);
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&x).unwrap();
        for c in 0..2 {
            let col = z.column(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_centers_only() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&x).unwrap();
        assert_eq!(z.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn errors() {
        let s = StandardScaler::new();
        assert!(s.transform(&Matrix::zeros(1, 1)).is_err());
        let mut s = StandardScaler::new();
        s.fit(&Matrix::zeros(2, 3));
        assert!(matches!(
            s.transform(&Matrix::zeros(2, 2)),
            Err(FeatError::ShapeMismatch {
                expected: 3,
                found: 2
            })
        ));
        let mut row = [0.0; 2];
        assert!(s.transform_one(&mut row).is_err());
    }

    #[test]
    fn single_row_matches_batch() {
        let x = Matrix::from_rows(&[vec![1.0, -5.0], vec![2.0, 5.0], vec![3.0, 0.0]]);
        let mut s = StandardScaler::new();
        let z = s.fit_transform(&x).unwrap();
        let mut row = x.row(1).to_vec();
        s.transform_one(&mut row).unwrap();
        assert_eq!(row.as_slice(), z.row(1));
    }
}
