//! Error type for featurization operators.

use std::error::Error;
use std::fmt;

/// Errors produced by featurization operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeatError {
    /// A transformer was used before `fit`.
    NotFitted {
        /// The transformer that was misused.
        transformer: &'static str,
    },
    /// The input shape did not match what the transformer was fit on.
    ShapeMismatch {
        /// Expected width.
        expected: usize,
        /// Supplied width.
        found: usize,
    },
    /// A store lookup failed.
    Store(String),
    /// Invalid configuration (e.g. empty n-gram range).
    BadConfig {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for FeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatError::NotFitted { transformer } => {
                write!(f, "`{transformer}` used before fit")
            }
            FeatError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "input width {found} does not match fitted width {expected}"
                )
            }
            FeatError::Store(msg) => write!(f, "store lookup failed: {msg}"),
            FeatError::BadConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for FeatError {}

impl From<willump_store::StoreError> for FeatError {
    fn from(e: willump_store::StoreError) -> Self {
        FeatError::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = FeatError::NotFitted {
            transformer: "TfIdfVectorizer",
        };
        assert!(e.to_string().contains("before fit"));
        let s: FeatError = willump_store::StoreError::UnknownTable { name: "x".into() }.into();
        assert!(matches!(s, FeatError::Store(_)));
    }
}
