//! Quantile binning (discretization) of numeric features.
//!
//! Credit-style tabular pipelines bucket continuous features (income,
//! loan amount) into quantile bins before feeding them to linear
//! models; the bin index is also a natural key for feature-level
//! caching because it collapses a continuum of raw values onto a small
//! set of cache keys.

use willump_data::Matrix;

use crate::FeatError;

/// Equal-frequency (quantile) discretizer for one numeric column.
///
/// `fit` computes `n_bins - 1` cut points at the empirical quantiles;
/// `transform` maps each value to its bin index in `0..n_bins`.
/// Values below the first cut map to bin 0 and above the last to
/// `n_bins - 1`, so unseen extremes stay in range. Duplicate cut
/// points (from heavily-tied data) are collapsed, so the effective
/// number of bins can be smaller than requested; [`QuantileBinner::n_bins`]
/// reports the effective count.
#[derive(Debug, Clone)]
pub struct QuantileBinner {
    requested_bins: usize,
    cuts: Vec<f64>,
    fitted: bool,
}

impl QuantileBinner {
    /// A binner targeting `n_bins` equal-frequency bins.
    ///
    /// # Errors
    /// Returns [`FeatError::BadConfig`] if `n_bins < 2`.
    pub fn new(n_bins: usize) -> Result<QuantileBinner, FeatError> {
        if n_bins < 2 {
            return Err(FeatError::BadConfig {
                reason: format!("need at least 2 bins, got {n_bins}"),
            });
        }
        Ok(QuantileBinner {
            requested_bins: n_bins,
            cuts: Vec::new(),
            fitted: false,
        })
    }

    /// Effective number of bins after deduplicating cut points
    /// (equals the requested count on untied data; 0 before fit).
    pub fn n_bins(&self) -> usize {
        if self.fitted {
            self.cuts.len() + 1
        } else {
            0
        }
    }

    /// The learned cut points (empty before fit).
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Learn cut points from the empirical distribution of `values`.
    /// Non-finite values are ignored during fitting.
    ///
    /// # Errors
    /// Returns [`FeatError::BadConfig`] when no finite values remain.
    pub fn fit(&mut self, values: &[f64]) -> Result<(), FeatError> {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Err(FeatError::BadConfig {
                reason: "quantile binner needs at least one finite value".into(),
            });
        }
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let mut cuts = Vec::with_capacity(self.requested_bins - 1);
        for q in 1..self.requested_bins {
            let frac = q as f64 / self.requested_bins as f64;
            // Nearest-rank quantile on the sorted sample.
            let idx = ((frac * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
            cuts.push(sorted[idx]);
        }
        cuts.dedup();
        self.cuts = cuts;
        self.fitted = true;
        Ok(())
    }

    /// The bin index for one value. `NaN` maps to bin 0 (the
    /// missing-value convention of the Credit workload's pipeline).
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform_one(&self, value: f64) -> Result<usize, FeatError> {
        if !self.fitted {
            return Err(FeatError::NotFitted {
                transformer: "QuantileBinner",
            });
        }
        if value.is_nan() {
            return Ok(0);
        }
        // partition_point: count of cuts strictly below `value`.
        Ok(self.cuts.partition_point(|c| *c < value))
    }

    /// Bin a batch as a single-column dense matrix of bin indices.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform(&self, values: &[f64]) -> Result<Matrix, FeatError> {
        let col: Result<Vec<f64>, FeatError> = values
            .iter()
            .map(|&v| self.transform_one(v).map(|b| b as f64))
            .collect();
        Ok(Matrix::column_vector(col?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_bins_evenly() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut b = QuantileBinner::new(4).unwrap();
        b.fit(&values).unwrap();
        assert_eq!(b.n_bins(), 4);
        // Each quartile of the input lands in its own bin.
        assert_eq!(b.transform_one(5.0).unwrap(), 0);
        assert_eq!(b.transform_one(30.0).unwrap(), 1);
        assert_eq!(b.transform_one(60.0).unwrap(), 2);
        assert_eq!(b.transform_one(95.0).unwrap(), 3);
    }

    #[test]
    fn extremes_stay_in_range() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut b = QuantileBinner::new(5).unwrap();
        b.fit(&values).unwrap();
        assert_eq!(b.transform_one(-1e9).unwrap(), 0);
        assert_eq!(b.transform_one(1e9).unwrap(), b.n_bins() - 1);
    }

    #[test]
    fn ties_collapse_bins() {
        // 90% of the mass at one value: most cuts coincide.
        let mut values = vec![5.0; 90];
        values.extend((0..10).map(|i| i as f64));
        let mut b = QuantileBinner::new(10).unwrap();
        b.fit(&values).unwrap();
        assert!(b.n_bins() < 10, "effective bins: {}", b.n_bins());
        assert!(b.n_bins() >= 2);
    }

    #[test]
    fn nan_maps_to_bin_zero_and_is_ignored_in_fit() {
        let mut values: Vec<f64> = (0..20).map(|i| i as f64).collect();
        values.push(f64::NAN);
        let mut b = QuantileBinner::new(3).unwrap();
        b.fit(&values).unwrap();
        assert_eq!(b.transform_one(f64::NAN).unwrap(), 0);
    }

    #[test]
    fn batch_matches_one_by_one() {
        let values: Vec<f64> = (0..30).map(|i| (i * 7 % 30) as f64).collect();
        let mut b = QuantileBinner::new(3).unwrap();
        b.fit(&values).unwrap();
        let m = b.transform(&values).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(m.column(0)[i] as usize, b.transform_one(v).unwrap());
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(QuantileBinner::new(1).is_err());
        let mut b = QuantileBinner::new(2).unwrap();
        assert!(b.fit(&[f64::NAN, f64::INFINITY - f64::INFINITY]).is_err());
        let unfitted = QuantileBinner::new(2).unwrap();
        assert!(unfitted.transform_one(1.0).is_err());
    }
}
