//! Categorical feature encoding: one-hot, ordinal, and hashing.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use willump_data::{Matrix, SparseMatrix, SparseRowBuilder};

use crate::FeatError;

/// One-hot encoder over string categories.
///
/// Unknown categories at transform time encode as the all-zero row,
/// like sklearn's `handle_unknown="ignore"` (the setting the Price
/// benchmark uses for brand/category columns).
#[derive(Debug, Clone, Default)]
pub struct OneHotEncoder {
    categories: HashMap<String, usize>,
    names: Vec<String>,
}

impl OneHotEncoder {
    /// A new, unfitted encoder.
    pub fn new() -> OneHotEncoder {
        OneHotEncoder::default()
    }

    /// Number of output columns (0 before fit).
    pub fn n_features(&self) -> usize {
        self.names.len()
    }

    /// The category encoded at column `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn category(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Learn the category set (sorted for determinism).
    pub fn fit<S: AsRef<str>>(&mut self, values: &[S]) {
        let mut set: Vec<&str> = values.iter().map(AsRef::as_ref).collect();
        set.sort_unstable();
        set.dedup();
        self.names = set.iter().map(|s| s.to_string()).collect();
        self.categories = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
    }

    /// Encode one value as `(column, 1.0)` pairs (empty if unknown).
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform_one(&self, value: &str) -> Result<Vec<(usize, f64)>, FeatError> {
        if self.names.is_empty() {
            return Err(FeatError::NotFitted {
                transformer: "OneHotEncoder",
            });
        }
        Ok(self
            .categories
            .get(value)
            .map(|&i| vec![(i, 1.0)])
            .unwrap_or_default())
    }

    /// Encode a batch into a sparse matrix.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform<S: AsRef<str>>(&self, values: &[S]) -> Result<SparseMatrix, FeatError> {
        let mut b = SparseRowBuilder::new(self.n_features());
        for v in values {
            b.push_row(&self.transform_one(v.as_ref())?);
        }
        Ok(b.finish())
    }
}

/// Ordinal encoder mapping categories to integer codes.
///
/// Unknown categories map to `-1.0`, the convention the GBDT workloads
/// (Music, Credit, Tracking) use for unseen entities.
#[derive(Debug, Clone, Default)]
pub struct OrdinalEncoder {
    categories: HashMap<String, usize>,
}

impl OrdinalEncoder {
    /// A new, unfitted encoder.
    pub fn new() -> OrdinalEncoder {
        OrdinalEncoder::default()
    }

    /// Number of known categories.
    pub fn n_categories(&self) -> usize {
        self.categories.len()
    }

    /// Learn the category set (sorted for determinism).
    pub fn fit<S: AsRef<str>>(&mut self, values: &[S]) {
        let mut set: Vec<&str> = values.iter().map(AsRef::as_ref).collect();
        set.sort_unstable();
        set.dedup();
        self.categories = set
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s.to_string(), i))
            .collect();
    }

    /// The code for one value (`-1.0` when unknown).
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform_one(&self, value: &str) -> Result<f64, FeatError> {
        if self.categories.is_empty() {
            return Err(FeatError::NotFitted {
                transformer: "OrdinalEncoder",
            });
        }
        Ok(self.categories.get(value).map_or(-1.0, |&i| i as f64))
    }

    /// Encode a batch as a single-column dense matrix.
    ///
    /// # Errors
    /// Returns [`FeatError::NotFitted`] before `fit`.
    pub fn transform<S: AsRef<str>>(&self, values: &[S]) -> Result<Matrix, FeatError> {
        let col: Result<Vec<f64>, FeatError> = values
            .iter()
            .map(|v| self.transform_one(v.as_ref()))
            .collect();
        Ok(Matrix::column_vector(col?))
    }
}

/// The hashing trick: project arbitrary tokens into a fixed number of
/// columns with a signed hash, needing no fit pass.
#[derive(Debug, Clone)]
pub struct FeatureHasher {
    n_features: usize,
}

impl FeatureHasher {
    /// A hasher with `n_features` output columns.
    ///
    /// # Panics
    /// Panics if `n_features == 0`.
    pub fn new(n_features: usize) -> FeatureHasher {
        assert!(n_features > 0, "hasher needs at least one column");
        FeatureHasher { n_features }
    }

    /// Number of output columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Hash a bag of tokens into signed counts.
    pub fn transform_one<'a>(
        &self,
        tokens: impl IntoIterator<Item = &'a str>,
    ) -> Vec<(usize, f64)> {
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for tok in tokens {
            let mut h = DefaultHasher::new();
            tok.hash(&mut h);
            let hv = h.finish();
            let col = (hv % self.n_features as u64) as usize;
            let sign = if hv & (1 << 63) == 0 { 1.0 } else { -1.0 };
            *acc.entry(col).or_insert(0.0) += sign;
        }
        let mut row: Vec<(usize, f64)> = acc.into_iter().filter(|(_, v)| *v != 0.0).collect();
        row.sort_unstable_by_key(|(c, _)| *c);
        row
    }

    /// Hash a batch of token bags into a sparse matrix.
    pub fn transform<'a, I>(&self, docs: impl IntoIterator<Item = I>) -> SparseMatrix
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut b = SparseRowBuilder::new(self.n_features);
        for doc in docs {
            b.push_row(&self.transform_one(doc));
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_round_trip() {
        let mut e = OneHotEncoder::new();
        e.fit(&["b", "a", "b", "c"]);
        assert_eq!(e.n_features(), 3);
        assert_eq!(e.category(0), "a");
        let row = e.transform_one("b").unwrap();
        assert_eq!(row, vec![(1, 1.0)]);
        assert_eq!(e.transform_one("zzz").unwrap(), vec![]);
        let m = e.transform(&["a", "c"]).unwrap();
        assert_eq!(m.row_pairs(0), vec![(0, 1.0)]);
        assert_eq!(m.row_pairs(1), vec![(2, 1.0)]);
    }

    #[test]
    fn one_hot_not_fitted() {
        let e = OneHotEncoder::new();
        assert!(e.transform_one("a").is_err());
    }

    #[test]
    fn ordinal_codes_and_unknowns() {
        let mut e = OrdinalEncoder::new();
        e.fit(&["x", "y"]);
        assert_eq!(e.transform_one("x").unwrap(), 0.0);
        assert_eq!(e.transform_one("y").unwrap(), 1.0);
        assert_eq!(e.transform_one("z").unwrap(), -1.0);
        let m = e.transform(&["y", "z"]).unwrap();
        assert_eq!(m.column(0), vec![1.0, -1.0]);
    }

    #[test]
    fn ordinal_not_fitted() {
        let e = OrdinalEncoder::new();
        assert!(e.transform_one("a").is_err());
    }

    #[test]
    fn hasher_is_deterministic_and_bounded() {
        let h = FeatureHasher::new(16);
        let a = h.transform_one(["tok1", "tok2", "tok1"]);
        let b = h.transform_one(["tok1", "tok2", "tok1"]);
        assert_eq!(a, b);
        assert!(a.iter().all(|(c, _)| *c < 16));
        // Repeated token accumulates magnitude 2 in its bucket.
        assert!(a.iter().any(|(_, v)| v.abs() == 2.0));
    }

    #[test]
    fn hasher_batch() {
        let h = FeatureHasher::new(8);
        let m = h.transform(vec![vec!["a", "b"], vec!["c"]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn hasher_zero_columns_panics() {
        let _ = FeatureHasher::new(0);
    }
}
