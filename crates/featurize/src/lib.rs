//! # willump-featurize
//!
//! Feature-computation substrate for the Willump reproduction: the
//! operators that benchmark pipelines use to turn raw inputs into
//! numeric features (paper Table 1's "feature-computing operators").
//!
//! - text: [`tokenize`], [`ngrams`], [`CountVectorizer`],
//!   [`TfIdfVectorizer`] (string processing, n-grams, TF-IDF),
//! - categorical: [`OneHotEncoder`], [`OrdinalEncoder`],
//!   [`FeatureHasher`], [`TargetEncoder`] (feature encoding),
//! - stateless text: [`HashingVectorizer`] (hashing trick over the
//!   same word/char analyzers),
//! - discretization: [`QuantileBinner`] (equal-frequency binning),
//! - numeric: [`StandardScaler`], [`string_stats`] (cheap string
//!   statistics — the kind of inexpensive-but-informative features
//!   Willump's cascades love),
//! - lookups: [`StoreJoin`] (remote data lookup / data joins against a
//!   `willump-store` feature store).
//!
//! Every transformer follows a `fit` / `transform` convention and
//! supports both batch (`transform`) and single-row (`transform_one`)
//! paths, since Willump optimizes both batch and example-at-a-time
//! query modalities.

#![warn(missing_docs)]

mod binning;
mod encode;
mod error;
mod hashvec;
mod join;
pub mod ngrams;
mod scale;
pub mod stringstats;
mod target;
pub mod tokenize;
mod vectorize;
mod vocab;

pub use binning::QuantileBinner;
pub use encode::{FeatureHasher, OneHotEncoder, OrdinalEncoder};
pub use error::FeatError;
pub use hashvec::HashingVectorizer;
pub use join::StoreJoin;
pub use scale::StandardScaler;
pub use stringstats::{string_stats, STRING_STAT_NAMES};
pub use target::TargetEncoder;
pub use vectorize::{Analyzer, CountVectorizer, Norm, TfIdfVectorizer, VectorizerConfig};
pub use vocab::{VocabBuilder, Vocabulary};
