//! Cheap string-statistic features.
//!
//! These are the inexpensive-but-informative features that make
//! Willump's end-to-end cascades effective on the text benchmarks:
//! an approximate model can often classify a document from its length,
//! capitalization, and punctuation profile alone, without paying for
//! TF-IDF over character n-grams.

use willump_data::Matrix;

/// Names of the statistics produced by [`string_stats`], in order.
pub const STRING_STAT_NAMES: [&str; 8] = [
    "char_len",
    "word_count",
    "mean_word_len",
    "upper_ratio",
    "digit_ratio",
    "punct_ratio",
    "exclamation_count",
    "unique_word_ratio",
];

/// Compute the eight string statistics for one document.
pub fn string_stats(text: &str) -> [f64; 8] {
    let char_len = text.chars().count();
    let mut upper = 0usize;
    let mut digit = 0usize;
    let mut punct = 0usize;
    let mut exclam = 0usize;
    for ch in text.chars() {
        if ch.is_uppercase() {
            upper += 1;
        }
        if ch.is_ascii_digit() {
            digit += 1;
        }
        if ch.is_ascii_punctuation() {
            punct += 1;
        }
        if ch == '!' {
            exclam += 1;
        }
    }
    let words: Vec<&str> = text.split_whitespace().collect();
    let word_count = words.len();
    let mean_word_len = if word_count == 0 {
        0.0
    } else {
        words.iter().map(|w| w.chars().count()).sum::<usize>() as f64 / word_count as f64
    };
    let unique_ratio = if word_count == 0 {
        0.0
    } else {
        let mut sorted: Vec<&str> = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len() as f64 / word_count as f64
    };
    let denom = char_len.max(1) as f64;
    [
        char_len as f64,
        word_count as f64,
        mean_word_len,
        upper as f64 / denom,
        digit as f64 / denom,
        punct as f64 / denom,
        exclam as f64,
        unique_ratio,
    ]
}

/// Compute string statistics for a batch of documents.
pub fn string_stats_batch<S: AsRef<str>>(docs: &[S]) -> Matrix {
    let mut out = Matrix::zeros(docs.len(), STRING_STAT_NAMES.len());
    for (r, doc) in docs.iter().enumerate() {
        out.row_mut(r).copy_from_slice(&string_stats(doc.as_ref()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_is_all_zero() {
        assert_eq!(string_stats(""), [0.0; 8]);
    }

    #[test]
    fn counts_are_right() {
        let s = string_stats("Hi there!! 42");
        assert_eq!(s[0], 13.0); // chars
        assert_eq!(s[1], 3.0); // words
        assert_eq!(s[6], 2.0); // exclamations
        assert!((s[4] - 2.0 / 13.0).abs() < 1e-12); // digits
        assert!((s[3] - 1.0 / 13.0).abs() < 1e-12); // uppercase
    }

    #[test]
    fn unique_word_ratio() {
        let s = string_stats("spam spam spam ham");
        assert!((s[7] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_single() {
        let docs = ["one two", "THREE!!!"];
        let m = string_stats_batch(&docs);
        assert_eq!(m.row(0), &string_stats(docs[0]));
        assert_eq!(m.row(1), &string_stats(docs[1]));
    }

    #[test]
    fn names_match_width() {
        assert_eq!(STRING_STAT_NAMES.len(), string_stats("x").len());
    }
}
