//! Feature-layout remapping between generator subsets.
//!
//! Cascades compute the efficient IFVs first and, on escalation, only
//! the *inefficient* IFVs; the full model however was trained on the
//! canonical all-generators layout. These helpers remap sparse feature
//! entries from a subset layout into the full layout so escalation
//! never recomputes features it already has (paper Figure 3).

use willump_data::{FeatureMatrix, Matrix, SparseRowBuilder};
use willump_graph::analysis::{subset_layout, IfvAnalysis};
use willump_graph::TransformGraph;

use crate::WillumpError;

/// Per-generator `(offset, width)` in some layout, keyed by generator
/// index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remapper {
    /// `(generator, offset_in_subset, offset_in_full, width)` per
    /// subset member, in subset order.
    blocks: Vec<(usize, usize, usize, usize)>,
    /// Total width of the full layout.
    full_width: usize,
}

impl Remapper {
    /// Build a remapper from `subset` coordinates into the canonical
    /// full layout.
    ///
    /// # Errors
    /// Returns [`WillumpError::Graph`] for invalid subset indices.
    pub fn new(
        graph: &TransformGraph,
        analysis: &IfvAnalysis,
        subset: &[usize],
    ) -> Result<Remapper, WillumpError> {
        let full: Vec<usize> = (0..analysis.generators.len()).collect();
        let full_layout = subset_layout(graph, analysis, &full).map_err(WillumpError::from)?;
        let sub_layout = subset_layout(graph, analysis, subset).map_err(WillumpError::from)?;
        let full_width = full_layout.iter().map(|(_, _, w)| w).sum();
        let blocks = sub_layout
            .iter()
            .map(|&(g, sub_off, w)| {
                let (_, full_off, _) = full_layout[g];
                (g, sub_off, full_off, w)
            })
            .collect();
        Ok(Remapper { blocks, full_width })
    }

    /// Width of the full layout.
    pub fn full_width(&self) -> usize {
        self.full_width
    }

    /// Remap sparse entries from subset coordinates to full
    /// coordinates.
    pub fn to_full(&self, entries: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(entries.len());
        for &(c, v) in entries {
            for &(_, sub_off, full_off, w) in &self.blocks {
                if c >= sub_off && c < sub_off + w {
                    out.push((c - sub_off + full_off, v));
                    break;
                }
            }
        }
        out.sort_unstable_by_key(|(c, _)| *c);
        out
    }

    /// Merge two remapped entry lists (e.g. efficient + inefficient
    /// blocks) into one sorted full-layout row.
    pub fn merge_full(a: Vec<(usize, f64)>, b: Vec<(usize, f64)>) -> Vec<(usize, f64)> {
        let mut out = a;
        out.extend(b);
        out.sort_unstable_by_key(|(c, _)| *c);
        out
    }

    /// Copy a dense subset-layout row into its blocks of a dense
    /// full-layout row (the fast path for narrow lookup pipelines,
    /// where sparse entry shuffling would dominate).
    ///
    /// # Panics
    /// Panics if `src` is narrower than the subset layout or `dst`
    /// narrower than the full layout.
    pub fn copy_into_dense(&self, src: &[f64], dst: &mut [f64]) {
        for &(_, sub_off, full_off, w) in &self.blocks {
            dst[full_off..full_off + w].copy_from_slice(&src[sub_off..sub_off + w]);
        }
    }
}

/// Merge efficient and inefficient feature blocks into full-layout
/// rows: output row `j` combines row `eff_pick[j]` of `eff` with row
/// `j` of `ineff`. This is the subset-merge step every escalating
/// optimization shares (cascades on low-confidence inputs, top-K
/// filters on surviving candidates); it lives here so the plan
/// executor is its single caller instead of each predictor carrying a
/// copy. Dense input pairs take a block-copy fast path (narrow lookup
/// pipelines, where sparse entry shuffling would dominate); anything
/// sparse goes through sorted entry remapping.
///
/// # Panics
/// Panics if an index in `eff_pick` is out of range for `eff` or the
/// matrices are narrower than their remappers' layouts.
pub fn merge_subset_rows(
    eff_remap: &Remapper,
    ineff_remap: &Remapper,
    eff: &FeatureMatrix,
    eff_pick: &[usize],
    ineff: &FeatureMatrix,
    full_width: usize,
) -> FeatureMatrix {
    match (eff, ineff) {
        (FeatureMatrix::Dense(eff_m), FeatureMatrix::Dense(ineff_m)) => {
            let mut merged = Matrix::zeros(eff_pick.len(), full_width);
            for (j, &orig) in eff_pick.iter().enumerate() {
                let dst = merged.row_mut(j);
                eff_remap.copy_into_dense(eff_m.row(orig), dst);
                ineff_remap.copy_into_dense(ineff_m.row(j), dst);
            }
            FeatureMatrix::Dense(merged)
        }
        _ => {
            let mut b = SparseRowBuilder::new(full_width);
            for (j, &orig) in eff_pick.iter().enumerate() {
                let merged = Remapper::merge_full(
                    eff_remap.to_full(&eff.row_entries(orig)),
                    ineff_remap.to_full(&ineff.row_entries(j)),
                );
                b.push_row(&merged);
            }
            FeatureMatrix::Sparse(b.finish())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use willump_graph::analysis::identify_ifvs;
    use willump_graph::{EngineMode, Executor, GraphBuilder, Operator};

    fn three_fg_graph() -> Arc<TransformGraph> {
        let mut b = GraphBuilder::new();
        let s0 = b.source("a");
        let s1 = b.source("b");
        let s2 = b.source("c");
        let f0 = b.add("f0", Operator::StringStats, [s0]).unwrap(); // width 8
        let f1 = b.add("f1", Operator::StringStats, [s1]).unwrap(); // width 8
        let f2 = b.add("f2", Operator::StringStats, [s2]).unwrap(); // width 8
        Arc::new(b.finish_with_concat("cat", [f0, f1, f2]).unwrap())
    }

    #[test]
    fn remaps_subset_into_full_coordinates() {
        let g = three_fg_graph();
        let an = identify_ifvs(&g).unwrap();
        // Subset {2, 0}: generator 2 occupies subset cols 0..8 but
        // full cols 16..24.
        let r = Remapper::new(&g, &an, &[2, 0]).unwrap();
        assert_eq!(r.full_width(), 24);
        let remapped = r.to_full(&[(0, 1.0), (9, 2.0)]);
        assert_eq!(remapped, vec![(1, 2.0), (16, 1.0)]);
    }

    #[test]
    fn identity_for_full_subset() {
        let g = three_fg_graph();
        let an = identify_ifvs(&g).unwrap();
        let r = Remapper::new(&g, &an, &[0, 1, 2]).unwrap();
        let entries = vec![(0, 1.0), (10, 2.0), (23, 3.0)];
        assert_eq!(r.to_full(&entries), entries);
    }

    #[test]
    fn merge_interleaves_sorted() {
        let a = vec![(0, 1.0), (16, 2.0)];
        let b = vec![(8, 3.0)];
        assert_eq!(
            Remapper::merge_full(a, b),
            vec![(0, 1.0), (8, 3.0), (16, 2.0)]
        );
    }

    #[test]
    fn merge_subset_rows_rebuilds_full_rows() {
        let g = three_fg_graph();
        let an = identify_ifvs(&g).unwrap();
        let exec = Executor::new(g.clone(), EngineMode::Compiled).unwrap();
        let mut t = willump_data::Table::new();
        for col in ["a", "b", "c"] {
            t.add_column(
                col,
                willump_data::Column::from(vec![
                    format!("{col} text one!"),
                    format!("{col}!!"),
                    format!("longer {col} body"),
                ]),
            )
            .unwrap();
        }
        let efficient = vec![0, 2];
        let inefficient = vec![1];
        let eff_remap = Remapper::new(&g, &an, &efficient).unwrap();
        let ineff_remap = Remapper::new(&g, &an, &inefficient).unwrap();
        let eff = exec.features_batch(&t, Some(&efficient)).unwrap();
        let full = exec.features_batch(&t, None).unwrap();
        // Merge a scrambled picked subset: rows 2 and 0.
        let pick = vec![2usize, 0];
        let sub = t.take_rows(&pick);
        let ineff = exec.features_batch(&sub, Some(&inefficient)).unwrap();
        let merged = merge_subset_rows(
            &eff_remap,
            &ineff_remap,
            &eff,
            &pick,
            &ineff,
            eff_remap.full_width(),
        );
        assert_eq!(merged.n_rows(), 2);
        for (j, &orig) in pick.iter().enumerate() {
            assert_eq!(merged.row_entries(j), full.row_entries(orig));
        }
    }

    #[test]
    fn invalid_subset_errors() {
        let g = three_fg_graph();
        let an = identify_ifvs(&g).unwrap();
        assert!(Remapper::new(&g, &an, &[5]).is_err());
    }
}
