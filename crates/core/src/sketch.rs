//! Count-Min Sketch: sublinear per-key frequency estimation for
//! hot-key (heavy-hitter) detection at admission time.
//!
//! Willump's thesis is that serving should exploit workload
//! statistics; the serving runtime uses this sketch to notice when a
//! handful of keys dominate traffic, so it can pin their cache
//! entries and spread them across shards instead of letting key-hash
//! routing concentrate them on one worker. A sketch (Cormode &
//! Muthukrishnan 2005) does this in O(width x depth) memory for an
//! unbounded key space, with one-sided error: estimates never
//! undercount, and overcount by at most `ε x total` with probability
//! `1 - δ` for `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.

use std::hash::{Hash, Hasher};

/// A Count-Min Sketch over hashable keys.
///
/// ```
/// use willump::CountMinSketch;
///
/// let mut sketch = CountMinSketch::new(256, 4);
/// for _ in 0..90 {
///     sketch.record(&"hot");
/// }
/// for i in 0..10 {
///     sketch.record(&format!("cold-{i}"));
/// }
/// assert!(sketch.estimate(&"hot") >= 90); // never undercounts
/// assert!(sketch.is_heavy(&"hot", 0.5));
/// assert!(!sketch.is_heavy(&"cold-3", 0.5));
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    /// Row-major `depth x width` counter matrix.
    counts: Vec<u64>,
    /// Total increments recorded (the stream length `N`).
    total: u64,
}

impl CountMinSketch {
    /// A sketch with `depth` hash rows of `width` counters each.
    ///
    /// # Panics
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize) -> CountMinSketch {
        assert!(width > 0, "width must be positive");
        assert!(depth > 0, "depth must be positive");
        CountMinSketch {
            width,
            depth,
            counts: vec![0; width * depth],
            total: 0,
        }
    }

    /// A sketch sized from accuracy targets: estimates overcount by at
    /// most `epsilon x total` with probability `1 - delta`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
    pub fn with_error(epsilon: f64, delta: f64) -> CountMinSketch {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth)
    }

    /// Counters per hash row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of independent hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total increments recorded since creation (or [`clear`]).
    ///
    /// [`clear`]: CountMinSketch::clear
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Column index of `key` in hash row `row`.
    ///
    /// Each row seeds the hasher differently (splitmix64 of the row
    /// index), giving `depth` near-independent hash functions from one
    /// hasher family.
    fn column<K: Hash + ?Sized>(&self, row: usize, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        splitmix64(row as u64 + 1).hash(&mut h);
        key.hash(&mut h);
        (h.finish() % self.width as u64) as usize
    }

    /// Record one occurrence of `key`; returns the new estimate.
    pub fn record<K: Hash + ?Sized>(&mut self, key: &K) -> u64 {
        self.total += 1;
        let mut min = u64::MAX;
        for row in 0..self.depth {
            let col = self.column(row, key);
            let cell = &mut self.counts[row * self.width + col];
            *cell = cell.saturating_add(1);
            min = min.min(*cell);
        }
        min
    }

    /// Estimated occurrence count of `key` (never an undercount).
    pub fn estimate<K: Hash + ?Sized>(&self, key: &K) -> u64 {
        (0..self.depth)
            .map(|row| self.counts[row * self.width + self.column(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Whether `key` accounts for at least `fraction` of all recorded
    /// traffic — the heavy-hitter test. Always `false` on an empty
    /// sketch or for `fraction <= 0`.
    pub fn is_heavy<K: Hash + ?Sized>(&self, key: &K, fraction: f64) -> bool {
        if self.total == 0 || fraction <= 0.0 {
            return false;
        }
        self.estimate(key) as f64 >= fraction * self.total as f64
    }

    /// Halve every counter (and the total), aging out stale history.
    ///
    /// Calling this periodically turns the sketch into an
    /// exponentially-decayed frequency estimate, so a key that *was*
    /// hot an hour ago stops looking hot once its traffic moves on.
    pub fn halve(&mut self) {
        for c in &mut self.counts {
            *c >>= 1;
        }
        self.total >>= 1;
    }

    /// Reset all counters and the total.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

/// splitmix64 finalizer: decorrelates sequential row indices into
/// well-mixed per-row hash seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_never_undercount() {
        let mut s = CountMinSketch::new(64, 4);
        for i in 0..1000u32 {
            s.record(&(i % 50));
        }
        for k in 0..50u32 {
            assert!(s.estimate(&k) >= 20, "key {k} undercounted");
        }
        assert_eq!(s.total(), 1000);
    }

    #[test]
    fn small_streams_are_exact() {
        // Far fewer distinct keys than width: collisions are unlikely
        // in every row, so estimates are exact.
        let mut s = CountMinSketch::new(1024, 4);
        for k in 0..10u64 {
            for _ in 0..=k {
                s.record(&k);
            }
        }
        for k in 0..10u64 {
            assert_eq!(s.estimate(&k), k + 1);
        }
        assert_eq!(s.total(), 55);
    }

    #[test]
    fn heavy_hitter_detection() {
        let mut s = CountMinSketch::with_error(0.01, 0.01);
        // One key takes 60% of traffic, the rest spread thin.
        for i in 0..1000u32 {
            if i % 5 < 3 {
                s.record("dominant");
            } else {
                s.record(&format!("tail-{}", i % 97));
            }
        }
        assert!(s.is_heavy("dominant", 0.5));
        for i in 0..97u32 {
            assert!(
                !s.is_heavy(&format!("tail-{i}"), 0.5),
                "tail key {i} misflagged"
            );
        }
    }

    #[test]
    fn unseen_keys_estimate_near_zero() {
        let mut s = CountMinSketch::with_error(0.001, 0.01);
        for i in 0..100u32 {
            s.record(&i);
        }
        // ε=0.001, N=100: overcount is below one count.
        assert_eq!(s.estimate(&12345u32), 0);
        assert!(!s.is_heavy(&12345u32, 0.01));
    }

    #[test]
    fn halving_ages_out_old_traffic() {
        let mut s = CountMinSketch::new(256, 4);
        for _ in 0..800 {
            s.record("was-hot");
        }
        assert!(s.is_heavy("was-hot", 0.5));
        // Traffic moves on; periodic halving forgets the old regime.
        for _ in 0..4 {
            s.halve();
            for i in 0..200u32 {
                s.record(&i);
            }
        }
        assert!(
            !s.is_heavy("was-hot", 0.5),
            "stale key still heavy: {} of {}",
            s.estimate("was-hot"),
            s.total()
        );
    }

    #[test]
    fn clear_resets() {
        let mut s = CountMinSketch::new(16, 2);
        s.record(&1u32);
        s.clear();
        assert_eq!(s.total(), 0);
        assert_eq!(s.estimate(&1u32), 0);
    }

    #[test]
    fn with_error_sizes_rows() {
        let s = CountMinSketch::with_error(0.01, 0.05);
        assert!(s.width() >= 272, "width {}", s.width());
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn empty_sketch_is_never_heavy() {
        let s = CountMinSketch::new(8, 2);
        assert!(!s.is_heavy(&0u32, 0.0));
        assert_eq!(s.estimate(&0u32), 0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = CountMinSketch::new(0, 2);
    }
}
