//! Pipeline definitions: a transformation graph plus a model spec.

use std::sync::Arc;

use willump_data::Table;
use willump_graph::{EngineMode, Executor, InputRow, TransformGraph};
use willump_models::{ModelSpec, Task, TrainedModel};

use crate::WillumpError;

/// An ML inference pipeline before optimization: the transformation
/// graph (raw inputs → feature vector) and the model trained on its
/// output (paper §3: "functions from raw inputs to predictions").
#[derive(Debug, Clone)]
pub struct Pipeline {
    graph: Arc<TransformGraph>,
    spec: ModelSpec,
}

impl Pipeline {
    /// Couple a graph with a model spec.
    pub fn new(graph: Arc<TransformGraph>, spec: ModelSpec) -> Pipeline {
        Pipeline { graph, spec }
    }

    /// The transformation graph.
    pub fn graph(&self) -> &Arc<TransformGraph> {
        &self.graph
    }

    /// The model family and hyperparameters.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The prediction task.
    pub fn task(&self) -> Task {
        self.spec.task()
    }

    /// Train the full model and wrap everything as the *unoptimized*
    /// baseline: interpreted (Python-like) execution of the original
    /// pipeline.
    ///
    /// # Errors
    /// Propagates execution and training failures.
    pub fn fit_baseline(
        &self,
        train: &Table,
        labels: &[f64],
        seed: u64,
    ) -> Result<BaselinePipeline, WillumpError> {
        let exec = Executor::new(self.graph.clone(), EngineMode::Interpreted)?;
        let feats = exec.features_batch(train, None)?;
        let model = self.spec.fit(&feats, labels, seed)?;
        Ok(BaselinePipeline {
            exec,
            model: Arc::new(model),
        })
    }
}

/// The unoptimized pipeline: interpreted feature computation plus the
/// full model — the "Python" bars in paper Figures 5 and 6.
#[derive(Debug, Clone)]
pub struct BaselinePipeline {
    exec: Executor,
    model: Arc<TrainedModel>,
}

impl BaselinePipeline {
    /// Wrap a prebuilt interpreted executor and trained model.
    pub fn from_parts(exec: Executor, model: Arc<TrainedModel>) -> BaselinePipeline {
        BaselinePipeline { exec, model }
    }

    /// The interpreted executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The trained full model.
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.model
    }

    /// Predict scores for a batch.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn predict_batch(&self, table: &Table) -> Result<Vec<f64>, WillumpError> {
        let feats = self.exec.features_batch(table, None)?;
        Ok(self.model.predict_scores(&feats))
    }

    /// Predict the score for one input.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn predict_one(&self, input: &InputRow) -> Result<f64, WillumpError> {
        let row = self.exec.features_one(input, None)?;
        Ok(self.model.predict_score_row(&row.entries, row.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::Column;
    use willump_graph::{GraphBuilder, Operator};
    use willump_models::LogisticParams;

    fn pipeline() -> (Pipeline, Table, Vec<f64>) {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        let g = Arc::new(b.finish_with_concat("cat", [f0]).unwrap());
        let p = Pipeline::new(g, ModelSpec::Logistic(LogisticParams::default()));
        let mut t = Table::new();
        let avals: Vec<f64> = (0..60)
            .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
            .collect();
        let y: Vec<f64> = (0..60).map(|i| (i % 2) as f64).collect();
        t.add_column("a", Column::from(avals)).unwrap();
        (p, t, y)
    }

    #[test]
    fn baseline_trains_and_predicts() {
        let (p, t, y) = pipeline();
        assert_eq!(p.task(), Task::BinaryClassification);
        let baseline = p.fit_baseline(&t, &y, 7).unwrap();
        let scores = baseline.predict_batch(&t).unwrap();
        let acc = willump_models::metrics::accuracy(&scores, &y);
        assert!(acc > 0.95, "accuracy {acc}");
        let input = InputRow::from_table(&t, 1).unwrap();
        let one = baseline.predict_one(&input).unwrap();
        assert!((one - scores[1]).abs() < 1e-9);
    }
}
