//! The end-to-end optimizer driver (paper §3's workflow: dataflow →
//! optimization → compilation).

use std::sync::Arc;
use std::time::Instant;

use willump_data::Table;
use willump_graph::{EngineMode, Executor, FeatureCaches, InputRow, Parallelism};
use willump_models::{Task, TrainedModel};

use crate::cascade::{
    select_threshold, CascadePredictor, CascadeServeStats, ScoreCalibrator, ThresholdSelection,
};
use crate::config::{QueryMode, WillumpConfig};
use crate::efficient::{select_efficient_ifvs, SelectionStrategy};
use crate::pipeline::Pipeline;
use crate::plan::ServingPlan;
use crate::stats::{compute_ifv_stats_with_basis, CostBasis, IfvStats};
use crate::topk::{TopKFilter, TopKServeStats};
use crate::WillumpError;

/// What the optimizer did and measured (paper §6.4's "optimization
/// times" and the cascade microbenchmarks read this).
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// Per-IFV statistics computed during optimization.
    pub ifv_stats: IfvStats,
    /// The efficient IFV subset selected by Algorithm 1 (empty when
    /// cascades were not deployable).
    pub efficient_set: Vec<usize>,
    /// Threshold-selection outcome (classification + cascades only).
    pub threshold: Option<ThresholdSelection>,
    /// Wall-clock time of the entire optimization, seconds.
    pub optimization_seconds: f64,
    /// Whether a cascade was deployed.
    pub cascades_deployed: bool,
    /// Why the economic gate declined to deploy cascades, when it did.
    pub cascade_gate_reason: Option<String>,
    /// Whether a top-K filter was deployed.
    pub filter_deployed: bool,
}

/// The Willump optimizer.
///
/// ```no_run
/// use willump::{Willump, WillumpConfig, Pipeline};
/// # fn main() -> Result<(), willump::WillumpError> {
/// # let (pipeline, train, train_y, valid, valid_y): (Pipeline, willump_data::Table, Vec<f64>, willump_data::Table, Vec<f64>) = unimplemented!();
/// let optimized = Willump::new(WillumpConfig::default())
///     .optimize(&pipeline, &train, &train_y, &valid, &valid_y)?;
/// let scores = optimized.predict_batch(&valid)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Willump {
    config: WillumpConfig,
}

impl Willump {
    /// An optimizer with the given configuration.
    pub fn new(config: WillumpConfig) -> Willump {
        Willump { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WillumpConfig {
        &self.config
    }

    /// Optimize a pipeline: train the full model, compute IFV
    /// statistics, select efficient IFVs, train the small model, pick
    /// the cascade threshold, and assemble the optimized serving path.
    ///
    /// # Errors
    /// Propagates configuration, execution, and training failures.
    pub fn optimize(
        &self,
        pipeline: &Pipeline,
        train: &Table,
        train_labels: &[f64],
        valid: &Table,
        valid_labels: &[f64],
    ) -> Result<OptimizedPipeline, WillumpError> {
        self.config.validate()?;
        if train.n_rows() != train_labels.len() || valid.n_rows() != valid_labels.len() {
            return Err(WillumpError::BadData {
                reason: "tables and labels must have matching lengths".into(),
            });
        }
        let started = Instant::now();
        let cfg = &self.config;

        // Compilation: the optimized pipeline always runs on the
        // compiled engine with the configured parallelism.
        let parallelism = match (cfg.mode, cfg.threads) {
            (_, 1) => Parallelism::None,
            (QueryMode::ExampleAtATime, t) => Parallelism::PerInput(t),
            (_, t) => Parallelism::Batch(t),
        };
        let mut exec = Executor::new(pipeline.graph().clone(), EngineMode::Compiled)?
            .with_parallelism(parallelism);
        if let Some(caching) = cfg.caching {
            let n = exec.analysis().generators.len();
            exec = exec.with_caches(FeatureCaches::new(n, caching.capacity));
        }

        // Train the full model on all features.
        let full_feats = exec.features_batch(train, None)?;
        let full_model = Arc::new(pipeline.spec().fit(&full_feats, train_labels, cfg.seed)?);

        // IFV statistics (importance x cost). Costs are measured on
        // the batch path for batch/top-K queries and on the
        // single-input serving path for example-at-a-time queries,
        // where fixed costs (remote round trips) hit every row.
        let basis = match cfg.mode {
            QueryMode::ExampleAtATime => CostBasis::PerRow { max_rows: 64 },
            _ => CostBasis::Batch,
        };
        let ifv_stats = compute_ifv_stats_with_basis(
            &exec,
            &full_model,
            &full_feats,
            train,
            train_labels,
            cfg.seed,
            basis,
        )?;

        // LPT thread assignment uses measured generator costs.
        exec = exec.with_generator_costs(ifv_stats.cost.clone());

        // Efficient IFV selection (Algorithm 1).
        let strategy = SelectionStrategy::CostEffective {
            gamma: cfg.gamma,
            use_gamma_rule: true,
        };
        let efficient = select_efficient_ifvs(&ifv_stats, strategy, cfg.max_cost_fraction);
        let n_fgs = exec.analysis().generators.len();
        let proper = !efficient.is_empty() && efficient.len() < n_fgs;

        // Small/filter model over the efficient features.
        let small_model = if proper {
            let eff_feats = exec.features_batch(train, Some(&efficient))?;
            Some(Arc::new(pipeline.spec().fit(
                &eff_feats,
                train_labels,
                cfg.seed,
            )?))
        } else {
            None
        };

        // Cascade deployment (classification only).
        let mut threshold = None;
        let mut gate_reason = None;
        let cascade = if cfg.cascades && proper && pipeline.task() == Task::BinaryClassification {
            let small = small_model.clone().expect("proper subset has small model");
            let eff_valid = exec.features_batch(valid, Some(&efficient))?;
            let full_valid = exec.features_batch(valid, None)?;
            let raw_small_valid = small.predict_scores(&eff_valid);
            // Optional confidence calibration (extension; paper uses
            // raw scores). The calibrator is fit on the validation
            // split and applied consistently at threshold-selection
            // and serving time.
            let calibrator = ScoreCalibrator::fit(cfg.calibration, &raw_small_valid, valid_labels);
            let small_valid: Vec<f64> = match &calibrator {
                Some(c) => raw_small_valid.iter().map(|&s| c.calibrate(s)).collect(),
                None => raw_small_valid,
            };
            let sel = select_threshold(
                &small_valid,
                &full_model.predict_scores(&full_valid),
                valid_labels,
                cfg.accuracy_target,
            )?;
            // Economic gate: cascades pay when the features they skip
            // cost more than the extra small-model prediction they add.
            let deploy = if !cfg.cascade_gate {
                true
            } else {
                let model_cost = {
                    let start = Instant::now();
                    let _ = full_model.predict_scores(&full_valid);
                    start.elapsed().as_secs_f64() / valid.n_rows().max(1) as f64
                };
                let ineff_cost: f64 = (0..ifv_stats.len())
                    .filter(|g| !efficient.contains(g))
                    .map(|g| ifv_stats.cost[g])
                    .sum();
                let saving = sel.kept_fraction * ineff_cost;
                if saving <= model_cost {
                    gate_reason = Some(format!(
                        "expected saving {:.2}us/row <= small-model cost {:.2}us/row",
                        saving * 1e6,
                        model_cost * 1e6
                    ));
                    false
                } else {
                    true
                }
            };
            if deploy {
                // Lower the decisions (efficient subset, threshold,
                // calibration) into a serving plan; the predictor is a
                // thin shim over it.
                let plan = ServingPlan::cascade(
                    exec.clone(),
                    small,
                    full_model.clone(),
                    sel.threshold,
                    efficient.clone(),
                )?
                .with_calibrator(calibrator);
                threshold = Some(sel);
                Some(CascadePredictor::from_plan(plan)?)
            } else {
                None
            }
        } else {
            None
        };

        // Top-K filter deployment (any task), lowered the same way.
        let filter = if let (QueryMode::TopK { k }, true) = (cfg.mode, proper) {
            let small = small_model.clone().expect("proper subset has small model");
            let plan = ServingPlan::top_k_filter(
                exec.clone(),
                small,
                full_model.clone(),
                k,
                cfg.topk,
                efficient.clone(),
            )?;
            Some(TopKFilter::from_plan(plan)?)
        } else {
            None
        };

        let report = OptimizationReport {
            efficient_set: efficient,
            threshold,
            optimization_seconds: started.elapsed().as_secs_f64(),
            cascades_deployed: cascade.is_some(),
            cascade_gate_reason: gate_reason,
            filter_deployed: filter.is_some(),
            ifv_stats,
        };
        // The lowered plan this pipeline serves with: filter plan for
        // top-K query modes, else the cascade plan, else the plain
        // compiled full-model plan. Built once so every
        // `serving_plan()` clone shares its counters.
        let plan = if let Some(f) = &filter {
            f.plan().clone()
        } else if let Some(c) = &cascade {
            c.plan().clone()
        } else {
            ServingPlan::full_model_plan(exec.clone(), full_model.clone())
        };
        Ok(OptimizedPipeline {
            exec,
            full_model,
            cascade,
            filter,
            plan,
            report,
        })
    }
}

/// A pipeline after Willump optimization: compiled execution, plus
/// cascades and/or a top-K filter when deployed.
#[derive(Debug, Clone)]
pub struct OptimizedPipeline {
    exec: Executor,
    full_model: Arc<TrainedModel>,
    cascade: Option<CascadePredictor>,
    filter: Option<TopKFilter>,
    plan: ServingPlan,
    report: OptimizationReport,
}

impl OptimizedPipeline {
    /// The optimization report.
    pub fn report(&self) -> &OptimizationReport {
        &self.report
    }

    /// The compiled executor (for instrumentation).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The trained full model.
    pub fn full_model(&self) -> &Arc<TrainedModel> {
        &self.full_model
    }

    /// The deployed cascade, if any.
    pub fn cascade(&self) -> Option<&CascadePredictor> {
        self.cascade.as_ref()
    }

    /// Mutable access to the deployed cascade (threshold sweeps).
    pub fn cascade_mut(&mut self) -> Option<&mut CascadePredictor> {
        self.cascade.as_mut()
    }

    /// The deployed top-K filter, if any.
    pub fn filter(&self) -> Option<&TopKFilter> {
        self.filter.as_ref()
    }

    /// The lowered [`ServingPlan`] this pipeline serves with: the
    /// top-K plan when a filter deployed (the pipeline was optimized
    /// for top-K queries), otherwise the cascade plan when cascades
    /// deployed, otherwise the plain compiled full-model plan.
    /// The returned plan is a clone sharing the deployed plan's
    /// counters and executor — compose freely (e.g.
    /// [`ServingPlan::with_e2e_cache`]) and serve it directly.
    pub fn serving_plan(&self) -> ServingPlan {
        self.plan.clone()
    }

    /// Mutable access to the deployed filter (subset-size sweeps).
    pub fn filter_mut(&mut self) -> Option<&mut TopKFilter> {
        self.filter.as_mut()
    }

    /// Predict scores for a batch: cascaded when a cascade is
    /// deployed, otherwise compiled full-model inference.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn predict_batch(&self, table: &Table) -> Result<Vec<f64>, WillumpError> {
        Ok(self.predict_batch_with_stats(table)?.0)
    }

    /// Batch prediction returning cascade serving statistics.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn predict_batch_with_stats(
        &self,
        table: &Table,
    ) -> Result<(Vec<f64>, Option<CascadeServeStats>), WillumpError> {
        match &self.cascade {
            Some(c) => {
                let (scores, stats) = c.predict_batch(table)?;
                Ok((scores, Some(stats)))
            }
            None => {
                let feats = self.exec.features_batch(table, None)?;
                Ok((self.full_model.predict_scores(&feats), None))
            }
        }
    }

    /// Predict the score for one input.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn predict_one(&self, input: &InputRow) -> Result<f64, WillumpError> {
        match &self.cascade {
            Some(c) => Ok(c.predict_one(input)?.0),
            None => {
                let row = self.exec.features_one(input, None)?;
                Ok(self.full_model.predict_score_row(&row.entries, row.width))
            }
        }
    }

    /// Answer a top-K query: filtered when a filter is deployed,
    /// otherwise exact.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn top_k(
        &self,
        table: &Table,
        k: usize,
    ) -> Result<(Vec<usize>, Option<TopKServeStats>), WillumpError> {
        match &self.filter {
            Some(f) => {
                let (idx, stats) = f.top_k(table, k)?;
                Ok((idx, Some(stats)))
            }
            None => {
                let idx = crate::topk::exact_top_k(&self.exec, &self.full_model, table, k)?;
                Ok((idx, None))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::Column;
    use willump_graph::{GraphBuilder, Operator};
    use willump_models::{LogisticParams, ModelSpec};

    /// Classification data with easy (FG0-signaled) and hard
    /// (FG1-signaled) inputs; FG1 artificially expensive via a second
    /// chained op would be nice, but cost differences arise naturally.
    fn setup() -> (Pipeline, Table, Vec<f64>, Table, Vec<f64>) {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let c = b.source("btxt");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        // FG1 is a string-stats op (more expensive than a numeric
        // passthrough) whose char_len carries the hard signal.
        let f1 = b.add("f1", Operator::StringStats, [c]).unwrap();
        let g = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
        let p = Pipeline::new(g, ModelSpec::Logistic(LogisticParams::default()));

        let make = |n: usize, offset: usize| {
            let mut avals = Vec::new();
            let mut bvals: Vec<String> = Vec::new();
            let mut y = Vec::new();
            for j in 0..n {
                let i = j + offset;
                let label = (i % 2) as f64;
                let easy = !i.is_multiple_of(4);
                if easy {
                    avals.push(if label > 0.5 { 2.5 } else { -2.5 });
                    bvals.push("mid".to_string());
                } else {
                    avals.push(0.0);
                    bvals.push(if label > 0.5 {
                        "very long positive text".to_string()
                    } else {
                        "x".to_string()
                    });
                }
                y.push(label);
            }
            let mut t = Table::new();
            t.add_column("a", Column::from(avals)).unwrap();
            t.add_column("btxt", Column::from(bvals)).unwrap();
            (t, y)
        };
        let (train, train_y) = make(400, 0);
        let (valid, valid_y) = make(200, 400);
        (p, train, train_y, valid, valid_y)
    }

    #[test]
    fn end_to_end_optimization_deploys_cascades() {
        let (p, train, train_y, valid, valid_y) = setup();
        let opt = Willump::new(WillumpConfig::default())
            .optimize(&p, &train, &train_y, &valid, &valid_y)
            .unwrap();
        let report = opt.report();
        assert!(report.optimization_seconds < 30.0);
        // Accuracy within target of the full model on validation.
        let scores = opt.predict_batch(&valid).unwrap();
        let acc = willump_models::metrics::accuracy(&scores, &valid_y);
        let full_feats = opt.executor().features_batch(&valid, None).unwrap();
        let full_acc = willump_models::metrics::accuracy(
            &opt.full_model().predict_scores(&full_feats),
            &valid_y,
        );
        assert!(acc >= full_acc - 0.002, "{acc} vs {full_acc}");
        if report.cascades_deployed {
            let stats = opt.predict_batch_with_stats(&valid).unwrap().1.unwrap();
            assert!(stats.resolved_small + stats.escalated == valid.n_rows());
        }
    }

    #[test]
    fn single_input_agrees_with_batch() {
        let (p, train, train_y, valid, valid_y) = setup();
        let opt = Willump::new(WillumpConfig::default())
            .optimize(&p, &train, &train_y, &valid, &valid_y)
            .unwrap();
        let batch = opt.predict_batch(&valid).unwrap();
        for r in (0..valid.n_rows()).step_by(41) {
            let input = InputRow::from_table(&valid, r).unwrap();
            let one = opt.predict_one(&input).unwrap();
            assert!((one - batch[r]).abs() < 1e-9, "row {r}");
        }
    }

    #[test]
    fn cascades_can_be_disabled() {
        let (p, train, train_y, valid, valid_y) = setup();
        let cfg = WillumpConfig {
            cascades: false,
            ..WillumpConfig::default()
        };
        let opt = Willump::new(cfg)
            .optimize(&p, &train, &train_y, &valid, &valid_y)
            .unwrap();
        assert!(!opt.report().cascades_deployed);
        assert!(opt.cascade().is_none());
    }

    #[test]
    fn topk_mode_deploys_filter() {
        let (p, train, train_y, valid, valid_y) = setup();
        let cfg = WillumpConfig {
            mode: QueryMode::TopK { k: 10 },
            ..WillumpConfig::default()
        };
        let opt = Willump::new(cfg)
            .optimize(&p, &train, &train_y, &valid, &valid_y)
            .unwrap();
        let (idx, stats) = opt.top_k(&valid, 10).unwrap();
        assert_eq!(idx.len(), 10);
        if opt.report().filter_deployed {
            assert!(stats.unwrap().subset_size >= 10);
        }
    }

    #[test]
    fn calibrated_cascades_preserve_accuracy() {
        use crate::config::Calibration;
        let (p, train, train_y, valid, valid_y) = setup();
        for method in [Calibration::Platt, Calibration::Isotonic] {
            let opt = Willump::new(WillumpConfig {
                calibration: method,
                cascade_gate: false,
                ..WillumpConfig::default()
            })
            .optimize(&p, &train, &train_y, &valid, &valid_y)
            .unwrap();
            let scores = opt.predict_batch(&valid).unwrap();
            let acc = willump_models::metrics::accuracy(&scores, &valid_y);
            let full_feats = opt.executor().features_batch(&valid, None).unwrap();
            let full_acc = willump_models::metrics::accuracy(
                &opt.full_model().predict_scores(&full_feats),
                &valid_y,
            );
            assert!(
                acc >= full_acc - 0.01,
                "{method:?}: calibrated cascade {acc} vs full {full_acc}"
            );
            if opt.report().cascades_deployed {
                assert!(
                    opt.cascade().unwrap().calibrator().is_some(),
                    "{method:?}: calibrator should be attached"
                );
            }
        }
    }

    #[test]
    fn mismatched_labels_rejected() {
        let (p, train, train_y, valid, _) = setup();
        let bad = vec![0.0; 3];
        assert!(Willump::new(WillumpConfig::default())
            .optimize(&p, &train, &train_y, &valid, &bad)
            .is_err());
    }
}
