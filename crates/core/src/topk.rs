//! Automatic top-K filter models (paper §4.3).
//!
//! For top-K queries only the relative ranking of the K top-scoring
//! inputs matters. The filter model — constructed exactly like a
//! cascade's small model — scores the whole batch cheaply, keeps a
//! subset of `max(ck * K, min_frac * N)` top candidates, and only
//! those are scored by the full model (reusing the already-computed
//! efficient features). The returned ranking is the full model's
//! ordering of the surviving candidates.
//!
//! Since the plan-IR refactor the filter is a thin shim over a
//! lowered [`ServingPlan`] (`compute_features(efficient)` →
//! `predict(small)` → `topk_filter` → `escalate` → `predict(full)`);
//! the executor logic, including the efficient/inefficient feature
//! merge, lives in [`crate::plan`].

use std::sync::Arc;

use willump_data::Table;
use willump_graph::Executor;
use willump_models::{metrics, TrainedModel};

use crate::config::TopKConfig;
use crate::plan::ServingPlan;
use crate::WillumpError;

/// Statistics from one top-K query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKServeStats {
    /// Batch size scored by the filter model.
    pub batch_size: usize,
    /// Candidates kept for the full model.
    pub subset_size: usize,
}

/// A deployed top-K filter: a thin shim over a lowered
/// [`ServingPlan`].
#[derive(Debug, Clone)]
pub struct TopKFilter {
    plan: ServingPlan,
}

impl TopKFilter {
    /// Assemble a top-K filter from its parts by lowering them into a
    /// plan.
    ///
    /// # Errors
    /// Returns [`WillumpError::Unsupported`] when the efficient subset
    /// is empty or covers every generator (no filtering is possible).
    pub fn new(
        exec: Executor,
        filter: Arc<TrainedModel>,
        full: Arc<TrainedModel>,
        config: TopKConfig,
        efficient: Vec<usize>,
    ) -> Result<TopKFilter, WillumpError> {
        TopKFilter::from_plan(ServingPlan::top_k_filter(
            exec, filter, full, 1, config, efficient,
        )?)
    }

    /// Wrap an already-lowered top-K plan (it must contain a filter
    /// stage).
    ///
    /// # Errors
    /// Returns [`WillumpError::BadConfig`] when the plan has no
    /// [`crate::plan::PlanStage::TopKFilter`] stage.
    pub fn from_plan(plan: ServingPlan) -> Result<TopKFilter, WillumpError> {
        if plan.topk_config().is_none() {
            return Err(WillumpError::BadConfig {
                reason: "top-K filters need a plan with a topk_filter stage".into(),
            });
        }
        Ok(TopKFilter { plan })
    }

    /// The lowered serving plan backing this filter.
    pub fn plan(&self) -> &ServingPlan {
        &self.plan
    }

    /// The filter configuration.
    pub fn config(&self) -> TopKConfig {
        self.plan.topk_config().expect("validated filter stage")
    }

    /// Override the configuration (used by the Table 7 subset-size
    /// sweep).
    pub fn set_config(&mut self, config: TopKConfig) {
        self.plan.set_topk_config(config);
    }

    /// The efficient generator subset the filter model reads.
    pub fn efficient_set(&self) -> &[usize] {
        self.plan
            .efficient_set()
            .expect("top-K plans have an efficient subset")
    }

    /// The subset size used for a batch of `n` when requesting top-`k`.
    pub fn subset_size(&self, n: usize, k: usize) -> usize {
        let config = self.config();
        let by_ck = config.ck.saturating_mul(k);
        let by_frac = (config.min_subset_frac * n as f64).ceil() as usize;
        by_ck.max(by_frac).min(n)
    }

    /// Answer a top-`k` query over `table`: returns the indices of the
    /// predicted top K, best first, plus serving statistics.
    ///
    /// # Errors
    /// Propagates feature-computation failures; errors when `k == 0`.
    pub fn top_k(
        &self,
        table: &Table,
        k: usize,
    ) -> Result<(Vec<usize>, TopKServeStats), WillumpError> {
        let (ranked, report) = self.plan.top_k(table, k)?;
        Ok((
            ranked,
            TopKServeStats {
                batch_size: report.filter_batch.expect("filter stage ran"),
                subset_size: report.filter_kept.expect("filter stage ran"),
            },
        ))
    }
}

/// Exact top-K baseline: full model over the whole batch.
///
/// # Errors
/// Propagates feature-computation failures.
pub fn exact_top_k(
    exec: &Executor,
    full: &TrainedModel,
    table: &Table,
    k: usize,
) -> Result<Vec<usize>, WillumpError> {
    let feats = exec.features_batch(table, None)?;
    let scores = full.predict_scores(&feats);
    Ok(metrics::top_k_indices(&scores, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use willump_data::Column;
    use willump_graph::{EngineMode, GraphBuilder, Operator};
    use willump_models::{LinearParams, ModelSpec};

    /// Regression pipeline with two numeric FGs; the true score is
    /// dominated by FG0 (so the filter works) with a correction from
    /// FG1 (so the full model reranks).
    fn setup() -> (Executor, Table, Vec<f64>) {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        let f1 = b.add("f1", Operator::NumericColumn, [c]).unwrap();
        let g = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let mut avals = Vec::new();
        let mut bvals = Vec::new();
        let mut y = Vec::new();
        for i in 0..500 {
            let a = ((i * 37) % 500) as f64 / 500.0;
            let b = ((i * 91) % 100) as f64 / 100.0;
            avals.push(a);
            bvals.push(b);
            y.push(2.0 * a + 0.3 * b);
        }
        let mut t = Table::new();
        t.add_column("a", Column::from(avals)).unwrap();
        t.add_column("b", Column::from(bvals)).unwrap();
        (exec, t, y)
    }

    fn models(exec: &Executor, t: &Table, y: &[f64]) -> (Arc<TrainedModel>, Arc<TrainedModel>) {
        let params = LinearParams {
            epochs: 120,
            learning_rate: 0.1,
            decay: 0.001,
            l2: 0.0,
        };
        let full_feats = exec.features_batch(t, None).unwrap();
        let full = ModelSpec::Linear(params.clone())
            .fit(&full_feats, y, 1)
            .unwrap();
        let eff_feats = exec.features_batch(t, Some(&[0])).unwrap();
        let filter = ModelSpec::Linear(params).fit(&eff_feats, y, 1).unwrap();
        (Arc::new(filter), Arc::new(full))
    }

    #[test]
    fn subset_size_rules() {
        let (exec, t, y) = setup();
        let (filter, full) = models(&exec, &t, &y);
        let f = TopKFilter::new(exec, filter, full, TopKConfig::default(), vec![0]).unwrap();
        // ck*K dominates: 10*20 = 200 > 5% of 500 = 25.
        assert_eq!(f.subset_size(500, 20), 200);
        // Fraction floor dominates for tiny K: max(10, 25) = 25.
        assert_eq!(f.subset_size(500, 1), 25);
        // Clamped to batch size.
        assert_eq!(f.subset_size(50, 20), 50);
    }

    #[test]
    fn filtered_topk_is_accurate() {
        let (exec, t, y) = setup();
        let (filter, full) = models(&exec, &t, &y);
        let f = TopKFilter::new(
            exec.clone(),
            filter,
            full.clone(),
            TopKConfig::default(),
            vec![0],
        )
        .unwrap();
        let k = 20;
        let (approx, stats) = f.top_k(&t, k).unwrap();
        let exact = exact_top_k(&exec, &full, &t, k).unwrap();
        assert_eq!(approx.len(), k);
        assert_eq!(stats.batch_size, 500);
        assert_eq!(stats.subset_size, 200);
        let precision = metrics::precision_at_k(&approx, &exact);
        assert!(precision >= 0.9, "precision {precision}");
        // Average value of the approximate top-K should be close to
        // the exact top-K's.
        let approx_value = metrics::average_value(&approx, &y);
        let exact_value = metrics::average_value(&exact, &y);
        assert!(
            (exact_value - approx_value) / exact_value < 0.02,
            "{approx_value} vs {exact_value}"
        );
    }

    #[test]
    fn tiny_subset_hurts_accuracy() {
        let (exec, t, y) = setup();
        let (filter, full) = models(&exec, &t, &y);
        let generous = TopKFilter::new(
            exec.clone(),
            filter.clone(),
            full.clone(),
            TopKConfig {
                ck: 10,
                min_subset_frac: 0.05,
            },
            vec![0],
        )
        .unwrap();
        let mut stingy = generous.clone();
        stingy.set_config(TopKConfig {
            ck: 1,
            min_subset_frac: 0.0,
        });
        let exact = exact_top_k(&exec, &full, &t, 20).unwrap();
        let (gen_k, _) = generous.top_k(&t, 20).unwrap();
        let (sting_k, sting_stats) = stingy.top_k(&t, 20).unwrap();
        assert_eq!(sting_stats.subset_size, 20);
        let p_gen = metrics::precision_at_k(&gen_k, &exact);
        let p_sting = metrics::precision_at_k(&sting_k, &exact);
        assert!(p_gen >= p_sting, "{p_gen} vs {p_sting}");
    }

    #[test]
    fn k_zero_rejected() {
        let (exec, t, y) = setup();
        let (filter, full) = models(&exec, &t, &y);
        let f = TopKFilter::new(exec, filter, full, TopKConfig::default(), vec![0]).unwrap();
        assert!(f.top_k(&t, 0).is_err());
    }

    #[test]
    fn bad_subsets_rejected() {
        let (exec, t, y) = setup();
        let (filter, full) = models(&exec, &t, &y);
        assert!(TopKFilter::new(
            exec.clone(),
            filter.clone(),
            full.clone(),
            TopKConfig::default(),
            vec![]
        )
        .is_err());
        assert!(TopKFilter::new(exec, filter, full, TopKConfig::default(), vec![0, 1]).is_err());
        let _ = t;
    }

    #[test]
    fn k_larger_than_batch() {
        let (exec, t, y) = setup();
        let (filter, full) = models(&exec, &t, &y);
        let f = TopKFilter::new(exec, filter, full, TopKConfig::default(), vec![0]).unwrap();
        let small = t.take_rows(&(0..5).collect::<Vec<_>>());
        let (idx, _) = f.top_k(&small, 10).unwrap();
        assert_eq!(idx.len(), 5);
    }
}
