//! IFV statistics: prediction importance and computational cost
//! (paper §4.2, "Computing IFV Statistics").

use willump_data::{FeatureMatrix, Table};
use willump_graph::analysis::subset_layout;
use willump_graph::cost::{measure_costs, measure_costs_per_row};
use willump_graph::Executor;
use willump_models::{importance, Task, TrainedModel};

use crate::WillumpError;

/// How IFV computational costs are measured (query-aware, §2.3):
/// batch queries amortize fixed per-request costs (like a remote round
/// trip) over the batch; example-at-a-time queries pay them per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostBasis {
    /// Batched execution over the training sample.
    Batch,
    /// Single-input serving over (up to) the given number of sampled
    /// rows.
    PerRow {
        /// Sample size cap (per-row measurement is slower).
        max_rows: usize,
    },
}

/// Per-IFV statistics feeding Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct IfvStats {
    /// Prediction importance per generator (sum over its features).
    pub importance: Vec<f64>,
    /// Computational cost per generator, seconds per row.
    pub cost: Vec<f64>,
    /// Boundary (driver) cost per row, seconds.
    pub boundary_cost: f64,
}

impl IfvStats {
    /// Number of IFVs described.
    pub fn len(&self) -> usize {
        self.importance.len()
    }

    /// Whether there are no IFVs.
    pub fn is_empty(&self) -> bool {
        self.importance.is_empty()
    }

    /// Cost-effectiveness (importance / cost) of one IFV; zero-cost
    /// IFVs get infinite cost-effectiveness if they carry importance.
    pub fn cost_effectiveness(&self, g: usize) -> f64 {
        let c = self.cost[g];
        let i = self.importance[g];
        if c <= 0.0 {
            if i > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            i / c
        }
    }

    /// Total pipeline cost (all generators).
    pub fn total_cost(&self) -> f64 {
        self.cost.iter().sum()
    }
}

/// Compute per-feature prediction importances for a trained full model
/// (paper §4.2):
///
/// - linear models: |coefficient| x mean |feature value|,
/// - ensembles (GBDT): permutation importance on the training sample,
/// - others (MLP): importances of a proxy GBDT trained on the same
///   data.
///
/// # Errors
/// Propagates model errors from the proxy-GBDT fallback.
pub fn feature_importances(
    model: &TrainedModel,
    features: &FeatureMatrix,
    labels: &[f64],
    seed: u64,
) -> Result<Vec<f64>, WillumpError> {
    match model {
        TrainedModel::Logistic(_) | TrainedModel::Linear(_) => {
            let coefs = model
                .native_importances()
                .expect("linear models have coefficients");
            Ok(importance::linear_importances(&coefs, features))
        }
        TrainedModel::Gbdt(_) | TrainedModel::Forest(_) => Ok(importance::permutation_importances(
            model, features, labels, seed,
        )),
        TrainedModel::Mlp(m) => {
            let task = if m.is_classifier() {
                Task::BinaryClassification
            } else {
                Task::Regression
            };
            importance::gbdt_proxy_importances(features, labels, task).map_err(WillumpError::from)
        }
    }
}

/// Compute full IFV statistics: importances from the trained model and
/// features, costs from instrumented execution on the training sample
/// (batched — paper §4.2's "during model training" measurement).
///
/// # Errors
/// Propagates execution and model errors.
pub fn compute_ifv_stats(
    exec: &Executor,
    model: &TrainedModel,
    train_features: &FeatureMatrix,
    train_table: &Table,
    labels: &[f64],
    seed: u64,
) -> Result<IfvStats, WillumpError> {
    compute_ifv_stats_with_basis(
        exec,
        model,
        train_features,
        train_table,
        labels,
        seed,
        CostBasis::Batch,
    )
}

/// [`compute_ifv_stats`] with an explicit cost basis. The optimizer
/// passes [`CostBasis::PerRow`] when tuning for example-at-a-time
/// queries, where each input pays fixed costs (remote round trips) in
/// full.
///
/// # Errors
/// Propagates execution and model errors.
pub fn compute_ifv_stats_with_basis(
    exec: &Executor,
    model: &TrainedModel,
    train_features: &FeatureMatrix,
    train_table: &Table,
    labels: &[f64],
    seed: u64,
    basis: CostBasis,
) -> Result<IfvStats, WillumpError> {
    let per_feature = feature_importances(model, train_features, labels, seed)?;
    let analysis = exec.analysis();
    let full: Vec<usize> = (0..analysis.generators.len()).collect();
    let layout = subset_layout(exec.graph(), analysis, &full).map_err(WillumpError::from)?;
    let importance: Vec<f64> = layout
        .iter()
        .map(|&(_, offset, width)| {
            let group: Vec<usize> = (offset..offset + width).collect();
            importance::group_importance(&per_feature, &group)
        })
        .collect();
    let costs = match basis {
        CostBasis::Batch => measure_costs(exec, train_table).map_err(WillumpError::from)?,
        CostBasis::PerRow { max_rows } => {
            measure_costs_per_row(exec, train_table, max_rows).map_err(WillumpError::from)?
        }
    };
    Ok(IfvStats {
        importance,
        cost: costs.per_generator,
        boundary_cost: costs.boundary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use willump_data::{Column, Matrix};
    use willump_graph::{EngineMode, GraphBuilder, Operator};
    use willump_models::{GbdtParams, LogisticParams, MlpParams, ModelSpec};

    fn exec_with_two_fgs() -> (Executor, Table) {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        let f1 = b.add("f1", Operator::NumericColumn, [c]).unwrap();
        let g = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let mut t = Table::new();
        // Feature a decides the label; b is pair-constant noise.
        let avals: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let bvals: Vec<f64> = (0..100)
            .map(|i| ((i / 2 * 17) % 10) as f64 / 10.0)
            .collect();
        t.add_column("a", Column::from(avals)).unwrap();
        t.add_column("b", Column::from(bvals)).unwrap();
        (exec, t)
    }

    fn labels() -> Vec<f64> {
        (0..100).map(|i| (i % 2) as f64).collect()
    }

    #[test]
    fn stats_find_important_generator() {
        let (exec, t) = exec_with_two_fgs();
        let y = labels();
        let feats = exec.features_batch(&t, None).unwrap();
        let model = ModelSpec::Logistic(LogisticParams::default())
            .fit(&feats, &y, 1)
            .unwrap();
        let stats = compute_ifv_stats(&exec, &model, &feats, &t, &y, 1).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(stats.importance[0] > stats.importance[1] * 2.0, "{stats:?}");
        assert!(stats.cost.iter().all(|c| *c >= 0.0));
        assert!(stats.total_cost() >= 0.0);
    }

    #[test]
    fn importances_for_every_model_family() {
        let (exec, t) = exec_with_two_fgs();
        let y = labels();
        let feats = exec.features_batch(&t, None).unwrap();
        for spec in [
            ModelSpec::Logistic(LogisticParams::default()),
            ModelSpec::GbdtClassifier(GbdtParams::default()),
            ModelSpec::MlpClassifier(MlpParams::default()),
        ] {
            let model = spec.fit(&feats, &y, 1).unwrap();
            let imp = feature_importances(&model, &feats, &y, 1).unwrap();
            assert_eq!(imp.len(), 2);
            assert!(imp[0] > imp[1], "family {spec:?} importances {imp:?}");
        }
    }

    #[test]
    fn cost_effectiveness_handles_zero_cost() {
        let stats = IfvStats {
            importance: vec![1.0, 0.0],
            cost: vec![0.0, 0.0],
            boundary_cost: 0.0,
        };
        assert!(stats.cost_effectiveness(0).is_infinite());
        assert_eq!(stats.cost_effectiveness(1), 0.0);
    }

    #[test]
    fn dense_feature_path_works() {
        // feature_importances also accepts dense matrices directly.
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ]));
        let y = [1.0, 0.0, 1.0, 0.0];
        let model = ModelSpec::Logistic(LogisticParams::default())
            .fit(&x, &y, 1)
            .unwrap();
        let imp = feature_importances(&model, &x, &y, 1).unwrap();
        assert!(imp[0] > imp[1]);
    }
}
