//! IFV statistics: prediction importance and computational cost
//! (paper §4.2, "Computing IFV Statistics"), plus the streaming
//! telemetry primitives — a windowed-EWMA arrival-rate estimator and
//! a fixed-bucket latency histogram — that the serving runtime's
//! statistical admission layer builds its shed/degrade decisions on.

use willump_data::{FeatureMatrix, Table};
use willump_graph::analysis::subset_layout;
use willump_graph::cost::{measure_costs, measure_costs_per_row};
use willump_graph::Executor;
use willump_models::{importance, Task, TrainedModel};

use crate::WillumpError;

/// How IFV computational costs are measured (query-aware, §2.3):
/// batch queries amortize fixed per-request costs (like a remote round
/// trip) over the batch; example-at-a-time queries pay them per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostBasis {
    /// Batched execution over the training sample.
    Batch,
    /// Single-input serving over (up to) the given number of sampled
    /// rows.
    PerRow {
        /// Sample size cap (per-row measurement is slower).
        max_rows: usize,
    },
}

/// Per-IFV statistics feeding Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct IfvStats {
    /// Prediction importance per generator (sum over its features).
    pub importance: Vec<f64>,
    /// Computational cost per generator, seconds per row.
    pub cost: Vec<f64>,
    /// Boundary (driver) cost per row, seconds.
    pub boundary_cost: f64,
}

impl IfvStats {
    /// Number of IFVs described.
    pub fn len(&self) -> usize {
        self.importance.len()
    }

    /// Whether there are no IFVs.
    pub fn is_empty(&self) -> bool {
        self.importance.is_empty()
    }

    /// Cost-effectiveness (importance / cost) of one IFV; zero-cost
    /// IFVs get infinite cost-effectiveness if they carry importance.
    pub fn cost_effectiveness(&self, g: usize) -> f64 {
        let c = self.cost[g];
        let i = self.importance[g];
        if c <= 0.0 {
            if i > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            i / c
        }
    }

    /// Total pipeline cost (all generators).
    pub fn total_cost(&self) -> f64 {
        self.cost.iter().sum()
    }
}

/// Compute per-feature prediction importances for a trained full model
/// (paper §4.2):
///
/// - linear models: |coefficient| x mean |feature value|,
/// - ensembles (GBDT): permutation importance on the training sample,
/// - others (MLP): importances of a proxy GBDT trained on the same
///   data.
///
/// # Errors
/// Propagates model errors from the proxy-GBDT fallback.
pub fn feature_importances(
    model: &TrainedModel,
    features: &FeatureMatrix,
    labels: &[f64],
    seed: u64,
) -> Result<Vec<f64>, WillumpError> {
    match model {
        TrainedModel::Logistic(_) | TrainedModel::Linear(_) => {
            let coefs = model
                .native_importances()
                .expect("linear models have coefficients");
            Ok(importance::linear_importances(&coefs, features))
        }
        TrainedModel::Gbdt(_) | TrainedModel::Forest(_) => Ok(importance::permutation_importances(
            model, features, labels, seed,
        )),
        TrainedModel::Mlp(m) => {
            let task = if m.is_classifier() {
                Task::BinaryClassification
            } else {
                Task::Regression
            };
            importance::gbdt_proxy_importances(features, labels, task).map_err(WillumpError::from)
        }
    }
}

/// Compute full IFV statistics: importances from the trained model and
/// features, costs from instrumented execution on the training sample
/// (batched — paper §4.2's "during model training" measurement).
///
/// # Errors
/// Propagates execution and model errors.
pub fn compute_ifv_stats(
    exec: &Executor,
    model: &TrainedModel,
    train_features: &FeatureMatrix,
    train_table: &Table,
    labels: &[f64],
    seed: u64,
) -> Result<IfvStats, WillumpError> {
    compute_ifv_stats_with_basis(
        exec,
        model,
        train_features,
        train_table,
        labels,
        seed,
        CostBasis::Batch,
    )
}

/// [`compute_ifv_stats`] with an explicit cost basis. The optimizer
/// passes [`CostBasis::PerRow`] when tuning for example-at-a-time
/// queries, where each input pays fixed costs (remote round trips) in
/// full.
///
/// # Errors
/// Propagates execution and model errors.
pub fn compute_ifv_stats_with_basis(
    exec: &Executor,
    model: &TrainedModel,
    train_features: &FeatureMatrix,
    train_table: &Table,
    labels: &[f64],
    seed: u64,
    basis: CostBasis,
) -> Result<IfvStats, WillumpError> {
    let per_feature = feature_importances(model, train_features, labels, seed)?;
    let analysis = exec.analysis();
    let full: Vec<usize> = (0..analysis.generators.len()).collect();
    let layout = subset_layout(exec.graph(), analysis, &full).map_err(WillumpError::from)?;
    let importance: Vec<f64> = layout
        .iter()
        .map(|&(_, offset, width)| {
            let group: Vec<usize> = (offset..offset + width).collect();
            importance::group_importance(&per_feature, &group)
        })
        .collect();
    let costs = match basis {
        CostBasis::Batch => measure_costs(exec, train_table).map_err(WillumpError::from)?,
        CostBasis::PerRow { max_rows } => {
            measure_costs_per_row(exec, train_table, max_rows).map_err(WillumpError::from)?
        }
    };
    Ok(IfvStats {
        importance,
        cost: costs.per_generator,
        boundary_cost: costs.boundary,
    })
}

/// Streaming arrival-rate estimator: a windowed EWMA over event
/// counts.
///
/// Events are binned into fixed wall-clock windows; each completed
/// window's instantaneous rate (`count / window`) folds into an
/// exponentially-weighted moving average with smoothing `alpha`.
/// Windows with no events decay the average toward zero, so a burst
/// that ended a while ago stops inflating the estimate. Timestamps
/// are caller-supplied nanoseconds, keeping the estimator
/// deterministic under test and compatible with virtual clocks.
///
/// ```
/// use willump::stats::RateEstimator;
///
/// let mut r = RateEstimator::new(1_000_000_000, 0.5); // 1s windows
/// for i in 0..10u64 {
///     r.record(i * 100_000_000); // 10 events/s for 1s
/// }
/// r.record(1_000_000_000); // closes the first window
/// assert!(r.rate_per_sec() > 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window_nanos: u64,
    alpha: f64,
    window_start: u64,
    in_window: u64,
    rate: f64,
    primed: bool,
}

impl RateEstimator {
    /// An estimator with `window_nanos`-wide bins and EWMA smoothing
    /// factor `alpha` (weight of the newest window).
    ///
    /// # Panics
    /// Panics unless `window_nanos > 0` and `0 < alpha <= 1`.
    pub fn new(window_nanos: u64, alpha: f64) -> RateEstimator {
        assert!(window_nanos > 0, "window must be positive");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        RateEstimator {
            window_nanos,
            alpha,
            window_start: 0,
            in_window: 0,
            rate: 0.0,
            primed: false,
        }
    }

    /// Record one event at `now_nanos` (monotonic; out-of-order
    /// timestamps count into the current window).
    pub fn record(&mut self, now_nanos: u64) {
        if !self.primed {
            self.primed = true;
            self.window_start = now_nanos;
        }
        self.roll_to(now_nanos);
        self.in_window += 1;
    }

    /// The smoothed arrival rate in events per second, as of
    /// `now_nanos` (events in the still-open window are not counted;
    /// windows that elapsed empty decay the estimate first).
    pub fn rate_at(&mut self, now_nanos: u64) -> f64 {
        if self.primed {
            self.roll_to(now_nanos);
        }
        self.rate
    }

    /// The smoothed arrival rate in events per second as of the last
    /// recorded event.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate
    }

    /// Fold every window completed before `now_nanos` into the EWMA.
    fn roll_to(&mut self, now_nanos: u64) {
        while now_nanos.saturating_sub(self.window_start) >= self.window_nanos {
            let inst = self.in_window as f64 * 1e9 / self.window_nanos as f64;
            self.rate = self.alpha * inst + (1.0 - self.alpha) * self.rate;
            self.in_window = 0;
            self.window_start += self.window_nanos;
        }
    }
}

/// A fixed-bucket latency histogram with quantile estimation.
///
/// Buckets have exponentially-growing upper bounds, so one small
/// array covers microseconds through seconds at bounded relative
/// error. Quantiles interpolate linearly inside the covering bucket;
/// samples beyond the last bound clamp to it. [`halve`] ages out old
/// samples so a long-running server's p99 tracks *recent* service
/// times.
///
/// ```
/// use willump::stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::exponential(1_000, 2.0, 20);
/// for i in 1..=100u64 {
///     h.record(i * 1_000); // 1..100 µs
/// }
/// let p99 = h.quantile(0.99).unwrap();
/// assert!(p99 >= 64_000 && p99 <= 128_000);
/// ```
///
/// [`halve`]: LatencyHistogram::halve
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Ascending bucket upper bounds in nanoseconds; bucket `i` counts
    /// samples in `(bounds[i-1], bounds[i]]`.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl LatencyHistogram {
    /// A histogram of `n_buckets` buckets whose upper bounds start at
    /// `first_bound_nanos` and grow by `factor` per bucket.
    ///
    /// # Panics
    /// Panics unless `first_bound_nanos > 0`, `factor > 1`, and
    /// `n_buckets > 0`.
    pub fn exponential(first_bound_nanos: u64, factor: f64, n_buckets: usize) -> LatencyHistogram {
        assert!(first_bound_nanos > 0, "first bound must be positive");
        assert!(factor > 1.0, "factor must exceed 1, got {factor}");
        assert!(n_buckets > 0, "need at least one bucket");
        let mut bounds = Vec::with_capacity(n_buckets);
        let mut b = first_bound_nanos as f64;
        for _ in 0..n_buckets {
            bounds.push(b.min(u64::MAX as f64) as u64);
            b *= factor;
        }
        bounds.dedup();
        LatencyHistogram::with_bounds(bounds)
    }

    /// A histogram over explicit ascending upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<u64>) -> LatencyHistogram {
        assert!(!bounds.is_empty(), "need at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        let n = bounds.len();
        LatencyHistogram {
            bounds,
            counts: vec![0; n],
            total: 0,
        }
    }

    /// Record one sample; values past the last bound clamp into the
    /// final bucket.
    pub fn record(&mut self, nanos: u64) {
        let idx = self.bounds.partition_point(|&b| b < nanos);
        let idx = idx.min(self.bounds.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimated latency at quantile `q` in `[0, 1]`; `None` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let within = (rank - seen) as f64 / c as f64;
                return Some(lower + ((upper - lower) as f64 * within) as u64);
            }
            seen += c;
        }
        Some(*self.bounds.last().expect("non-empty bounds"))
    }

    /// Estimated median latency in nanoseconds.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Estimated 99th-percentile latency in nanoseconds.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Estimated 99.9th-percentile latency in nanoseconds.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Halve every bucket count, aging out stale samples (the
    /// exponential-decay trick shared with the admission sketch).
    pub fn halve(&mut self) {
        self.total = 0;
        for c in &mut self.counts {
            *c >>= 1;
            self.total += *c;
        }
    }

    /// Reset all buckets.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use willump_data::{Column, Matrix};
    use willump_graph::{EngineMode, GraphBuilder, Operator};
    use willump_models::{GbdtParams, LogisticParams, MlpParams, ModelSpec};

    fn exec_with_two_fgs() -> (Executor, Table) {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        let f1 = b.add("f1", Operator::NumericColumn, [c]).unwrap();
        let g = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let mut t = Table::new();
        // Feature a decides the label; b is pair-constant noise.
        let avals: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let bvals: Vec<f64> = (0..100)
            .map(|i| ((i / 2 * 17) % 10) as f64 / 10.0)
            .collect();
        t.add_column("a", Column::from(avals)).unwrap();
        t.add_column("b", Column::from(bvals)).unwrap();
        (exec, t)
    }

    fn labels() -> Vec<f64> {
        (0..100).map(|i| (i % 2) as f64).collect()
    }

    #[test]
    fn stats_find_important_generator() {
        let (exec, t) = exec_with_two_fgs();
        let y = labels();
        let feats = exec.features_batch(&t, None).unwrap();
        let model = ModelSpec::Logistic(LogisticParams::default())
            .fit(&feats, &y, 1)
            .unwrap();
        let stats = compute_ifv_stats(&exec, &model, &feats, &t, &y, 1).unwrap();
        assert_eq!(stats.len(), 2);
        assert!(stats.importance[0] > stats.importance[1] * 2.0, "{stats:?}");
        assert!(stats.cost.iter().all(|c| *c >= 0.0));
        assert!(stats.total_cost() >= 0.0);
    }

    #[test]
    fn importances_for_every_model_family() {
        let (exec, t) = exec_with_two_fgs();
        let y = labels();
        let feats = exec.features_batch(&t, None).unwrap();
        for spec in [
            ModelSpec::Logistic(LogisticParams::default()),
            ModelSpec::GbdtClassifier(GbdtParams::default()),
            ModelSpec::MlpClassifier(MlpParams::default()),
        ] {
            let model = spec.fit(&feats, &y, 1).unwrap();
            let imp = feature_importances(&model, &feats, &y, 1).unwrap();
            assert_eq!(imp.len(), 2);
            assert!(imp[0] > imp[1], "family {spec:?} importances {imp:?}");
        }
    }

    #[test]
    fn cost_effectiveness_handles_zero_cost() {
        let stats = IfvStats {
            importance: vec![1.0, 0.0],
            cost: vec![0.0, 0.0],
            boundary_cost: 0.0,
        };
        assert!(stats.cost_effectiveness(0).is_infinite());
        assert_eq!(stats.cost_effectiveness(1), 0.0);
    }

    #[test]
    fn rate_estimator_converges_to_steady_rate() {
        let mut r = RateEstimator::new(1_000_000_000, 0.3);
        // 50 events/s for 20 seconds.
        for i in 0..1000u64 {
            r.record(i * 20_000_000);
        }
        let rate = r.rate_at(20_000_000_000);
        assert!((rate - 50.0).abs() < 2.0, "rate {rate}");
    }

    #[test]
    fn rate_estimator_decays_when_traffic_stops() {
        let mut r = RateEstimator::new(1_000_000_000, 0.5);
        for i in 0..100u64 {
            r.record(i * 10_000_000); // 100/s burst inside 1s
        }
        r.record(1_000_000_000); // close the burst window
        let peak = r.rate_per_sec();
        assert!(peak > 40.0, "peak {peak}");
        // 10 silent seconds: the estimate must collapse toward zero.
        let later = r.rate_at(11_000_000_000);
        assert!(later < peak / 100.0, "decayed rate {later} vs {peak}");
    }

    #[test]
    fn rate_estimator_is_quiet_before_any_event() {
        let mut r = RateEstimator::new(1_000_000, 0.5);
        assert_eq!(r.rate_per_sec(), 0.0);
        assert_eq!(r.rate_at(5_000_000_000), 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_known_distribution() {
        let mut h = LatencyHistogram::exponential(1_000, 2.0, 24);
        // Uniform 1..=1000 µs: p50 ≈ 500µs, p99 ≈ 990µs.
        for i in 1..=1000u64 {
            h.record(i * 1_000);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!((256_000..=1_024_000).contains(&p50), "p50 {p50}");
        assert!((512_000..=2_048_000).contains(&p99), "p99 {p99}");
        assert!(p99 > p50);
    }

    #[test]
    fn histogram_clamps_overflow_and_handles_empty() {
        let mut h = LatencyHistogram::with_bounds(vec![10, 100]);
        assert_eq!(h.quantile(0.5), None);
        h.record(1_000_000); // far past the last bound
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), Some(100));
        h.clear();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_halving_ages_out_slow_past() {
        let mut h = LatencyHistogram::exponential(1_000, 2.0, 20);
        for _ in 0..512 {
            h.record(400_000); // a slow regime: p99 ≈ 400µs
        }
        assert!(h.p99().unwrap() >= 256_000);
        // The service recovers; decay forgets the slow era.
        for _ in 0..10 {
            h.halve();
            for _ in 0..64 {
                h.record(2_000);
            }
        }
        assert!(h.p99().unwrap() <= 16_000, "p99 {:?}", h.p99());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = LatencyHistogram::with_bounds(vec![100, 10]);
    }

    /// The exact-sort reference for histogram quantiles, using the
    /// SAME rank rule the histogram uses (`ceil(q * n)`, min rank 1),
    /// so the only divergence left is bucket quantization.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    /// The exponential-bucket interval `(lo, hi]` a value falls in
    /// (values past the last bound clamp into the final bucket, like
    /// `LatencyHistogram::record`).
    fn bucket_bounds(bounds: &[u64], value: u64) -> (u64, u64) {
        let idx = bounds.partition_point(|&b| b < value);
        let idx = idx.min(bounds.len() - 1);
        let lo = if idx == 0 { 0 } else { bounds[idx - 1] };
        (lo, bounds[idx])
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Percentile accuracy (satellite of the observability PR):
        /// for arbitrary samples, the histogram's p50/p99/p99.9 must
        /// land inside the exponential bucket containing the
        /// exact-sorted quantile — the tightest guarantee a bucketed
        /// histogram can make, and exactly the relative-error bound
        /// the bucket growth factor promises.
        #[test]
        fn histogram_quantiles_stay_within_bucket_bound(
            values in proptest::collection::vec(1u64..50_000_000, 1..400),
        ) {
            let hist = LatencyHistogram::exponential(1_000, 2.0, 26);
            let mut h = hist.clone();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            // Reconstruct the bucket bounds the constructor produced.
            let mut bounds = Vec::new();
            let mut b = 1_000f64;
            for _ in 0..26 {
                bounds.push(b as u64);
                b *= 2.0;
            }
            for q in [0.5, 0.99, 0.999] {
                let est = h.quantile(q).expect("non-empty");
                let exact = exact_quantile(&sorted, q);
                let (lo, hi) = bucket_bounds(&bounds, exact);
                prop_assert!(
                    est > lo && est <= hi,
                    "q={q}: estimate {est} outside bucket ({lo}, {hi}] of exact {exact}"
                );
            }
        }

        /// p50 <= p99 <= p99.9 for any sample set (quantile
        /// monotonicity survives interpolation).
        #[test]
        fn histogram_quantiles_are_monotone(
            values in proptest::collection::vec(1u64..50_000_000, 1..200),
        ) {
            let mut h = LatencyHistogram::exponential(1_000, 2.0, 26);
            for &v in &values {
                h.record(v);
            }
            let p50 = h.p50().expect("non-empty");
            let p99 = h.p99().expect("non-empty");
            let p999 = h.p999().expect("non-empty");
            prop_assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        }
    }

    #[test]
    fn dense_feature_path_works() {
        // feature_importances also accepts dense matrices directly.
        let x = FeatureMatrix::Dense(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
        ]));
        let y = [1.0, 0.0, 1.0, 0.0];
        let model = ModelSpec::Logistic(LogisticParams::default())
            .fit(&x, &y, 1)
            .unwrap();
        let imp = feature_importances(&model, &x, &y, 1).unwrap();
        assert!(imp[0] > imp[1]);
    }
}
