//! Injectable time source for background loops.
//!
//! The serving layer's samplers and probers run on fixed intervals.
//! Testing them against the wall clock makes every assertion a race
//! on the CI host's scheduler, so interval waiting goes through a
//! [`Clock`]: production uses [`SystemClock`] (monotonic wall time),
//! deterministic tests use [`ManualClock`] and advance time
//! explicitly. The same move the store makes for latency modelling
//! (`willump-store::SimClock`) applied to control-plane scheduling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond time source that background loops wait on.
///
/// `wait_until` must return promptly (within a few milliseconds of
/// real time) once `stop` flips true, whatever the deadline — that is
/// what keeps monitor/prober threads joinable under long intervals.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since this clock's origin (construction time for
    /// [`SystemClock`], 0 for a fresh [`ManualClock`]).
    fn now_nanos(&self) -> u64;

    /// Block until the clock reaches `deadline_nanos` or `stop` reads
    /// `true`. Returns `true` when the deadline was reached, `false`
    /// when the wait was stopped early.
    fn wait_until(&self, deadline_nanos: u64, stop: &AtomicBool) -> bool;
}

/// The production [`Clock`]: monotonic wall time from an [`Instant`]
/// origin, waiting by sleeping in short slices so stop flags stay
/// responsive under long intervals.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl SystemClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

/// Sleep slice for interruptible waits: long enough to stay off the
/// scheduler's back, short enough that stop()/drop feels instant.
const WAIT_SLICE: Duration = Duration::from_millis(2);

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn wait_until(&self, deadline_nanos: u64, stop: &AtomicBool) -> bool {
        loop {
            if stop.load(Ordering::Relaxed) {
                return false;
            }
            let now = self.now_nanos();
            if now >= deadline_nanos {
                return true;
            }
            let left = Duration::from_nanos(deadline_nanos - now);
            std::thread::sleep(left.min(WAIT_SLICE));
        }
    }
}

/// A manually-advanced [`Clock`] for deterministic tests: time moves
/// only through [`advance`](ManualClock::advance) /
/// [`set`](ManualClock::set), so an interval loop ticks exactly when
/// the test says so, never because the CI host stalled.
///
/// Waiters poll the shared atomic in very short real-time slices —
/// simulated time stands still while they wait, but stop flags and
/// advances are picked up within microseconds of real time.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at t = 0.
    #[must_use]
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.now.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Jump to an absolute time (must not move backwards — panics in
    /// debug builds if it would).
    pub fn set(&self, nanos: u64) {
        let prev = self.now.swap(nanos, Ordering::SeqCst);
        debug_assert!(
            prev <= nanos,
            "ManualClock moved backwards: {prev} -> {nanos}"
        );
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn wait_until(&self, deadline_nanos: u64, stop: &AtomicBool) -> bool {
        loop {
            if stop.load(Ordering::Relaxed) {
                return false;
            }
            if self.now_nanos() >= deadline_nanos {
                return true;
            }
            // Real-time poll slice; simulated time is unaffected.
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn system_clock_is_monotonic_and_waits() {
        let clock = SystemClock::new();
        let a = clock.now_nanos();
        let stop = AtomicBool::new(false);
        assert!(clock.wait_until(a + 2_000_000, &stop));
        assert!(clock.now_nanos() >= a + 2_000_000);
    }

    #[test]
    fn system_clock_wait_stops_early() {
        let clock = SystemClock::new();
        let stop = AtomicBool::new(true);
        let start = Instant::now();
        // A deadline far in the future returns promptly when stopped.
        assert!(!clock.wait_until(u64::MAX, &stop));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(500);
        assert_eq!(clock.now_nanos(), 500);
        clock.set(2_000);
        assert_eq!(clock.now_nanos(), 2_000);
    }

    #[test]
    fn manual_clock_wakes_a_waiter_on_advance() {
        let clock = Arc::new(ManualClock::new());
        let stop = Arc::new(AtomicBool::new(false));
        let waiter = {
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || clock.wait_until(1_000, &stop))
        };
        std::thread::sleep(Duration::from_millis(5));
        clock.advance(1_000);
        assert!(waiter.join().expect("waiter exits"));
    }

    #[test]
    fn manual_clock_wait_honors_stop() {
        let clock = Arc::new(ManualClock::new());
        let stop = Arc::new(AtomicBool::new(false));
        let waiter = {
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || clock.wait_until(u64::MAX, &stop))
        };
        std::thread::sleep(Duration::from_millis(5));
        stop.store(true, Ordering::Relaxed);
        assert!(!waiter.join().expect("waiter exits"));
    }
}
