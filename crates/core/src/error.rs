//! Error type for the optimizer.

use std::error::Error;
use std::fmt;

/// Errors produced while optimizing or serving a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum WillumpError {
    /// Graph construction or execution failed.
    Graph(String),
    /// Model training or prediction failed.
    Model(String),
    /// Invalid optimizer configuration.
    BadConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
    /// Training/validation data was malformed.
    BadData {
        /// Why the data was rejected.
        reason: String,
    },
    /// An optimization was requested that the pipeline cannot support
    /// (e.g. cascades on a regression task).
    Unsupported {
        /// What was requested and why it is unsupported.
        reason: String,
    },
}

impl fmt::Display for WillumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WillumpError::Graph(m) => write!(f, "graph error: {m}"),
            WillumpError::Model(m) => write!(f, "model error: {m}"),
            WillumpError::BadConfig { reason } => write!(f, "invalid configuration: {reason}"),
            WillumpError::BadData { reason } => write!(f, "invalid data: {reason}"),
            WillumpError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

impl Error for WillumpError {}

impl From<willump_graph::GraphError> for WillumpError {
    fn from(e: willump_graph::GraphError) -> Self {
        WillumpError::Graph(e.to_string())
    }
}

impl From<willump_models::ModelError> for WillumpError {
    fn from(e: willump_models::ModelError) -> Self {
        WillumpError::Model(e.to_string())
    }
}

impl From<willump_data::DataError> for WillumpError {
    fn from(e: willump_data::DataError) -> Self {
        WillumpError::BadData {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: WillumpError = willump_graph::GraphError::Cyclic.into();
        assert!(matches!(e, WillumpError::Graph(_)));
        assert!(e.to_string().contains("cycle"));
        let e: WillumpError = willump_models::ModelError::EmptyTrainingSet.into();
        assert!(matches!(e, WillumpError::Model(_)));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WillumpError>();
    }
}
