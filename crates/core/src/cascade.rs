//! Automatic end-to-end cascades (paper §4.2).
//!
//! A [`CascadePredictor`] serves with a *small* model over the
//! efficient IFVs first; if the small model's confidence exceeds the
//! cascade threshold the prediction is returned, otherwise the
//! *inefficient* features are computed, merged with the
//! already-computed efficient features, and the full model predicts
//! (paper Figure 3 — escalation never recomputes the efficient
//! features, which is what cuts remote requests in Table 2).
//!
//! Since the plan-IR refactor the predictor is a thin shim over a
//! lowered [`ServingPlan`] (`compute_features(efficient)` →
//! `predict(small)` → `confidence_gate` → `escalate` →
//! `predict(full)`); the executor logic, including the
//! efficient/inefficient feature merge, lives in [`crate::plan`].

use std::sync::Arc;

use willump_data::Table;
use willump_graph::{Executor, InputRow};
use willump_models::{metrics, IsotonicCalibrator, PlattScaler, Task, TrainedModel};

use crate::config::Calibration;
use crate::plan::ServingPlan;
use crate::WillumpError;

/// A fitted small-model score calibrator (see
/// [`crate::Calibration`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreCalibrator {
    /// Fitted Platt scaler.
    Platt(PlattScaler),
    /// Fitted isotonic calibrator.
    Isotonic(IsotonicCalibrator),
}

impl ScoreCalibrator {
    /// Fit the requested calibration method on validation scores.
    /// Returns `None` for [`Calibration::None`] or when the fit is
    /// impossible (e.g. single-class validation labels for Platt) —
    /// cascades then fall back to raw scores.
    pub fn fit(method: Calibration, scores: &[f64], labels: &[f64]) -> Option<ScoreCalibrator> {
        match method {
            Calibration::None => None,
            Calibration::Platt => PlattScaler::fit(scores, labels)
                .ok()
                .map(ScoreCalibrator::Platt),
            Calibration::Isotonic => IsotonicCalibrator::fit(scores, labels)
                .ok()
                .map(ScoreCalibrator::Isotonic),
        }
    }

    /// Map a raw score to a calibrated probability.
    pub fn calibrate(&self, score: f64) -> f64 {
        match self {
            ScoreCalibrator::Platt(p) => p.calibrate(score),
            ScoreCalibrator::Isotonic(i) => i.calibrate(score),
        }
    }
}

/// Candidate cascade thresholds. The paper restricts thresholds to
/// integer multiples of 0.1 to avoid overfitting the validation set
/// (§4.2); we keep that grid but add two coarse candidates in the
/// (0.9, 1.0) gap. On validation sets orders of magnitude smaller than
/// the paper's Kaggle test sets, the top decile of confidence is where
/// well-calibrated small models sit, and jumping straight from 0.9 to
/// 1.0 (= never trust the small model) forfeits exactly the cascades
/// the paper reports. Confidence of a binary classifier is at least
/// 0.5, so candidates below 0.5 are vacuous.
pub const THRESHOLD_CANDIDATES: [f64; 8] = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0];

/// Outcome of threshold selection on a validation set.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSelection {
    /// The chosen threshold.
    pub threshold: f64,
    /// Full-model validation accuracy.
    pub full_accuracy: f64,
    /// Cascade validation accuracy at the chosen threshold.
    pub cascade_accuracy: f64,
    /// Fraction of validation inputs the small model kept (confidence
    /// above threshold).
    pub kept_fraction: f64,
}

/// Pick the lowest candidate threshold whose cascade accuracy on the
/// validation set is within `accuracy_target` of the full model's
/// (paper §4.2, "Identifying the Cascade Threshold").
///
/// `small_scores`/`full_scores` are the two models' validation scores;
/// `labels` are the 0/1 ground truth.
///
/// # Errors
/// Returns [`WillumpError::BadData`] on length mismatches or empty
/// inputs.
pub fn select_threshold(
    small_scores: &[f64],
    full_scores: &[f64],
    labels: &[f64],
    accuracy_target: f64,
) -> Result<ThresholdSelection, WillumpError> {
    if small_scores.len() != labels.len() || full_scores.len() != labels.len() {
        return Err(WillumpError::BadData {
            reason: "validation scores and labels must align".into(),
        });
    }
    if labels.is_empty() {
        return Err(WillumpError::BadData {
            reason: "validation set is empty".into(),
        });
    }
    let full_accuracy = metrics::accuracy(full_scores, labels);
    for &tc in &THRESHOLD_CANDIDATES {
        let mut correct = 0usize;
        let mut kept = 0usize;
        for ((s, f), y) in small_scores.iter().zip(full_scores).zip(labels) {
            let confidence = s.max(1.0 - *s);
            let score = if confidence > tc {
                kept += 1;
                *s
            } else {
                *f
            };
            if (score > 0.5) == (*y > 0.5) {
                correct += 1;
            }
        }
        let cascade_accuracy = correct as f64 / labels.len() as f64;
        if cascade_accuracy >= full_accuracy - accuracy_target {
            return Ok(ThresholdSelection {
                threshold: tc,
                full_accuracy,
                cascade_accuracy,
                kept_fraction: kept as f64 / labels.len() as f64,
            });
        }
    }
    // tc = 1.0 always escalates everything, so this is unreachable for
    // valid inputs; keep a defensive fallback.
    Ok(ThresholdSelection {
        threshold: 1.0,
        full_accuracy,
        cascade_accuracy: full_accuracy,
        kept_fraction: 0.0,
    })
}

/// Train a cascade for an explicit efficient subset: fit the small
/// model on the subset's features, select the threshold on the
/// validation set, and assemble a [`CascadePredictor`] around an
/// already-trained full model.
///
/// [`crate::Willump::optimize`] uses Algorithm 1 to pick the subset;
/// this lower-level entry point lets experiments force one (the
/// paper's Table 8 strategy comparison and §6.4 γ-rule ablation).
///
/// # Errors
/// Propagates execution, training, and assembly failures.
#[allow(clippy::too_many_arguments)]
pub fn train_cascade_with_subset(
    exec: &Executor,
    spec: &willump_models::ModelSpec,
    full: Arc<TrainedModel>,
    train: &Table,
    train_labels: &[f64],
    valid: &Table,
    valid_labels: &[f64],
    efficient: Vec<usize>,
    accuracy_target: f64,
    seed: u64,
) -> Result<(CascadePredictor, ThresholdSelection), WillumpError> {
    let eff_train = exec.features_batch(train, Some(&efficient))?;
    let small = Arc::new(spec.fit(&eff_train, train_labels, seed)?);
    let eff_valid = exec.features_batch(valid, Some(&efficient))?;
    let full_valid = exec.features_batch(valid, None)?;
    let selection = select_threshold(
        &small.predict_scores(&eff_valid),
        &full.predict_scores(&full_valid),
        valid_labels,
        accuracy_target,
    )?;
    let predictor =
        CascadePredictor::new(exec.clone(), small, full, selection.threshold, efficient)?;
    Ok((predictor, selection))
}

/// Serving statistics for one batch/stream of cascade predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CascadeServeStats {
    /// Inputs answered by the small model alone.
    pub resolved_small: usize,
    /// Inputs escalated to the full model.
    pub escalated: usize,
}

impl CascadeServeStats {
    /// Fraction of inputs the small model resolved.
    pub fn small_fraction(&self) -> f64 {
        let n = self.resolved_small + self.escalated;
        if n == 0 {
            0.0
        } else {
            self.resolved_small as f64 / n as f64
        }
    }
}

/// A deployed end-to-end cascade: a thin shim over a lowered
/// [`ServingPlan`].
#[derive(Debug, Clone)]
pub struct CascadePredictor {
    plan: ServingPlan,
}

impl CascadePredictor {
    /// Assemble a cascade from its parts by lowering them into a plan.
    ///
    /// # Errors
    /// Returns [`WillumpError`] if the task is not classification, the
    /// efficient set is empty or total, or layouts cannot be built.
    pub fn new(
        exec: Executor,
        small: Arc<TrainedModel>,
        full: Arc<TrainedModel>,
        threshold: f64,
        efficient: Vec<usize>,
    ) -> Result<CascadePredictor, WillumpError> {
        if full.task() != Task::BinaryClassification {
            return Err(WillumpError::Unsupported {
                reason: "end-to-end cascades apply only to classification pipelines".into(),
            });
        }
        CascadePredictor::from_plan(ServingPlan::cascade(
            exec, small, full, threshold, efficient,
        )?)
    }

    /// Wrap an already-lowered cascade plan (it must contain a
    /// confidence gate).
    ///
    /// # Errors
    /// Returns [`WillumpError::BadConfig`] when the plan has no
    /// [`crate::plan::PlanStage::ConfidenceGate`] stage.
    pub fn from_plan(plan: ServingPlan) -> Result<CascadePredictor, WillumpError> {
        if plan.threshold().is_none() {
            return Err(WillumpError::BadConfig {
                reason: "cascade predictors need a plan with a confidence gate".into(),
            });
        }
        Ok(CascadePredictor { plan })
    }

    /// The lowered serving plan backing this cascade.
    pub fn plan(&self) -> &ServingPlan {
        &self.plan
    }

    /// Attach a fitted score calibrator: small-model scores are mapped
    /// through it before the confidence/threshold comparison and when
    /// returned as predictions.
    #[must_use]
    pub fn with_calibrator(mut self, calibrator: Option<ScoreCalibrator>) -> CascadePredictor {
        self.plan = self.plan.with_calibrator(calibrator);
        self
    }

    /// The attached calibrator, if any.
    pub fn calibrator(&self) -> Option<&ScoreCalibrator> {
        self.plan.calibrator()
    }

    /// The cascade threshold in effect.
    pub fn threshold(&self) -> f64 {
        self.plan.threshold().expect("validated confidence gate")
    }

    /// Override the cascade threshold (used by the Figure 7 sweep).
    pub fn set_threshold(&mut self, tc: f64) {
        self.plan.set_threshold(tc);
    }

    /// The efficient generator subset.
    pub fn efficient_set(&self) -> &[usize] {
        self.plan
            .efficient_set()
            .expect("cascade plans have an efficient subset")
    }

    /// The executor used for feature computation.
    pub fn executor(&self) -> &Executor {
        self.plan.executor()
    }

    /// Predict scores for a batch, cascading per input.
    ///
    /// # Errors
    /// Propagates feature-computation failures.
    pub fn predict_batch(
        &self,
        table: &Table,
    ) -> Result<(Vec<f64>, CascadeServeStats), WillumpError> {
        let out = self.plan.run_batch(table)?;
        let stats = CascadeServeStats {
            resolved_small: out.report.gate_resolved,
            escalated: out.report.escalated,
        };
        Ok((out.scores, stats))
    }

    /// Predict the score for one input, cascading if needed. Returns
    /// the score and whether the input escalated to the full model.
    ///
    /// # Errors
    /// Propagates feature-computation failures.
    pub fn predict_one(&self, input: &InputRow) -> Result<(f64, bool), WillumpError> {
        let row = self.plan.run_one(input)?;
        Ok((row.score, row.escalated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use willump_data::Column;
    use willump_graph::{EngineMode, GraphBuilder, Operator};
    use willump_models::{LogisticParams, ModelSpec};

    /// Two numeric FGs; FG0 alone classifies "easy" inputs (|a| large),
    /// FG1 needed for the hard ones.
    fn setup() -> (Executor, Table, Vec<f64>) {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        let f1 = b.add("f1", Operator::NumericColumn, [c]).unwrap();
        let g = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let mut avals = Vec::new();
        let mut bvals = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let easy = i % 3 != 0;
            let y = (i % 2) as f64;
            if easy {
                // a strongly signals the label.
                avals.push(if y > 0.5 { 3.0 } else { -3.0 });
                bvals.push(0.0);
            } else {
                // a is uninformative; b carries the label.
                avals.push(0.0);
                bvals.push(if y > 0.5 { 2.0 } else { -2.0 });
            }
            labels.push(y);
        }
        let mut t = Table::new();
        t.add_column("a", Column::from(avals)).unwrap();
        t.add_column("b", Column::from(bvals)).unwrap();
        (exec, t, labels)
    }

    fn train(exec: &Executor, t: &Table, y: &[f64]) -> (Arc<TrainedModel>, Arc<TrainedModel>) {
        let full_feats = exec.features_batch(t, None).unwrap();
        let full = ModelSpec::Logistic(LogisticParams::default())
            .fit(&full_feats, y, 1)
            .unwrap();
        let eff_feats = exec.features_batch(t, Some(&[0])).unwrap();
        let small = ModelSpec::Logistic(LogisticParams::default())
            .fit(&eff_feats, y, 1)
            .unwrap();
        (Arc::new(small), Arc::new(full))
    }

    #[test]
    fn threshold_selection_meets_target() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let eff = exec.features_batch(&t, Some(&[0])).unwrap();
        let fullf = exec.features_batch(&t, None).unwrap();
        let sel = select_threshold(
            &small.predict_scores(&eff),
            &full.predict_scores(&fullf),
            &y,
            0.001,
        )
        .unwrap();
        assert!(sel.cascade_accuracy >= sel.full_accuracy - 0.001);
        assert!(sel.kept_fraction > 0.3, "kept {}", sel.kept_fraction);
        assert!(THRESHOLD_CANDIDATES.contains(&sel.threshold));
    }

    #[test]
    fn threshold_validation_errors() {
        assert!(select_threshold(&[0.5], &[0.5, 0.5], &[1.0], 0.1).is_err());
        assert!(select_threshold(&[], &[], &[], 0.1).is_err());
    }

    #[test]
    fn cascade_matches_full_model_accuracy() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let eff = exec.features_batch(&t, Some(&[0])).unwrap();
        let fullf = exec.features_batch(&t, None).unwrap();
        let sel = select_threshold(
            &small.predict_scores(&eff),
            &full.predict_scores(&fullf),
            &y,
            0.001,
        )
        .unwrap();
        let cascade =
            CascadePredictor::new(exec.clone(), small, full.clone(), sel.threshold, vec![0])
                .unwrap();
        let (scores, stats) = cascade.predict_batch(&t).unwrap();
        let cascade_acc = metrics::accuracy(&scores, &y);
        let full_acc = metrics::accuracy(&full.predict_scores(&fullf), &y);
        assert!(
            cascade_acc >= full_acc - 0.001,
            "{cascade_acc} vs {full_acc}"
        );
        assert!(stats.resolved_small > 0);
        assert!(stats.escalated > 0);
    }

    #[test]
    fn single_input_matches_batch() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let cascade = CascadePredictor::new(exec, small, full, 0.8, vec![0]).unwrap();
        let (batch_scores, _) = cascade.predict_batch(&t).unwrap();
        for r in (0..t.n_rows()).step_by(29) {
            let input = InputRow::from_table(&t, r).unwrap();
            let (score, _) = cascade.predict_one(&input).unwrap();
            assert!(
                (score - batch_scores[r]).abs() < 1e-9,
                "row {r}: {score} vs {}",
                batch_scores[r]
            );
        }
        let _ = y;
    }

    #[test]
    fn threshold_one_always_escalates() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let cascade = CascadePredictor::new(exec, small, full.clone(), 1.0, vec![0]).unwrap();
        let (scores, stats) = cascade.predict_batch(&t).unwrap();
        assert_eq!(stats.resolved_small, 0);
        let fullf = cascade.executor().features_batch(&t, None).unwrap();
        let full_scores = full.predict_scores(&fullf);
        for (a, b) in scores.iter().zip(&full_scores) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_configurations() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        // Empty efficient set.
        assert!(
            CascadePredictor::new(exec.clone(), small.clone(), full.clone(), 0.8, vec![]).is_err()
        );
        // Efficient set = everything.
        assert!(CascadePredictor::new(exec, small, full, 0.8, vec![0, 1]).is_err());
    }

    #[test]
    fn serve_stats_fraction() {
        let s = CascadeServeStats {
            resolved_small: 3,
            escalated: 1,
        };
        assert!((s.small_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(CascadeServeStats::default().small_fraction(), 0.0);
    }
}
