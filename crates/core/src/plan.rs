//! The `ServingPlan` IR: one composable representation for every
//! statistically-aware serving-path optimization (paper §4), run by a
//! single [`PlanExecutor`].
//!
//! Willump's optimizations — end-to-end cascades (§4.2), top-K filter
//! models (§4.3), and prediction caching (§4.5) — all share the same
//! skeleton: compute a cheap subset of features, score it with a cheap
//! model, decide per input whether that answer suffices, and escalate
//! the rest to the full pipeline without recomputing what is already
//! in hand. Historically each optimization was a bespoke wrapper
//! struct with its own predict path; the plan IR makes the skeleton
//! explicit as a sequence of [`PlanStage`]s over shared resources
//! (executor, models, layouts, cache), so optimizations *compose*: a
//! cascade behind an end-to-end cache, a top-K filter with a
//! confidence gate, an arm-selected full model — all execute through
//! the same [`PlanExecutor`], batch-wise or row-wise, and all report
//! per-stage cost and row counters the serving layer can inspect.
//!
//! [`crate::Willump::optimize`] lowers its decisions into a plan;
//! [`crate::CascadePredictor`] and [`crate::TopKFilter`] are thin
//! shims over lowered plans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use willump_data::{FeatureMatrix, Table};
use willump_graph::{Executor, InputRow};
use willump_models::{metrics, Task, TrainedModel};
use willump_store::LruCache;

use crate::cascade::ScoreCalibrator;
use crate::config::TopKConfig;
use crate::layout::{merge_subset_rows, Remapper};
use crate::WillumpError;

/// Which feature subset a [`PlanStage::ComputeFeatures`] stage
/// computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// The efficient IFV subset selected by Algorithm 1.
    Efficient,
    /// All feature generators (the canonical full layout).
    Full,
}

/// Which trained model a [`PlanStage::PredictModel`] stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSlot {
    /// The small/filter model trained on the efficient features.
    Small,
    /// The full model trained on the complete feature layout.
    Full,
    /// The arm chosen by the nearest preceding
    /// [`PlanStage::SelectArm`] (full-layout models).
    Selected,
}

/// One stage of a [`ServingPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStage {
    /// Compute features for the rows still in flight.
    ComputeFeatures {
        /// Which generator subset to compute.
        subset: FeatureSet,
    },
    /// Look each in-flight row up in the end-to-end prediction cache;
    /// hits resolve immediately with the cached score.
    CacheLookup,
    /// Write the scores of rows that missed [`PlanStage::CacheLookup`]
    /// back into the cache (place after the final predict stage).
    /// Rows dropped by a [`PlanStage::TopKFilter`] are *not* filled —
    /// their filter score means "not in the top K", not an answer.
    CacheFill,
    /// Score the rows still in flight with a model.
    PredictModel {
        /// Which model to run.
        slot: ModelSlot,
    },
    /// Resolve rows whose confidence `max(s, 1-s)` exceeds the
    /// threshold with their current score (paper §4.2); the rest stay
    /// in flight for escalation.
    ConfidenceGate {
        /// The cascade threshold t_c.
        threshold: f64,
    },
    /// Keep only the top filter-scored candidates in flight (paper
    /// §4.3); dropped rows resolve with their current (filter) score.
    TopKFilter {
        /// Default K when the query does not supply one.
        k: usize,
        /// Subset-size tuning (`ck`, minimum fraction).
        config: TopKConfig,
    },
    /// Compute the inefficient features for the rows still in flight
    /// and merge them with the already-computed efficient block into
    /// the full layout (paper Figure 3: escalation never recomputes).
    Escalate,
    /// Pick which arm model subsequent
    /// [`ModelSlot::Selected`] predictions use (deterministic
    /// epsilon-greedy over reward feedback; see
    /// [`ServingPlan::reward`]).
    SelectArm,
}

impl PlanStage {
    /// Short human-readable label (stage traces, profiles, logs).
    pub fn label(&self) -> String {
        match self {
            PlanStage::ComputeFeatures {
                subset: FeatureSet::Efficient,
            } => "compute_features(efficient)".to_string(),
            PlanStage::ComputeFeatures {
                subset: FeatureSet::Full,
            } => "compute_features(full)".to_string(),
            PlanStage::CacheLookup => "cache_lookup".to_string(),
            PlanStage::CacheFill => "cache_fill".to_string(),
            PlanStage::PredictModel { slot } => match slot {
                ModelSlot::Small => "predict(small)".to_string(),
                ModelSlot::Full => "predict(full)".to_string(),
                ModelSlot::Selected => "predict(selected)".to_string(),
            },
            PlanStage::ConfidenceGate { threshold } => {
                format!("confidence_gate(t={threshold})")
            }
            PlanStage::TopKFilter { k, config } => {
                format!("topk_filter(k={k}, ck={})", config.ck)
            }
            PlanStage::Escalate => "escalate".to_string(),
            PlanStage::SelectArm => "select_arm".to_string(),
        }
    }
}

/// Subset layouts shared by every escalating stage.
#[derive(Debug, Clone)]
struct SubsetLayouts {
    efficient: Vec<usize>,
    inefficient: Vec<usize>,
    eff_remap: Remapper,
    ineff_remap: Remapper,
    full_width: usize,
}

impl SubsetLayouts {
    fn new(exec: &Executor, efficient: Vec<usize>) -> Result<SubsetLayouts, WillumpError> {
        let n_fgs = exec.analysis().generators.len();
        if efficient.is_empty() || efficient.len() >= n_fgs {
            return Err(WillumpError::Unsupported {
                reason: format!(
                    "subset stages need a proper non-empty efficient subset ({} of {} IFVs)",
                    efficient.len(),
                    n_fgs
                ),
            });
        }
        let inefficient = exec.complement_subset(&efficient);
        let eff_remap = Remapper::new(exec.graph(), exec.analysis(), &efficient)?;
        let ineff_remap = Remapper::new(exec.graph(), exec.analysis(), &inefficient)?;
        let full_width = eff_remap.full_width();
        Ok(SubsetLayouts {
            efficient,
            inefficient,
            eff_remap,
            ineff_remap,
            full_width,
        })
    }
}

/// The end-to-end prediction cache of a plan (paper §4.5's baseline,
/// now a composable pair of stages). Keys are the stringified values
/// of the pipeline's source columns, exactly like
/// Clipper-style end-to-end caching.
#[derive(Clone)]
struct PlanCache {
    sources: Vec<String>,
    store: Arc<Mutex<LruCache<Vec<String>, f64>>>,
}

/// Deterministic epsilon-greedy bandit state for
/// [`PlanStage::SelectArm`]: every `explore_every`-th pick plays arms
/// round-robin; all other picks exploit the best empirical mean.
/// Deterministic (no RNG) so serving runs are reproducible.
#[derive(Debug)]
struct ArmState {
    pulls: Vec<u64>,
    rewards: Vec<f64>,
    explore_every: u64,
    total: u64,
}

impl ArmState {
    fn pick(&mut self) -> usize {
        self.total += 1;
        let n = self.pulls.len();
        let arm = if let Some(unplayed) = self.pulls.iter().position(|&p| p == 0) {
            unplayed
        } else if self.explore_every > 0 && self.total.is_multiple_of(self.explore_every) {
            ((self.total / self.explore_every) % n as u64) as usize
        } else {
            let mut best = 0;
            let mut best_mean = f64::NEG_INFINITY;
            for i in 0..n {
                let mean = self.rewards[i] / self.pulls[i] as f64;
                if mean > best_mean {
                    best_mean = mean;
                    best = i;
                }
            }
            best
        };
        self.pulls[arm] += 1;
        arm
    }
}

/// Cumulative serving counters of a plan, shared by every clone (the
/// per-stage introspection the serving layer reads for scheduling
/// decisions).
#[derive(Debug, Default)]
pub struct PlanCounters {
    rows: AtomicU64,
    gate_resolved: AtomicU64,
    escalated: AtomicU64,
    filter_dropped: AtomicU64,
}

impl PlanCounters {
    /// Total input rows run through the plan.
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Rows resolved early by a [`PlanStage::ConfidenceGate`].
    pub fn gate_resolved(&self) -> u64 {
        self.gate_resolved.load(Ordering::Relaxed)
    }

    /// Rows escalated to the full feature layout.
    pub fn escalated(&self) -> u64 {
        self.escalated.load(Ordering::Relaxed)
    }

    /// Rows dropped from candidacy by a [`PlanStage::TopKFilter`].
    pub fn filter_dropped(&self) -> u64 {
        self.filter_dropped.load(Ordering::Relaxed)
    }

    /// Fraction of rows escalated to the full feature layout
    /// (0 before any rows have run). This is the statistic a serving
    /// scheduler reads to give escalation-heavy plans dedicated
    /// workers.
    pub fn escalation_rate(&self) -> f64 {
        let rows = self.rows();
        if rows == 0 {
            0.0
        } else {
            self.escalated() as f64 / rows as f64
        }
    }

    /// A serializable point-in-time copy of these counters (see
    /// [`PlanCountersSnapshot`]).
    pub fn snapshot(&self) -> PlanCountersSnapshot {
        PlanCountersSnapshot {
            rows: self.rows(),
            gate_resolved: self.gate_resolved(),
            escalated: self.escalated(),
            filter_dropped: self.filter_dropped(),
        }
    }
}

/// A wire-friendly, point-in-time copy of a [`PlanCounters`].
///
/// [`PlanCounters`] itself is a block of shared atomics — clones of a
/// plan in one process update it in place, but it cannot cross a
/// process boundary. A snapshot is plain integers with serde derives:
/// a remote serving node reports its plans' statistics to a parent
/// router as snapshots, and the parent's escalation-aware scheduler
/// folds them into its own view with [`merged`](Self::merged).
///
/// Every field is `#[serde(default)]`, so frames from an older node
/// that lacks a counter still decode (missing counters read 0).
///
/// # Examples
///
/// ```
/// use willump::{PlanCounters, PlanCountersSnapshot};
///
/// let local = PlanCounters::default().snapshot();
/// let remote = PlanCountersSnapshot {
///     rows: 100,
///     escalated: 40,
///     ..PlanCountersSnapshot::default()
/// };
/// let combined = local.merged(remote);
/// assert_eq!(combined.rows, 100);
/// assert!((combined.escalation_rate() - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCountersSnapshot {
    /// Total input rows run through the plan.
    #[serde(default)]
    pub rows: u64,
    /// Rows resolved early by a [`PlanStage::ConfidenceGate`].
    #[serde(default)]
    pub gate_resolved: u64,
    /// Rows escalated to the full feature layout.
    #[serde(default)]
    pub escalated: u64,
    /// Rows dropped from candidacy by a [`PlanStage::TopKFilter`].
    #[serde(default)]
    pub filter_dropped: u64,
}

impl PlanCountersSnapshot {
    /// Fraction of rows escalated to the full feature layout
    /// (0 when no rows ran) — the same statistic as
    /// [`PlanCounters::escalation_rate`], computed over the snapshot.
    pub fn escalation_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.escalated as f64 / self.rows as f64
        }
    }

    /// Scalar placement-pressure score for cluster scheduling: rows
    /// served, weighted up by the escalated fraction (an
    /// escalation-heavy node does disproportionate work per row — the
    /// same signal the escalation-aware worker scheduler keys on),
    /// in kilo-rows so it blends with latency/failure penalties.
    /// Zero for an idle node; monotone in both traffic volume and
    /// escalation share.
    #[must_use]
    pub fn placement_pressure(&self) -> f64 {
        self.rows as f64 * (1.0 + self.escalation_rate()) / 1000.0
    }

    /// Field-wise sum of two snapshots: fold a remote node's counters
    /// into a local view so rates are computed over the combined
    /// traffic.
    #[must_use]
    pub fn merged(self, other: PlanCountersSnapshot) -> PlanCountersSnapshot {
        PlanCountersSnapshot {
            rows: self.rows + other.rows,
            gate_resolved: self.gate_resolved + other.gate_resolved,
            escalated: self.escalated + other.escalated,
            filter_dropped: self.filter_dropped + other.filter_dropped,
        }
    }
}

/// Per-stage cumulative meters (time and rows), shared by clones.
#[derive(Debug)]
struct StageMeters {
    nanos: Vec<AtomicU64>,
    rows_in: Vec<AtomicU64>,
    runs: Vec<AtomicU64>,
}

impl StageMeters {
    fn new(n: usize) -> StageMeters {
        StageMeters {
            nanos: (0..n).map(|_| AtomicU64::new(0)).collect(),
            rows_in: (0..n).map(|_| AtomicU64::new(0)).collect(),
            runs: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, stage: usize, rows: usize, nanos: u64) {
        self.nanos[stage].fetch_add(nanos, Ordering::Relaxed);
        self.rows_in[stage].fetch_add(rows as u64, Ordering::Relaxed);
        self.runs[stage].fetch_add(1, Ordering::Relaxed);
    }
}

/// A stage's cumulative execution profile (see
/// [`ServingPlan::stage_profiles`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Stage label ([`PlanStage::label`]).
    pub label: String,
    /// Times the stage executed.
    pub runs: u64,
    /// Total rows entering the stage.
    pub rows_in: u64,
    /// Total wall-clock seconds spent in the stage.
    pub seconds: f64,
}

/// One stage's trace within a single run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTrace {
    /// Stage label ([`PlanStage::label`]).
    pub label: String,
    /// Rows in flight when the stage started.
    pub rows_in: usize,
    /// Rows still in flight afterwards.
    pub rows_out: usize,
    /// Wall-clock seconds the stage took.
    pub seconds: f64,
}

/// What one batch run did, stage by stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanRunReport {
    /// Per-stage traces in execution order.
    pub stages: Vec<StageTrace>,
    /// Rows resolved by a confidence gate (small-model answers).
    pub gate_resolved: usize,
    /// Rows escalated to the full layout.
    pub escalated: usize,
    /// Rows answered from the end-to-end cache.
    pub cache_hits: usize,
    /// Rows that missed the end-to-end cache.
    pub cache_misses: usize,
    /// Rows entering the top-K filter, when one ran.
    pub filter_batch: Option<usize>,
    /// Candidates the top-K filter kept, when one ran.
    pub filter_kept: Option<usize>,
    /// The arm a [`PlanStage::SelectArm`] picked, when one ran.
    pub selected_arm: Option<usize>,
}

/// The result of one batch run.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Final score per input row.
    pub scores: Vec<f64>,
    /// Predicted top-K row indices, best first (present when the plan
    /// contains a [`PlanStage::TopKFilter`]).
    pub ranked: Option<Vec<usize>>,
    /// Stage-by-stage report.
    pub report: PlanRunReport,
}

/// The result of one row-wise run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowOutcome {
    /// The final score.
    pub score: f64,
    /// Whether the input escalated to the full layout.
    pub escalated: bool,
    /// Whether the end-to-end cache answered the input.
    pub cache_hit: bool,
    /// The arm a [`PlanStage::SelectArm`] picked, when one ran.
    pub selected_arm: Option<usize>,
}

/// An executable serving plan: stages plus the shared resources they
/// reference.
///
/// Clones share the cache, bandit state, and counters (they are views
/// of one serving artifact); stage lists are cloned by value, so
/// [`set_threshold`](ServingPlan::set_threshold)-style edits are
/// per-clone.
///
/// # Examples
///
/// Assemble the trivial full-model plan by hand (the optimizer's
/// [`crate::Willump::optimize`] lowers its decisions into richer
/// plans automatically — see
/// [`crate::OptimizedPipeline::serving_plan`]), then compose an
/// end-to-end cache onto it:
///
/// ```
/// use std::sync::Arc;
/// use willump::ServingPlan;
/// use willump_data::{Column, Table};
/// use willump_graph::{EngineMode, Executor, GraphBuilder, Operator};
/// use willump_models::{LogisticParams, ModelSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A one-feature pipeline graph and a model fitted on it.
/// let mut b = GraphBuilder::new();
/// let src = b.source("x");
/// let f = b.add("f", Operator::NumericColumn, [src])?;
/// let graph = Arc::new(b.finish_with_concat("features", [f])?);
/// let exec = Executor::new(graph, EngineMode::Compiled)?;
///
/// let mut train = Table::new();
/// train.add_column("x", Column::from(vec![-2.0, -1.0, 1.0, 2.0]))?;
/// let y = vec![0.0, 0.0, 1.0, 1.0];
/// let feats = exec.features_batch(&train, None)?;
/// let model = Arc::new(ModelSpec::Logistic(LogisticParams::default()).fit(&feats, &y, 1)?);
///
/// // The plan, with a composed end-to-end cache keyed on `x`.
/// let plan = ServingPlan::full_model_plan(exec, model)
///     .with_e2e_cache(vec!["x".to_string()], None)?;
/// let first = plan.predict_batch(&train)?;
/// let again = plan.predict_batch(&train)?;
/// assert_eq!(first, again);
/// assert_eq!(plan.cache_hits(), 4, "repeat batch served from cache");
/// assert_eq!(plan.counters().rows(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct ServingPlan {
    exec: Executor,
    full: Arc<TrainedModel>,
    small: Option<Arc<TrainedModel>>,
    arms: Vec<Arc<TrainedModel>>,
    arm_state: Option<Arc<Mutex<ArmState>>>,
    calibrator: Option<ScoreCalibrator>,
    subsets: Option<SubsetLayouts>,
    cache: Option<PlanCache>,
    stages: Vec<PlanStage>,
    counters: Arc<PlanCounters>,
    meters: Arc<StageMeters>,
}

impl std::fmt::Debug for ServingPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingPlan")
            .field("stages", &self.describe())
            .field("arms", &self.arms.len())
            .field("cached", &self.cache.is_some())
            .finish_non_exhaustive()
    }
}

impl ServingPlan {
    fn assemble(
        exec: Executor,
        full: Arc<TrainedModel>,
        small: Option<Arc<TrainedModel>>,
        subsets: Option<SubsetLayouts>,
        stages: Vec<PlanStage>,
    ) -> Result<ServingPlan, WillumpError> {
        let meters = Arc::new(StageMeters::new(stages.len()));
        let plan = ServingPlan {
            exec,
            full,
            small,
            arms: Vec::new(),
            arm_state: None,
            calibrator: None,
            subsets,
            cache: None,
            stages,
            counters: Arc::new(PlanCounters::default()),
            meters,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// The trivial plan: compute all features, predict with the full
    /// model (compiled execution with no statistical optimization).
    pub fn full_model_plan(exec: Executor, full: Arc<TrainedModel>) -> ServingPlan {
        ServingPlan::assemble(
            exec,
            full,
            None,
            None,
            vec![
                PlanStage::ComputeFeatures {
                    subset: FeatureSet::Full,
                },
                PlanStage::PredictModel {
                    slot: ModelSlot::Full,
                },
            ],
        )
        .expect("the full-model plan is always valid")
    }

    /// Lower an end-to-end cascade (paper §4.2) into a plan:
    /// efficient features → small model → confidence gate → escalate →
    /// full model.
    ///
    /// # Errors
    /// Returns [`WillumpError`] when the efficient subset is not a
    /// proper non-empty subset or layouts cannot be built.
    pub fn cascade(
        exec: Executor,
        small: Arc<TrainedModel>,
        full: Arc<TrainedModel>,
        threshold: f64,
        efficient: Vec<usize>,
    ) -> Result<ServingPlan, WillumpError> {
        let subsets = SubsetLayouts::new(&exec, efficient)?;
        ServingPlan::assemble(
            exec,
            full,
            Some(small),
            Some(subsets),
            vec![
                PlanStage::ComputeFeatures {
                    subset: FeatureSet::Efficient,
                },
                PlanStage::PredictModel {
                    slot: ModelSlot::Small,
                },
                PlanStage::ConfidenceGate { threshold },
                PlanStage::Escalate,
                PlanStage::PredictModel {
                    slot: ModelSlot::Full,
                },
            ],
        )
    }

    /// Lower a top-K filter (paper §4.3) into a plan: efficient
    /// features → filter model → keep top candidates → escalate →
    /// full model reranks.
    ///
    /// `default_k` is used when a query does not supply its own K
    /// (row-wise runs, plain `predict_batch`).
    ///
    /// # Errors
    /// Returns [`WillumpError`] for `default_k == 0`, an improper
    /// efficient subset, or layout failures.
    pub fn top_k_filter(
        exec: Executor,
        filter: Arc<TrainedModel>,
        full: Arc<TrainedModel>,
        default_k: usize,
        config: TopKConfig,
        efficient: Vec<usize>,
    ) -> Result<ServingPlan, WillumpError> {
        let subsets = SubsetLayouts::new(&exec, efficient)?;
        ServingPlan::assemble(
            exec,
            full,
            Some(filter),
            Some(subsets),
            vec![
                PlanStage::ComputeFeatures {
                    subset: FeatureSet::Efficient,
                },
                PlanStage::PredictModel {
                    slot: ModelSlot::Small,
                },
                PlanStage::TopKFilter {
                    k: default_k,
                    config,
                },
                PlanStage::Escalate,
                PlanStage::PredictModel {
                    slot: ModelSlot::Full,
                },
            ],
        )
    }

    /// Attach a fitted score calibrator: small-model scores map
    /// through it before gates and when returned as predictions.
    #[must_use]
    pub fn with_calibrator(mut self, calibrator: Option<ScoreCalibrator>) -> ServingPlan {
        self.calibrator = calibrator;
        self
    }

    /// Compose an end-to-end prediction cache around the plan:
    /// a [`PlanStage::CacheLookup`] runs first (hits skip the whole
    /// pipeline, including remote feature requests) and a
    /// [`PlanStage::CacheFill`] stores every missed row's final score.
    /// `sources` are the input columns forming the key; `capacity`
    /// bounds the LRU (`None` = unbounded, the paper's setting).
    ///
    /// # Errors
    /// Returns [`WillumpError::BadConfig`] when the plan is already
    /// cached.
    pub fn with_e2e_cache(
        mut self,
        sources: Vec<String>,
        capacity: Option<usize>,
    ) -> Result<ServingPlan, WillumpError> {
        if self.cache.is_some() {
            return Err(WillumpError::BadConfig {
                reason: "plan already has an end-to-end cache".into(),
            });
        }
        let store = match capacity {
            Some(c) => LruCache::with_capacity(c),
            None => LruCache::unbounded(),
        };
        self.cache = Some(PlanCache {
            sources,
            store: Arc::new(Mutex::new(store)),
        });
        let mut stages = Vec::with_capacity(self.stages.len() + 2);
        stages.push(PlanStage::CacheLookup);
        stages.append(&mut self.stages);
        stages.push(PlanStage::CacheFill);
        self.stages = stages;
        self.meters = Arc::new(StageMeters::new(self.stages.len()));
        self.validate()?;
        Ok(self)
    }

    /// Compose a cascade confidence gate into an escalating plan,
    /// inserted directly before the first [`PlanStage::Escalate`]
    /// (e.g. a top-K plan gains cascade semantics: confident
    /// candidates keep their filter score and skip the full model).
    ///
    /// # Errors
    /// Returns [`WillumpError::BadConfig`] when the plan has no
    /// escalation stage or no small model.
    pub fn with_confidence_gate(mut self, threshold: f64) -> Result<ServingPlan, WillumpError> {
        let Some(pos) = self
            .stages
            .iter()
            .position(|s| matches!(s, PlanStage::Escalate))
        else {
            return Err(WillumpError::BadConfig {
                reason: "confidence gate needs an escalating plan".into(),
            });
        };
        self.stages
            .insert(pos, PlanStage::ConfidenceGate { threshold });
        self.meters = Arc::new(StageMeters::new(self.stages.len()));
        self.validate()?;
        Ok(self)
    }

    /// Compose arm selection over full-layout model variants: a
    /// [`PlanStage::SelectArm`] runs first and every
    /// [`ModelSlot::Full`] prediction is rebound to
    /// [`ModelSlot::Selected`]. Selection is deterministic
    /// epsilon-greedy: every `explore_every`-th query explores arms
    /// round-robin (0 disables exploration after the initial sweep);
    /// feed accuracy feedback through [`reward`](ServingPlan::reward).
    ///
    /// # Errors
    /// Returns [`WillumpError::BadConfig`] when `arms` is empty.
    pub fn with_arms(
        mut self,
        arms: Vec<Arc<TrainedModel>>,
        explore_every: u64,
    ) -> Result<ServingPlan, WillumpError> {
        if arms.is_empty() {
            return Err(WillumpError::BadConfig {
                reason: "arm selection needs at least one arm".into(),
            });
        }
        let n = arms.len();
        self.arms = arms;
        self.arm_state = Some(Arc::new(Mutex::new(ArmState {
            pulls: vec![0; n],
            rewards: vec![0.0; n],
            explore_every,
            total: 0,
        })));
        for stage in &mut self.stages {
            if matches!(
                stage,
                PlanStage::PredictModel {
                    slot: ModelSlot::Full
                }
            ) {
                *stage = PlanStage::PredictModel {
                    slot: ModelSlot::Selected,
                };
            }
        }
        self.stages.insert(0, PlanStage::SelectArm);
        self.meters = Arc::new(StageMeters::new(self.stages.len()));
        self.validate()?;
        Ok(self)
    }

    /// Whether [`degraded`](ServingPlan::degraded) can produce a
    /// cheaper form of this plan.
    pub fn can_degrade(&self) -> bool {
        self.small.is_some()
            && self.subsets.is_some()
            && self.stages.iter().any(|s| {
                matches!(
                    s,
                    PlanStage::PredictModel {
                        slot: ModelSlot::Full | ModelSlot::Selected,
                    }
                )
            })
    }

    /// Lower the plan to its degraded (load-shedding) form: the
    /// cascade short-circuits at the small model, so every row is
    /// answered from the efficient features without ever escalating
    /// to the full layout or full model.
    ///
    /// The degraded plan is a *view* of the same serving artifact —
    /// it shares the original's end-to-end cache and counters — with
    /// a rewritten stage list: an attached cache still answers
    /// lookups (hits are full-quality scores), but degraded answers
    /// are **not** written back, so the cache is never poisoned with
    /// small-model scores that would outlive the overload. A top-K
    /// filter stage is kept, ranking by filter score without the
    /// full-model rerank.
    ///
    /// Returns `None` when the plan has no cheaper form to fall back
    /// to (no small model, no efficient subset, or no full-model
    /// predict stage to cut) — see
    /// [`can_degrade`](ServingPlan::can_degrade). The admission layer
    /// uses this under SLO pressure: degrade first, shed only when
    /// degrading is not enough (or not possible).
    pub fn degraded(&self) -> Option<ServingPlan> {
        if !self.can_degrade() {
            return None;
        }
        let mut p = self.clone();
        let mut stages = Vec::with_capacity(4);
        if p.cache.is_some() {
            stages.push(PlanStage::CacheLookup);
        }
        stages.push(PlanStage::ComputeFeatures {
            subset: FeatureSet::Efficient,
        });
        stages.push(PlanStage::PredictModel {
            slot: ModelSlot::Small,
        });
        if let Some(filter) = self
            .stages
            .iter()
            .find(|s| matches!(s, PlanStage::TopKFilter { .. }))
        {
            stages.push(filter.clone());
        }
        p.stages = stages;
        p.meters = Arc::new(StageMeters::new(p.stages.len()));
        p.validate()
            .expect("the degraded lowering is structurally valid");
        Some(p)
    }

    /// Structural validation: every stage's prerequisites must be
    /// satisfied by the stages before it and the attached resources.
    fn validate(&self) -> Result<(), WillumpError> {
        let bad = |reason: String| -> WillumpError { WillumpError::BadConfig { reason } };
        if self.stages.is_empty() {
            return Err(bad("a serving plan needs at least one stage".into()));
        }
        let mut has_feats = false;
        let mut has_eff = false;
        let mut has_scores = false;
        let mut arm_selected = false;
        let mut last_slot: Option<ModelSlot> = None;
        for stage in &self.stages {
            match stage {
                PlanStage::ComputeFeatures { subset } => {
                    if *subset == FeatureSet::Efficient && self.subsets.is_none() {
                        return Err(bad("efficient features need a subset plan".into()));
                    }
                    has_feats = true;
                    has_eff = *subset == FeatureSet::Efficient;
                }
                PlanStage::CacheLookup | PlanStage::CacheFill => {
                    if self.cache.is_none() {
                        return Err(bad(format!(
                            "{} needs an attached cache (with_e2e_cache)",
                            stage.label()
                        )));
                    }
                    if matches!(stage, PlanStage::CacheFill) && !has_scores {
                        return Err(bad("cache_fill must follow a predict stage".into()));
                    }
                }
                PlanStage::PredictModel { slot } => {
                    if !has_feats {
                        return Err(bad(format!(
                            "{} has no computed features to read",
                            stage.label()
                        )));
                    }
                    match slot {
                        ModelSlot::Small if self.small.is_none() => {
                            return Err(bad("predict(small) needs a small model".into()));
                        }
                        ModelSlot::Selected if !arm_selected => {
                            return Err(bad(
                                "predict(selected) needs a preceding select_arm".into()
                            ));
                        }
                        _ => {}
                    }
                    has_scores = true;
                    last_slot = Some(*slot);
                }
                PlanStage::ConfidenceGate { threshold } => {
                    if !has_scores {
                        return Err(bad("confidence_gate must follow a predict stage".into()));
                    }
                    if !(0.0..=1.0).contains(threshold) {
                        return Err(bad(format!("threshold {threshold} not in [0, 1]")));
                    }
                    // `max(s, 1 - s)` only means confidence for
                    // classification probabilities; gating unbounded
                    // regression scores would silently "pass" anything
                    // far from [0, 1].
                    let gated = match last_slot.expect("has_scores implies a predict ran") {
                        ModelSlot::Small => self.small.as_ref().expect("validated small model"),
                        ModelSlot::Full => &self.full,
                        ModelSlot::Selected => &self.arms[0],
                    };
                    if gated.task() != Task::BinaryClassification {
                        return Err(bad("confidence gates require classification scores".into()));
                    }
                }
                PlanStage::TopKFilter { k, config } => {
                    if !has_scores {
                        return Err(bad("topk_filter must follow a predict stage".into()));
                    }
                    if *k == 0 || config.ck == 0 {
                        return Err(bad("top-K stages require k >= 1 and ck >= 1".into()));
                    }
                    if !(0.0..=1.0).contains(&config.min_subset_frac) {
                        return Err(bad(format!(
                            "min_subset_frac {} not in [0, 1]",
                            config.min_subset_frac
                        )));
                    }
                }
                PlanStage::Escalate => {
                    if !has_eff || self.subsets.is_none() {
                        return Err(bad(
                            "escalate needs previously computed efficient features".into()
                        ));
                    }
                    has_feats = true;
                }
                PlanStage::SelectArm => {
                    if self.arms.is_empty() {
                        return Err(bad("select_arm needs attached arms (with_arms)".into()));
                    }
                    arm_selected = true;
                }
            }
        }
        Ok(())
    }

    // ----- accessors & mutators ------------------------------------

    /// The stage sequence.
    pub fn stages(&self) -> &[PlanStage] {
        &self.stages
    }

    /// Stage labels in execution order (debugging, docs, logs).
    pub fn describe(&self) -> Vec<String> {
        self.stages.iter().map(PlanStage::label).collect()
    }

    /// The executor used for feature computation.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The full model.
    pub fn full_model(&self) -> &Arc<TrainedModel> {
        &self.full
    }

    /// The small/filter model, when the plan has one.
    pub fn small_model(&self) -> Option<&Arc<TrainedModel>> {
        self.small.as_ref()
    }

    /// The attached calibrator, if any.
    pub fn calibrator(&self) -> Option<&ScoreCalibrator> {
        self.calibrator.as_ref()
    }

    /// The efficient generator subset, when the plan has one.
    pub fn efficient_set(&self) -> Option<&[usize]> {
        self.subsets.as_ref().map(|s| s.efficient.as_slice())
    }

    /// The first confidence-gate threshold, when the plan has one.
    pub fn threshold(&self) -> Option<f64> {
        self.stages.iter().find_map(|s| match s {
            PlanStage::ConfidenceGate { threshold } => Some(*threshold),
            _ => None,
        })
    }

    /// Override every confidence-gate threshold (threshold sweeps).
    /// Returns whether any gate was present.
    pub fn set_threshold(&mut self, tc: f64) -> bool {
        let mut found = false;
        for stage in &mut self.stages {
            if let PlanStage::ConfidenceGate { threshold } = stage {
                *threshold = tc;
                found = true;
            }
        }
        found
    }

    /// The first top-K filter configuration, when the plan has one.
    pub fn topk_config(&self) -> Option<TopKConfig> {
        self.stages.iter().find_map(|s| match s {
            PlanStage::TopKFilter { config, .. } => Some(*config),
            _ => None,
        })
    }

    /// Override every top-K filter configuration (subset-size sweeps).
    /// Returns whether any filter stage was present.
    pub fn set_topk_config(&mut self, new: TopKConfig) -> bool {
        let mut found = false;
        for stage in &mut self.stages {
            if let PlanStage::TopKFilter { config, .. } = stage {
                *config = new;
                found = true;
            }
        }
        found
    }

    /// Cumulative counters (shared across clones).
    pub fn counters(&self) -> &PlanCounters {
        &self.counters
    }

    /// An owning handle to the shared counters, outliving this clone.
    ///
    /// The serving layer attaches this to an endpoint so its scheduler
    /// can read escalation statistics without holding the plan itself.
    pub fn counters_handle(&self) -> Arc<PlanCounters> {
        Arc::clone(&self.counters)
    }

    /// Cumulative per-stage execution profiles (shared across clones).
    pub fn stage_profiles(&self) -> Vec<StageProfile> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| StageProfile {
                label: s.label(),
                runs: self.meters.runs[i].load(Ordering::Relaxed),
                rows_in: self.meters.rows_in[i].load(Ordering::Relaxed),
                seconds: self.meters.nanos[i].load(Ordering::Relaxed) as f64 / 1e9,
            })
            .collect()
    }

    /// End-to-end cache hits so far (0 without a cache).
    pub fn cache_hits(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.store.lock().hits())
    }

    /// End-to-end cache misses so far (0 without a cache).
    pub fn cache_misses(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.store.lock().misses())
    }

    /// End-to-end cache hit rate (0 without a cache or lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache
            .as_ref()
            .map_or(0.0, |c| c.store.lock().hit_rate())
    }

    /// Clear the end-to-end cache's contents and counters.
    pub fn clear_cache(&self) {
        if let Some(c) = &self.cache {
            c.store.lock().clear();
        }
    }

    /// Pin the end-to-end cache entries backing `table`'s rows against
    /// LRU eviction, returning how many entries were newly pinned.
    ///
    /// The serving runtime calls this for rows belonging to
    /// heavy-hitter routing keys, so a burst of cold traffic cannot
    /// evict the answers the hottest keys keep asking for. A no-op
    /// without a cache, for rows not currently cached, and for rows
    /// missing a cache source column.
    pub fn pin_cache_rows(&self, table: &Table) -> usize {
        let Some(cache) = &self.cache else { return 0 };
        let mut store = cache.store.lock();
        let mut pinned = 0;
        for r in 0..table.n_rows() {
            let Ok(key) = self.cache_key_row(table, r) else {
                continue;
            };
            if !store.is_pinned(&key) && store.pin(&key) {
                pinned += 1;
            }
        }
        pinned
    }

    /// End-to-end cache entries currently pinned (0 without a cache).
    pub fn cache_pinned(&self) -> usize {
        self.cache
            .as_ref()
            .map_or(0, |c| c.store.lock().pinned_len())
    }

    /// Feed reward in `[0, 1]` (clamped) for `arm` back into the
    /// selection policy.
    ///
    /// # Panics
    /// Panics when the plan has no arms or `arm` is out of range.
    pub fn reward(&self, arm: usize, reward: f64) {
        let state = self
            .arm_state
            .as_ref()
            .expect("reward requires a plan with arms");
        let mut st = state.lock();
        assert!(arm < st.pulls.len(), "arm {arm} out of range");
        st.rewards[arm] += reward.clamp(0.0, 1.0);
    }

    /// Per-arm pull counts (empty without arms).
    pub fn arm_pulls(&self) -> Vec<u64> {
        self.arm_state
            .as_ref()
            .map_or_else(Vec::new, |s| s.lock().pulls.clone())
    }

    // ----- execution conveniences ----------------------------------

    /// Run the plan over a batch, returning the scores.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn predict_batch(&self, table: &Table) -> Result<Vec<f64>, WillumpError> {
        Ok(self.run_batch(table)?.scores)
    }

    /// Run the plan over a batch with the full outcome (scores,
    /// ranking, stage report).
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn run_batch(&self, table: &Table) -> Result<PlanOutcome, WillumpError> {
        PlanExecutor::new(self).run_batch(table, None)
    }

    /// Run the plan row-wise for one input, returning the score.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn predict_one(&self, input: &InputRow) -> Result<f64, WillumpError> {
        Ok(self.run_one(input)?.score)
    }

    /// Run the plan row-wise for one input with the full outcome.
    ///
    /// # Errors
    /// Propagates execution failures.
    pub fn run_one(&self, input: &InputRow) -> Result<RowOutcome, WillumpError> {
        PlanExecutor::new(self).run_row(input)
    }

    /// Answer a top-`k` query: the plan's filter stage runs with this
    /// K, and the returned indices are the final candidates ranked
    /// best-first by their last predicted score.
    ///
    /// # Errors
    /// Errors when `k == 0` or the plan has no
    /// [`PlanStage::TopKFilter`]; propagates execution failures.
    pub fn top_k(
        &self,
        table: &Table,
        k: usize,
    ) -> Result<(Vec<usize>, PlanRunReport), WillumpError> {
        if k == 0 {
            return Err(WillumpError::BadConfig {
                reason: "top-K requires k >= 1".into(),
            });
        }
        let out = PlanExecutor::new(self).run_batch(table, Some(k))?;
        let ranked = out.ranked.ok_or_else(|| WillumpError::BadConfig {
            reason: "plan has no topk_filter stage".into(),
        })?;
        Ok((ranked, out.report))
    }

    fn cache_key_row(&self, table: &Table, r: usize) -> Result<Vec<String>, WillumpError> {
        let cache = self.cache.as_ref().expect("validated cache");
        cache
            .sources
            .iter()
            .map(|s| {
                table
                    .value(r, s)
                    .map(|v| v.to_string())
                    .ok_or_else(|| WillumpError::BadData {
                        reason: format!("input missing source column `{s}`"),
                    })
            })
            .collect()
    }

    fn cache_key_input(&self, input: &InputRow) -> Result<Vec<String>, WillumpError> {
        let cache = self.cache.as_ref().expect("validated cache");
        cache
            .sources
            .iter()
            .map(|s| {
                input
                    .get(s)
                    .map(std::string::ToString::to_string)
                    .ok_or_else(|| WillumpError::BadData {
                        reason: format!("input missing source column `{s}`"),
                    })
            })
            .collect()
    }

    fn model(&self, slot: ModelSlot, selected: Option<usize>) -> &Arc<TrainedModel> {
        match slot {
            ModelSlot::Small => self.small.as_ref().expect("validated small model"),
            ModelSlot::Full => &self.full,
            ModelSlot::Selected => {
                let arm = selected.expect("validated select_arm precedes predict(selected)");
                &self.arms[arm]
            }
        }
    }

    fn calibrated(&self, score: f64) -> f64 {
        match &self.calibrator {
            Some(c) => c.calibrate(score),
            None => score,
        }
    }
}

/// Which feature matrix is current for the next predict stage.
#[derive(Clone, Copy, PartialEq)]
enum CurrentFeats {
    None,
    Efficient,
    Other,
}

/// Runs any [`ServingPlan`] batch-wise ([`run_batch`]) or row-wise
/// ([`run_row`]) over the existing [`Executor`]/engine machinery.
///
/// [`ServingPlan::predict_batch`] / [`ServingPlan::predict_one`] are
/// sugar over this; use the executor directly when you want the
/// stage-by-stage [`PlanRunReport`] or a per-run top-K override.
///
/// # Examples
///
/// ```no_run
/// use willump::{PlanExecutor, ServingPlan};
/// # fn demo(plan: &ServingPlan, table: &willump_data::Table)
/// # -> Result<(), willump::WillumpError> {
/// let outcome = PlanExecutor::new(plan).run_batch(table, Some(20))?;
/// for trace in &outcome.report.stages {
///     println!(
///         "{:<16} {:>6} -> {:>6} rows  {:.1}ms",
///         trace.label, trace.rows_in, trace.rows_out,
///         trace.seconds * 1e3,
///     );
/// }
/// # Ok(())
/// # }
/// ```
///
/// [`run_batch`]: PlanExecutor::run_batch
/// [`run_row`]: PlanExecutor::run_row
#[derive(Debug, Clone, Copy)]
pub struct PlanExecutor<'p> {
    plan: &'p ServingPlan,
}

impl<'p> PlanExecutor<'p> {
    /// An executor over one plan.
    pub fn new(plan: &'p ServingPlan) -> PlanExecutor<'p> {
        PlanExecutor { plan }
    }

    /// Run the plan over a batch. `k_override` replaces every
    /// [`PlanStage::TopKFilter`]'s default K for this run.
    ///
    /// # Errors
    /// Propagates feature computation and cache-key failures.
    pub fn run_batch(
        &self,
        table: &Table,
        k_override: Option<usize>,
    ) -> Result<PlanOutcome, WillumpError> {
        let plan = self.plan;
        let n = table.n_rows();
        let mut scores = vec![0.0; n];
        let mut active: Vec<usize> = (0..n).collect();
        let mut is_active = vec![true; n];

        // Efficient-feature block (kept for escalation merges) and
        // the current feature matrix, each with the original-row list
        // it is aligned to.
        let mut eff_m: Option<FeatureMatrix> = None;
        let mut eff_index: Vec<Option<usize>> = Vec::new();
        let mut other_m: Option<FeatureMatrix> = None;
        let mut other_rows: Vec<usize> = Vec::new();
        let mut eff_rows: Vec<usize> = Vec::new();
        let mut current = CurrentFeats::None;

        let mut missed: Vec<(usize, Vec<String>)> = Vec::new();
        let mut dropped_by_filter = vec![false; n];
        let mut cache_resolved: Vec<usize> = Vec::new();
        let mut selected_arm: Option<usize> = None;
        let mut ranked_k: Option<usize> = None;
        // Candidate list captured by the (last) top-K filter, in kept
        // (descending filter-score) order. Rows that resolve early —
        // by gate or cache — stay ranked; only filter-dropped rows
        // leave the candidate set.
        let mut candidates: Option<Vec<usize>> = None;
        let mut report = PlanRunReport::default();

        for (si, stage) in plan.stages.iter().enumerate() {
            let rows_in = active.len();
            let started = Instant::now();
            match stage {
                PlanStage::ComputeFeatures { subset } => {
                    let cols: Option<&[usize]> = match subset {
                        FeatureSet::Efficient => {
                            Some(&plan.subsets.as_ref().expect("validated subsets").efficient)
                        }
                        FeatureSet::Full => None,
                    };
                    let m = if active.len() == n {
                        plan.exec.features_batch(table, cols)?
                    } else {
                        plan.exec.features_batch(&table.take_rows(&active), cols)?
                    };
                    match subset {
                        FeatureSet::Efficient => {
                            eff_index = vec![None; n];
                            for (j, &r) in active.iter().enumerate() {
                                eff_index[r] = Some(j);
                            }
                            eff_rows = active.clone();
                            eff_m = Some(m);
                            current = CurrentFeats::Efficient;
                        }
                        FeatureSet::Full => {
                            other_rows = active.clone();
                            other_m = Some(m);
                            current = CurrentFeats::Other;
                        }
                    }
                }
                PlanStage::CacheLookup => {
                    let cache = plan.cache.as_ref().expect("validated cache");
                    let mut still = Vec::with_capacity(active.len());
                    let mut store = cache.store.lock();
                    for &r in &active {
                        let key = plan.cache_key_row(table, r)?;
                        if let Some(v) = store.get(&key) {
                            scores[r] = *v;
                            is_active[r] = false;
                            cache_resolved.push(r);
                            report.cache_hits += 1;
                        } else {
                            missed.push((r, key));
                            still.push(r);
                        }
                    }
                    report.cache_misses += still.len();
                    active = still;
                }
                PlanStage::CacheFill => {
                    let cache = plan.cache.as_ref().expect("validated cache");
                    let mut store = cache.store.lock();
                    for (r, key) in missed.drain(..) {
                        // Filter-dropped rows never reached a final
                        // predict — their score means "not in the
                        // top K", not an answer; caching it would
                        // poison later queries with filter-model
                        // scores.
                        if !dropped_by_filter[r] {
                            store.put(key, scores[r]);
                        }
                    }
                }
                PlanStage::PredictModel { slot } => {
                    let (m, rows) = match current {
                        CurrentFeats::Efficient => (eff_m.as_ref(), &eff_rows),
                        CurrentFeats::Other => (other_m.as_ref(), &other_rows),
                        CurrentFeats::None => (None, &other_rows),
                    };
                    if let Some(m) = m {
                        if m.n_rows() > 0 {
                            let model = plan.model(*slot, selected_arm);
                            let mut s = model.predict_scores(m);
                            if *slot == ModelSlot::Small {
                                for v in &mut s {
                                    *v = plan.calibrated(*v);
                                }
                            }
                            for (j, &r) in rows.iter().enumerate() {
                                if is_active[r] {
                                    scores[r] = s[j];
                                }
                            }
                        }
                    }
                }
                PlanStage::ConfidenceGate { threshold } => {
                    let before = active.len();
                    active.retain(|&r| {
                        let s = scores[r];
                        if s.max(1.0 - s) > *threshold {
                            is_active[r] = false;
                            false
                        } else {
                            true
                        }
                    });
                    let resolved = before - active.len();
                    report.gate_resolved += resolved;
                    plan.counters
                        .gate_resolved
                        .fetch_add(resolved as u64, Ordering::Relaxed);
                }
                PlanStage::TopKFilter { k, config } => {
                    let k = k_override.unwrap_or(*k);
                    let nn = active.len();
                    let by_ck = config.ck.saturating_mul(k);
                    let by_frac = (config.min_subset_frac * nn as f64).ceil() as usize;
                    let subset_size = by_ck.max(by_frac).min(nn);
                    let active_scores: Vec<f64> = active.iter().map(|&r| scores[r]).collect();
                    let kept_pos = metrics::top_k_indices(&active_scores, subset_size);
                    for &r in &active {
                        is_active[r] = false;
                        dropped_by_filter[r] = true;
                    }
                    let kept: Vec<usize> = kept_pos.into_iter().map(|p| active[p]).collect();
                    for &r in &kept {
                        is_active[r] = true;
                        dropped_by_filter[r] = false;
                    }
                    plan.counters
                        .filter_dropped
                        .fetch_add((nn - kept.len()) as u64, Ordering::Relaxed);
                    report.filter_batch = Some(nn);
                    report.filter_kept = Some(subset_size);
                    ranked_k = Some(k);
                    candidates = Some(kept.clone());
                    active = kept;
                }
                PlanStage::Escalate => {
                    let subsets = plan.subsets.as_ref().expect("validated subsets");
                    report.escalated += active.len();
                    plan.counters
                        .escalated
                        .fetch_add(active.len() as u64, Ordering::Relaxed);
                    if active.is_empty() {
                        other_m = None;
                        other_rows.clear();
                        current = CurrentFeats::Other;
                    } else {
                        let sub = table.take_rows(&active);
                        let ineff = plan.exec.features_batch(&sub, Some(&subsets.inefficient))?;
                        let eff = eff_m.as_ref().expect("validated efficient features");
                        let pick: Vec<usize> = active
                            .iter()
                            .map(|&r| eff_index[r].expect("active rows have efficient features"))
                            .collect();
                        let merged = merge_subset_rows(
                            &subsets.eff_remap,
                            &subsets.ineff_remap,
                            eff,
                            &pick,
                            &ineff,
                            subsets.full_width,
                        );
                        other_m = Some(merged);
                        other_rows = active.clone();
                        current = CurrentFeats::Other;
                    }
                }
                PlanStage::SelectArm => {
                    let state = plan.arm_state.as_ref().expect("validated arms");
                    let arm = state.lock().pick();
                    selected_arm = Some(arm);
                    report.selected_arm = Some(arm);
                }
            }
            let seconds = started.elapsed().as_secs_f64();
            plan.meters.record(si, rows_in, (seconds * 1e9) as u64);
            report.stages.push(StageTrace {
                label: stage.label(),
                rows_in,
                rows_out: active.len(),
                seconds,
            });
        }
        plan.counters.rows.fetch_add(n as u64, Ordering::Relaxed);

        let ranked = ranked_k.map(|k| {
            // All filter candidates rank, including ones that resolved
            // early via a confidence gate; rows answered straight from
            // the cache (they never reached the filter) rank too, with
            // their cached final score.
            let mut pool = candidates.take().unwrap_or_default();
            pool.extend(cache_resolved.iter().copied());
            let pool_scores: Vec<f64> = pool.iter().map(|&r| scores[r]).collect();
            metrics::top_k_indices(&pool_scores, k.min(pool.len()))
                .into_iter()
                .map(|p| pool[p])
                .collect()
        });
        Ok(PlanOutcome {
            scores,
            ranked,
            report,
        })
    }

    /// Run the plan row-wise for one input (the example-at-a-time
    /// serving path: per-input parallelism and feature-level caches in
    /// the executor still apply).
    ///
    /// [`PlanStage::TopKFilter`] is a no-op row-wise — a single input
    /// is always its own candidate.
    ///
    /// # Errors
    /// Propagates feature computation and cache-key failures.
    pub fn run_row(&self, input: &InputRow) -> Result<RowOutcome, WillumpError> {
        let plan = self.plan;
        let mut score = 0.0;
        let mut resolved = false;
        let mut escalated = false;
        let mut cache_hit = false;
        let mut missed_key: Option<Vec<String>> = None;
        let mut selected_arm: Option<usize> = None;

        let mut eff_entries: Vec<(usize, f64)> = Vec::new();
        let mut entries: Vec<(usize, f64)> = Vec::new();
        let mut width = 0usize;

        for (si, stage) in plan.stages.iter().enumerate() {
            let started = Instant::now();
            let rows_in = usize::from(!resolved);
            // Stages after resolution (except the cache fill) do not
            // execute and are not metered.
            if resolved && !matches!(stage, PlanStage::CacheFill) {
                continue;
            }
            match stage {
                PlanStage::ComputeFeatures { subset } => {
                    let cols: Option<&[usize]> = match subset {
                        FeatureSet::Efficient => {
                            Some(&plan.subsets.as_ref().expect("validated subsets").efficient)
                        }
                        FeatureSet::Full => None,
                    };
                    let rf = plan.exec.features_one(input, cols)?;
                    if *subset == FeatureSet::Efficient {
                        eff_entries.clone_from(&rf.entries);
                    }
                    entries = rf.entries;
                    width = rf.width;
                }
                PlanStage::CacheLookup => {
                    let cache = plan.cache.as_ref().expect("validated cache");
                    let key = plan.cache_key_input(input)?;
                    if let Some(v) = cache.store.lock().get(&key) {
                        score = *v;
                        resolved = true;
                        cache_hit = true;
                    } else {
                        missed_key = Some(key);
                    }
                }
                PlanStage::CacheFill => {
                    if let Some(key) = missed_key.take() {
                        let cache = plan.cache.as_ref().expect("validated cache");
                        cache.store.lock().put(key, score);
                    }
                }
                PlanStage::PredictModel { slot } => {
                    let model = plan.model(*slot, selected_arm);
                    score = model.predict_score_row(&entries, width);
                    if *slot == ModelSlot::Small {
                        score = plan.calibrated(score);
                    }
                }
                PlanStage::ConfidenceGate { threshold } => {
                    if score.max(1.0 - score) > *threshold {
                        resolved = true;
                        plan.counters.gate_resolved.fetch_add(1, Ordering::Relaxed);
                    }
                }
                PlanStage::TopKFilter { .. } => {
                    // A single row is always within its own top-K
                    // candidate set: nothing to drop.
                }
                PlanStage::Escalate => {
                    let subsets = plan.subsets.as_ref().expect("validated subsets");
                    let ineff = plan.exec.features_one(input, Some(&subsets.inefficient))?;
                    entries = Remapper::merge_full(
                        subsets.eff_remap.to_full(&eff_entries),
                        subsets.ineff_remap.to_full(&ineff.entries),
                    );
                    width = subsets.full_width;
                    escalated = true;
                    plan.counters.escalated.fetch_add(1, Ordering::Relaxed);
                }
                PlanStage::SelectArm => {
                    let state = plan.arm_state.as_ref().expect("validated arms");
                    selected_arm = Some(state.lock().pick());
                }
            }
            plan.meters
                .record(si, rows_in, started.elapsed().as_nanos() as u64);
        }
        plan.counters.rows.fetch_add(1, Ordering::Relaxed);
        Ok(RowOutcome {
            score,
            escalated,
            cache_hit,
            selected_arm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::{Column, Value};
    use willump_graph::{EngineMode, GraphBuilder, Operator};
    use willump_models::{LinearParams, LogisticParams, ModelSpec};

    /// Two numeric FGs; FG0 alone classifies "easy" inputs, FG1 is
    /// needed for the hard ones (same shape as the cascade tests).
    fn setup() -> (Executor, Table, Vec<f64>) {
        let mut b = GraphBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        let f0 = b.add("f0", Operator::NumericColumn, [a]).unwrap();
        let f1 = b.add("f1", Operator::NumericColumn, [c]).unwrap();
        let g = Arc::new(b.finish_with_concat("cat", [f0, f1]).unwrap());
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let mut avals = Vec::new();
        let mut bvals = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            let easy = i % 3 != 0;
            let y = (i % 2) as f64;
            if easy {
                avals.push(if y > 0.5 { 3.0 } else { -3.0 });
                bvals.push(0.0);
            } else {
                avals.push(0.0);
                bvals.push(if y > 0.5 { 2.0 } else { -2.0 });
            }
            labels.push(y);
        }
        let mut t = Table::new();
        t.add_column("a", Column::from(avals)).unwrap();
        t.add_column("b", Column::from(bvals)).unwrap();
        (exec, t, labels)
    }

    fn train(exec: &Executor, t: &Table, y: &[f64]) -> (Arc<TrainedModel>, Arc<TrainedModel>) {
        let full_feats = exec.features_batch(t, None).unwrap();
        let full = ModelSpec::Logistic(LogisticParams::default())
            .fit(&full_feats, y, 1)
            .unwrap();
        let eff_feats = exec.features_batch(t, Some(&[0])).unwrap();
        let small = ModelSpec::Logistic(LogisticParams::default())
            .fit(&eff_feats, y, 1)
            .unwrap();
        (Arc::new(small), Arc::new(full))
    }

    #[test]
    fn placement_pressure_tracks_volume_and_escalation_share() {
        let idle = PlanCountersSnapshot::default();
        assert_eq!(idle.placement_pressure(), 0.0);

        let calm = PlanCountersSnapshot {
            rows: 1000,
            gate_resolved: 1000,
            escalated: 0,
            filter_dropped: 0,
        };
        let busy = PlanCountersSnapshot { rows: 2000, ..calm };
        let escalating = PlanCountersSnapshot {
            escalated: 1000,
            gate_resolved: 0,
            ..calm
        };
        // Monotone in volume and in escalation share: a node doing
        // twice the rows — or escalating every row — scores hotter
        // than a calm one.
        assert!(busy.placement_pressure() > calm.placement_pressure());
        assert!(escalating.placement_pressure() > calm.placement_pressure());
        assert_eq!(calm.placement_pressure(), 1.0);
        assert_eq!(escalating.placement_pressure(), 2.0);
    }

    #[test]
    fn full_plan_matches_direct_prediction() {
        let (exec, t, y) = setup();
        let (_, full) = train(&exec, &t, &y);
        let plan = ServingPlan::full_model_plan(exec.clone(), full.clone());
        assert_eq!(
            plan.describe(),
            vec!["compute_features(full)", "predict(full)"]
        );
        let scores = plan.predict_batch(&t).unwrap();
        let direct = full.predict_scores(&exec.features_batch(&t, None).unwrap());
        assert_eq!(scores, direct);
        // Row-wise agrees with batch.
        for r in (0..t.n_rows()).step_by(37) {
            let input = InputRow::from_table(&t, r).unwrap();
            assert!((plan.predict_one(&input).unwrap() - scores[r]).abs() < 1e-9);
        }
        assert_eq!(plan.counters().rows() as usize, t.n_rows() + 7);
    }

    #[test]
    fn cascade_plan_gates_and_escalates() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let plan = ServingPlan::cascade(exec, small, full, 0.8, vec![0]).unwrap();
        assert_eq!(plan.threshold(), Some(0.8));
        let out = plan.run_batch(&t).unwrap();
        assert_eq!(out.scores.len(), t.n_rows());
        assert!(out.report.gate_resolved > 0, "{:?}", out.report);
        assert!(out.report.escalated > 0);
        assert_eq!(out.report.gate_resolved + out.report.escalated, t.n_rows());
        // Accuracy is preserved for this easy synthetic data.
        let acc = metrics::accuracy(&out.scores, &y);
        assert!(acc > 0.95, "accuracy {acc}");
        // Row-wise agrees with batch.
        for r in (0..t.n_rows()).step_by(29) {
            let input = InputRow::from_table(&t, r).unwrap();
            let row = plan.run_one(&input).unwrap();
            assert!((row.score - out.scores[r]).abs() < 1e-9, "row {r}");
        }
        // Stage profiles accumulated for every stage.
        let profiles = plan.stage_profiles();
        assert_eq!(profiles.len(), 5);
        assert!(profiles.iter().all(|p| p.runs > 0));
    }

    #[test]
    fn degraded_cascade_never_escalates() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let plan = ServingPlan::cascade(exec.clone(), small.clone(), full, 0.8, vec![0]).unwrap();
        assert!(plan.can_degrade());
        let degraded = plan.degraded().expect("cascades degrade");
        assert_eq!(
            degraded.describe(),
            vec!["compute_features(efficient)", "predict(small)"]
        );
        let out = degraded.run_batch(&t).unwrap();
        assert_eq!(out.report.escalated, 0, "degraded plans never escalate");
        // Every score is the small model's answer over the efficient
        // subset.
        let eff = exec.features_batch(&t, Some(&[0])).unwrap();
        assert_eq!(out.scores, small.predict_scores(&eff));
        // Counters are shared: the degraded view's rows land in the
        // original plan's statistics.
        assert_eq!(plan.counters().rows() as usize, t.n_rows());
    }

    #[test]
    fn degraded_plan_reads_but_never_fills_the_cache() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let plan = ServingPlan::cascade(exec, small, full, 0.8, vec![0])
            .unwrap()
            .with_e2e_cache(vec!["a".to_string(), "b".to_string()], None)
            .unwrap();
        let degraded = plan.degraded().unwrap();
        assert_eq!(
            degraded.describe(),
            vec![
                "cache_lookup",
                "compute_features(efficient)",
                "predict(small)",
            ]
        );
        // Degraded answers are not written back…
        let input = InputRow::new([("a", Value::Float(3.0)), ("b", Value::Float(0.0))]);
        let d = degraded.run_one(&input).unwrap();
        assert!(!d.cache_hit);
        assert!(!degraded.run_one(&input).unwrap().cache_hit);
        // …but full-quality answers cached before (or between)
        // overloads are served from the shared cache.
        let f = plan.run_one(&input).unwrap();
        assert!(!f.cache_hit);
        let d2 = degraded.run_one(&input).unwrap();
        assert!(d2.cache_hit, "degraded view shares the plan's cache");
        assert!((d2.score - f.score).abs() < 1e-12);
        let _ = d;
    }

    #[test]
    fn pinned_hot_rows_survive_cache_churn() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let plan = ServingPlan::cascade(exec, small, full, 0.8, vec![0])
            .unwrap()
            .with_e2e_cache(vec!["a".to_string(), "b".to_string()], Some(2))
            .unwrap();
        let row = |a: f64, b: f64| {
            let mut one = Table::new();
            one.add_column("a", Column::from(vec![a])).unwrap();
            one.add_column("b", Column::from(vec![b])).unwrap();
            one
        };
        let hot = row(3.0, 0.0);
        // Pinning before the row is cached is a no-op…
        assert_eq!(plan.pin_cache_rows(&hot), 0);
        let first = plan.predict_batch(&hot).unwrap()[0];
        // …once cached, the pin takes, exactly once.
        assert_eq!(plan.pin_cache_rows(&hot), 1);
        assert_eq!(plan.pin_cache_rows(&hot), 0);
        assert_eq!(plan.cache_pinned(), 1);
        // Churn the 2-entry cache well past capacity with cold rows.
        for i in 0..8 {
            let _ = plan.predict_batch(&row(-3.0, f64::from(i))).unwrap();
        }
        let hits = plan.cache_hits();
        assert!((plan.predict_batch(&hot).unwrap()[0] - first).abs() < 1e-12);
        assert_eq!(plan.cache_hits(), hits + 1, "pinned hot row was evicted");
    }

    #[test]
    fn degraded_topk_keeps_ranking() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let plan = ServingPlan::top_k_filter(exec, small, full, 10, TopKConfig::default(), vec![0])
            .unwrap();
        let degraded = plan.degraded().unwrap();
        assert_eq!(
            degraded.describe(),
            vec![
                "compute_features(efficient)",
                "predict(small)",
                "topk_filter(k=10, ck=10)",
            ]
        );
        let (ranked, report) = degraded.top_k(&t, 5).unwrap();
        assert_eq!(ranked.len(), 5);
        assert!(report.filter_batch.is_some());
        assert_eq!(report.escalated, 0);
    }

    #[test]
    fn full_model_plans_cannot_degrade() {
        let (exec, t, y) = setup();
        let (_, full) = train(&exec, &t, &y);
        let plan = ServingPlan::full_model_plan(exec, full);
        assert!(!plan.can_degrade());
        assert!(plan.degraded().is_none());
    }

    #[test]
    fn cached_plan_hits_skip_computation() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let plan = ServingPlan::cascade(exec.clone(), small, full, 0.8, vec![0])
            .unwrap()
            .with_e2e_cache(vec!["a".to_string(), "b".to_string()], None)
            .unwrap();
        let generators_before = exec.stats().generators_computed();
        let first = plan.predict_batch(&t).unwrap();
        let computed_first = exec.stats().generators_computed() - generators_before;
        assert!(computed_first > 0);
        let second = plan.predict_batch(&t).unwrap();
        assert_eq!(first, second);
        // The synthetic data has many duplicate (a, b) rows, so even
        // the first pass hits; the second pass must hit fully.
        assert!(plan.cache_hits() >= t.n_rows() as u64);
        assert!(plan.cache_hit_rate() >= 0.5);
        // Row-wise cache path.
        let input = InputRow::new([("a", Value::Float(3.0)), ("b", Value::Float(0.0))]);
        let row = plan.run_one(&input).unwrap();
        assert!(row.cache_hit);
        plan.clear_cache();
        assert_eq!(plan.cache_hits(), 0);
        let row = plan.run_one(&input).unwrap();
        assert!(!row.cache_hit);
    }

    #[test]
    fn composed_gate_and_filter_plan_runs() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let plan = ServingPlan::top_k_filter(exec, small, full, 10, TopKConfig::default(), vec![0])
            .unwrap()
            .with_confidence_gate(0.9)
            .unwrap()
            .with_e2e_cache(vec!["a".to_string(), "b".to_string()], None)
            .unwrap();
        assert_eq!(
            plan.describe(),
            vec![
                "cache_lookup",
                "compute_features(efficient)",
                "predict(small)",
                "topk_filter(k=10, ck=10)",
                "confidence_gate(t=0.9)",
                "escalate",
                "predict(full)",
                "cache_fill",
            ]
        );
        let (ranked, report) = plan.top_k(&t, 5).unwrap();
        assert_eq!(ranked.len(), 5);
        assert!(report.filter_batch.is_some());
        let _ = y;
    }

    #[test]
    fn select_arm_converges_on_rewarded_arm() {
        let (exec, t, y) = setup();
        let (_, full) = train(&exec, &t, &y);
        let plan = ServingPlan::full_model_plan(exec, full.clone())
            .with_arms(vec![full.clone(), full], 8)
            .unwrap();
        let input = InputRow::from_table(&t, 0).unwrap();
        for _ in 0..100 {
            let out = plan.run_one(&input).unwrap();
            let arm = out.selected_arm.unwrap();
            plan.reward(arm, if arm == 1 { 0.9 } else { 0.1 });
        }
        let pulls = plan.arm_pulls();
        assert_eq!(pulls.iter().sum::<u64>(), 100);
        assert!(pulls[1] > pulls[0], "pulls {pulls:?}");
    }

    #[test]
    fn invalid_plans_rejected() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        // Improper efficient subsets.
        assert!(
            ServingPlan::cascade(exec.clone(), small.clone(), full.clone(), 0.8, vec![]).is_err()
        );
        assert!(
            ServingPlan::cascade(exec.clone(), small.clone(), full.clone(), 0.8, vec![0, 1])
                .is_err()
        );
        // Out-of-range threshold.
        assert!(
            ServingPlan::cascade(exec.clone(), small.clone(), full.clone(), 1.5, vec![0]).is_err()
        );
        // k = 0 filter.
        assert!(ServingPlan::top_k_filter(
            exec.clone(),
            small.clone(),
            full.clone(),
            0,
            TopKConfig::default(),
            vec![0]
        )
        .is_err());
        // Gate on a non-escalating plan.
        assert!(ServingPlan::full_model_plan(exec.clone(), full.clone())
            .with_confidence_gate(0.5)
            .is_err());
        // Double cache.
        assert!(ServingPlan::full_model_plan(exec.clone(), full.clone())
            .with_e2e_cache(vec!["a".into()], None)
            .unwrap()
            .with_e2e_cache(vec!["a".into()], None)
            .is_err());
        // Empty arms.
        assert!(ServingPlan::full_model_plan(exec.clone(), full.clone())
            .with_arms(vec![], 4)
            .is_err());
        // Top-K queries need a filter stage and k >= 1.
        let plain = ServingPlan::full_model_plan(exec.clone(), full.clone());
        assert!(plain.top_k(&t, 5).is_err());
        assert!(plain.top_k(&t, 0).is_err());
        assert_eq!(full.task(), willump_models::Task::BinaryClassification);
        // Confidence gates over regression scores are rejected.
        let lin_full = Arc::new(
            ModelSpec::Linear(LinearParams::default())
                .fit(&exec.features_batch(&t, None).unwrap(), &y, 1)
                .unwrap(),
        );
        let lin_small = Arc::new(
            ModelSpec::Linear(LinearParams::default())
                .fit(&exec.features_batch(&t, Some(&[0])).unwrap(), &y, 1)
                .unwrap(),
        );
        assert!(ServingPlan::cascade(exec, lin_small, lin_full, 0.8, vec![0]).is_err());
    }

    #[test]
    fn threshold_and_config_mutators() {
        let (exec, t, y) = setup();
        let (small, full) = train(&exec, &t, &y);
        let mut plan =
            ServingPlan::cascade(exec.clone(), small.clone(), full.clone(), 0.8, vec![0]).unwrap();
        assert!(plan.set_threshold(1.0));
        assert_eq!(plan.threshold(), Some(1.0));
        // Threshold 1.0 escalates everything: plan equals full model.
        let out = plan.run_batch(&t).unwrap();
        assert_eq!(out.report.gate_resolved, 0);
        let direct = full.predict_scores(&exec.features_batch(&t, None).unwrap());
        for (a, b) in out.scores.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9);
        }
        let mut filter =
            ServingPlan::top_k_filter(exec, small, full, 10, TopKConfig::default(), vec![0])
                .unwrap();
        assert!(filter.set_topk_config(TopKConfig {
            ck: 2,
            min_subset_frac: 0.0,
        }));
        assert_eq!(filter.topk_config().unwrap().ck, 2);
        assert!(!filter.set_threshold(0.5));
    }
}
