//! # willump
//!
//! The core of the Willump reproduction: a statistically-aware
//! end-to-end optimizer for ML inference pipelines (Kraft et al.,
//! MLSys 2020).
//!
//! Given a [`Pipeline`] — a transformation graph plus a model spec —
//! and training/validation data, [`Willump::optimize`] produces an
//! [`OptimizedPipeline`] that applies the paper's optimizations:
//!
//! - **Automatic end-to-end cascades** (§4.2): compute per-IFV
//!   prediction importances and computational costs, select the
//!   *efficient* IFV set with Algorithm 1 ([`efficient`]), train a
//!   small model on the efficient features, pick a cascade threshold
//!   on a validation set, and serve easy inputs with the small model.
//! - **Automatic top-K filter models** (§4.3): reuse the small-model
//!   construction as a filter that discards low-scoring inputs before
//!   the full model ranks the survivors.
//! - **Query-aware parallelization** (§4.4) and **feature-level
//!   caching** (§4.5) via the underlying executor.
//! - **End-to-end compilation** (§5): the optimized pipeline runs on
//!   the compiled engine; the original runs on the interpreted
//!   engine (`Pipeline::baseline`).
//!
//! Every optimization lowers into the [`plan`] module's
//! [`ServingPlan`] IR — an explicit stage sequence run by one
//! [`plan::PlanExecutor`] — so cascades, top-K filters, end-to-end
//! caching, and model selection *compose* instead of living in
//! separate wrapper structs. [`CascadePredictor`] and [`TopKFilter`]
//! are thin shims over lowered plans.
//!
//! See `willump-workloads` for ready-made benchmark pipelines and
//! `examples/` at the repository root for usage.

#![warn(missing_docs)]

pub mod cascade;
pub mod clock;
mod config;
pub mod efficient;
mod error;
mod layout;
mod optimize;
mod pipeline;
pub mod plan;
pub mod sketch;
pub mod stats;
pub mod topk;

pub use cascade::{CascadePredictor, ScoreCalibrator};
pub use clock::{Clock, ManualClock, SystemClock};
pub use config::{CachingConfig, Calibration, QueryMode, TopKConfig, WillumpConfig};
pub use error::WillumpError;
pub use optimize::{OptimizationReport, OptimizedPipeline, Willump};
pub use pipeline::{BaselinePipeline, Pipeline};
pub use plan::{
    FeatureSet, ModelSlot, PlanCounters, PlanCountersSnapshot, PlanExecutor, PlanOutcome,
    PlanRunReport, PlanStage, RowOutcome, ServingPlan, StageProfile, StageTrace,
};
pub use sketch::CountMinSketch;
pub use stats::{IfvStats, LatencyHistogram, RateEstimator};
pub use topk::TopKFilter;
