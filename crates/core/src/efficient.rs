//! Efficient-IFV selection: the paper's Algorithm 1 and the
//! alternative strategies of Table 8.
//!
//! Algorithm 1 greedily adds the most *cost-effective* IFVs (highest
//! importance/cost) to the efficient set, with two guards:
//!
//! - **γ stopping rule**: stop when the next candidate's
//!   cost-effectiveness falls below γ x the efficient set's average —
//!   low-cost-effectiveness IFVs "do not improve the accuracy of the
//!   approximate model enough to justify their cost",
//! - **cost cap**: skip candidates that would push the efficient set's
//!   cost above half (configurable) of the total pipeline cost.

use crate::stats::IfvStats;

/// How the efficient set is chosen (paper Table 8 compares these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionStrategy {
    /// Willump's Algorithm 1: greedy by cost-effectiveness with the γ
    /// stopping rule.
    CostEffective {
        /// The stopping ratio γ.
        gamma: f64,
        /// Whether the γ stopping rule is active (the §6.4 ablation
        /// disables it).
        use_gamma_rule: bool,
    },
    /// Greedy by descending prediction importance (Table 8
    /// "Important").
    MostImportant,
    /// Greedy by ascending computational cost (Table 8 "Cheap").
    Cheapest,
}

/// Select the efficient IFV set.
///
/// Returns generator indices in ascending order. The set may be empty
/// (cascades are then not worthwhile, e.g. a single-IFV pipeline whose
/// only IFV exceeds the cost cap).
pub fn select_efficient_ifvs(
    stats: &IfvStats,
    strategy: SelectionStrategy,
    max_cost_fraction: f64,
) -> Vec<usize> {
    let n = stats.len();
    if n == 0 {
        return Vec::new();
    }
    let total_cost = stats.total_cost();
    let budget = total_cost * max_cost_fraction;
    // Cost floor for cost-effectiveness: costs below 1 % of the
    // pipeline are measurement noise (a microseconds-cheap IFV would
    // otherwise get unbounded cost-effectiveness and the γ rule would
    // reject everything after it).
    let floor = (total_cost * 0.01).max(f64::MIN_POSITIVE);
    let ce = |imp: f64, cost: f64| imp / cost.max(floor);

    // Queue ordered by the strategy's priority.
    let mut queue: Vec<usize> = (0..n).collect();
    match strategy {
        SelectionStrategy::CostEffective { .. } => queue.sort_by(|&a, &b| {
            ce(stats.importance[b], stats.cost[b])
                .partial_cmp(&ce(stats.importance[a], stats.cost[a]))
                .expect("finite cost-effectiveness ordering")
                .then(a.cmp(&b))
        }),
        SelectionStrategy::MostImportant => queue.sort_by(|&a, &b| {
            stats.importance[b]
                .partial_cmp(&stats.importance[a])
                .expect("finite importances")
                .then(a.cmp(&b))
        }),
        SelectionStrategy::Cheapest => queue.sort_by(|&a, &b| {
            stats.cost[a]
                .partial_cmp(&stats.cost[b])
                .expect("finite costs")
                .then(a.cmp(&b))
        }),
    }

    let mut efficient: Vec<usize> = Vec::new();
    let mut e_importance = 0.0;
    let mut e_cost = 0.0;
    for f in queue {
        if let SelectionStrategy::CostEffective {
            gamma,
            use_gamma_rule: true,
        } = strategy
        {
            // Average cost-effectiveness of the efficient set (0 when
            // empty, per Algorithm 1 line 6), with the same cost floor.
            let avg_ce = if efficient.is_empty() {
                0.0
            } else {
                ce(e_importance, e_cost)
            };
            let f_ce = ce(stats.importance[f], stats.cost[f]);
            if f_ce < gamma * avg_ce {
                break;
            }
        }
        if e_cost + stats.cost[f] > budget {
            continue;
        }
        efficient.push(f);
        e_importance += stats.importance[f];
        e_cost += stats.cost[f];
    }
    efficient.sort_unstable();
    efficient
}

/// Enumerate every non-empty proper subset of `n` generators (for the
/// Table 8 oracle, which brute-forces the best-performing set). Only
/// sensible for small `n`.
///
/// # Panics
/// Panics if `n >= 20` (2^20 subsets is past any reasonable oracle).
pub fn enumerate_proper_subsets(n: usize) -> Vec<Vec<usize>> {
    assert!(n < 20, "oracle enumeration is exponential; n={n} too large");
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    for mask in 1..(1u32 << n) - 1 {
        let subset: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        out.push(subset);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(importance: Vec<f64>, cost: Vec<f64>) -> IfvStats {
        IfvStats {
            importance,
            cost,
            boundary_cost: 0.0,
        }
    }

    fn willump(gamma: f64) -> SelectionStrategy {
        SelectionStrategy::CostEffective {
            gamma,
            use_gamma_rule: true,
        }
    }

    #[test]
    fn picks_cost_effective_within_budget() {
        // IFV 0: cheap and important (CE 10); IFV 1: expensive and
        // important (CE 1); IFV 2: cheap, useless (CE 0.1).
        let s = stats(vec![1.0, 1.0, 0.01], vec![0.1, 1.0, 0.1]);
        let e = select_efficient_ifvs(&s, willump(0.25), 0.5);
        // Budget = 0.6. IFV0 added (cost 0.1). IFV1 would exceed
        // budget (1.1 > 0.6): skipped. IFV2 CE=0.1 < 0.25*10=2.5: stop.
        assert_eq!(e, vec![0]);
    }

    #[test]
    fn gamma_rule_stops_low_ce_ifvs() {
        let s = stats(vec![1.0, 0.001], vec![0.1, 0.1]);
        let with_rule = select_efficient_ifvs(&s, willump(0.25), 0.9);
        assert_eq!(with_rule, vec![0]);
        // Without the rule, the useless IFV is added too (budget
        // 0.18 allows… cost 0.2 > 0.18, so relax budget to 1.0).
        let without_rule = select_efficient_ifvs(
            &s,
            SelectionStrategy::CostEffective {
                gamma: 0.25,
                use_gamma_rule: false,
            },
            1.0,
        );
        assert_eq!(without_rule, vec![0, 1]);
    }

    #[test]
    fn cost_cap_skips_but_does_not_stop() {
        // IFV 0 is most cost-effective but huge; IFV 1 fits.
        let s = stats(vec![10.0, 1.0], vec![0.9, 0.1]);
        let e = select_efficient_ifvs(&s, willump(0.0), 0.5);
        assert_eq!(e, vec![1]);
    }

    #[test]
    fn most_important_ignores_cost() {
        let s = stats(vec![1.0, 2.0], vec![0.1, 0.4]);
        let e = select_efficient_ifvs(&s, SelectionStrategy::MostImportant, 0.9);
        // Budget 0.45: IFV1 (importance 2, cost 0.4) first; IFV0
        // would exceed (0.5 > 0.45).
        assert_eq!(e, vec![1]);
    }

    #[test]
    fn cheapest_ignores_importance() {
        let s = stats(vec![0.0, 1.0], vec![0.1, 0.4]);
        let e = select_efficient_ifvs(&s, SelectionStrategy::Cheapest, 0.5);
        // Budget 0.25: cheapest (useless) IFV0 only.
        assert_eq!(e, vec![0]);
    }

    #[test]
    fn empty_stats_yield_empty_set() {
        let s = stats(vec![], vec![]);
        assert!(select_efficient_ifvs(&s, willump(0.25), 0.5).is_empty());
    }

    #[test]
    fn single_ifv_cannot_fit_half_budget() {
        let s = stats(vec![1.0], vec![1.0]);
        assert!(select_efficient_ifvs(&s, willump(0.25), 0.5).is_empty());
    }

    #[test]
    fn result_is_sorted() {
        let s = stats(vec![1.0, 5.0, 2.0], vec![0.1, 0.1, 0.1]);
        let e = select_efficient_ifvs(&s, willump(0.0), 1.0);
        assert_eq!(e, vec![0, 1, 2]);
    }

    #[test]
    fn subsets_enumeration() {
        let subs = enumerate_proper_subsets(3);
        // 2^3 - 2 = 6 proper non-empty subsets.
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&vec![0]));
        assert!(subs.contains(&vec![0, 2]));
        assert!(!subs.contains(&vec![0, 1, 2]));
        assert!(enumerate_proper_subsets(0).is_empty());
    }
}
