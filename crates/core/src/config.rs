//! Optimizer configuration.

/// The query modality a pipeline is optimized for (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// High-throughput batch inference.
    Batch,
    /// Low-latency single-input inference (enables per-input
    /// parallelization of feature generators).
    ExampleAtATime,
    /// Top-K ranking queries (enables the automatic filter model).
    TopK {
        /// How many top-scoring inputs the application requests.
        k: usize,
    },
}

/// Top-K filter-model tuning (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKConfig {
    /// Subset size multiplier: the filter keeps `ck * K` candidates
    /// for the full model. Paper default: 10.
    pub ck: usize,
    /// Minimum subset size as a fraction of the input batch. Paper
    /// default: 5 %.
    pub min_subset_frac: f64,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            ck: 10,
            min_subset_frac: 0.05,
        }
    }
}

/// Feature-level caching configuration (paper §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachingConfig {
    /// Per-IFV LRU capacity (`None` = unbounded, the paper's Table 2/3
    /// setting).
    pub capacity: Option<usize>,
}

/// How small-model confidences are calibrated before being compared
/// against the cascade threshold.
///
/// The cascade threshold treats small-model scores as probabilities of
/// correctness (paper §4.2); when the small model is miscalibrated
/// (common for GBDTs and MLPs), an explicit calibration fit on the
/// validation set makes the threshold mean what it says. An extension
/// beyond the paper, which uses raw scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Calibration {
    /// Use raw small-model scores (the paper's behaviour).
    #[default]
    None,
    /// Platt scaling: logistic fit over validation scores.
    Platt,
    /// Isotonic regression (pool-adjacent-violators) over validation
    /// scores.
    Isotonic,
}

/// Configuration for [`crate::Willump::optimize`].
#[derive(Debug, Clone, PartialEq)]
pub struct WillumpConfig {
    /// Maximum allowed accuracy loss of cascades relative to the full
    /// model on the validation set. Paper evaluates 0.001 (0.1 %).
    pub accuracy_target: f64,
    /// Cost-effectiveness stopping ratio γ of Algorithm 1: stop adding
    /// IFVs when the next IFV's cost-effectiveness falls below
    /// `γ x` the average of the efficient set. The default is small
    /// because compiled-engine IFV costs span several orders of
    /// magnitude (string stats cost microseconds, TF-IDF milliseconds),
    /// so cost-effectiveness ratios are wide.
    pub gamma: f64,
    /// The efficient set may cost at most this fraction of total
    /// pipeline cost (Algorithm 1 line 11 uses 1/2).
    pub max_cost_fraction: f64,
    /// Enable automatic end-to-end cascades (classification only).
    pub cascades: bool,
    /// Deploy cascades only when the expected per-row saving (kept
    /// fraction x inefficient feature cost) exceeds the small model's
    /// own prediction cost. The paper observes cascades give "no
    /// speedup" on pipelines whose features are cheap local lookups
    /// (§6.3, Music/Tracking with local tables); the gate turns that
    /// observation into a deployment decision. Disable to force
    /// deployment (threshold sweeps).
    pub cascade_gate: bool,
    /// Query modality being optimized for.
    pub mode: QueryMode,
    /// Top-K filter tuning (used when `mode` is [`QueryMode::TopK`]).
    pub topk: TopKConfig,
    /// Attach per-IFV feature caches to the serving path.
    pub caching: Option<CachingConfig>,
    /// Calibrate small-model confidences before threshold comparison.
    pub calibration: Calibration,
    /// Threads for query-aware parallelization (1 = off).
    pub threads: usize,
    /// Seed for model training and validation shuffling.
    pub seed: u64,
}

impl Default for WillumpConfig {
    fn default() -> Self {
        WillumpConfig {
            accuracy_target: 0.001,
            gamma: 0.02,
            max_cost_fraction: 0.5,
            cascades: true,
            cascade_gate: true,
            mode: QueryMode::Batch,
            topk: TopKConfig::default(),
            caching: None,
            calibration: Calibration::None,
            threads: 1,
            seed: 42,
        }
    }
}

impl WillumpConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns [`crate::WillumpError::BadConfig`] for out-of-range
    /// values.
    pub fn validate(&self) -> Result<(), crate::WillumpError> {
        if !(0.0..=1.0).contains(&self.accuracy_target) {
            return Err(crate::WillumpError::BadConfig {
                reason: format!("accuracy_target {} not in [0, 1]", self.accuracy_target),
            });
        }
        if self.gamma < 0.0 {
            return Err(crate::WillumpError::BadConfig {
                reason: format!("gamma {} must be non-negative", self.gamma),
            });
        }
        if !(0.0..=1.0).contains(&self.max_cost_fraction) {
            return Err(crate::WillumpError::BadConfig {
                reason: format!("max_cost_fraction {} not in [0, 1]", self.max_cost_fraction),
            });
        }
        if self.threads == 0 {
            return Err(crate::WillumpError::BadConfig {
                reason: "threads must be at least 1".into(),
            });
        }
        if let QueryMode::TopK { k } = self.mode {
            if k == 0 {
                return Err(crate::WillumpError::BadConfig {
                    reason: "top-K requires k >= 1".into(),
                });
            }
        }
        if self.topk.ck == 0 {
            return Err(crate::WillumpError::BadConfig {
                reason: "topk.ck must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.topk.min_subset_frac) {
            return Err(crate::WillumpError::BadConfig {
                reason: format!(
                    "topk.min_subset_frac {} not in [0, 1]",
                    self.topk.min_subset_frac
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(WillumpConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let bad = WillumpConfig {
            accuracy_target: 2.0,
            ..WillumpConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WillumpConfig {
            gamma: -1.0,
            ..WillumpConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WillumpConfig {
            threads: 0,
            ..WillumpConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WillumpConfig {
            mode: QueryMode::TopK { k: 0 },
            ..WillumpConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WillumpConfig {
            topk: TopKConfig {
                ck: 0,
                ..TopKConfig::default()
            },
            ..WillumpConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn paper_defaults() {
        let c = WillumpConfig::default();
        assert_eq!(c.topk.ck, 10);
        assert!((c.topk.min_subset_frac - 0.05).abs() < 1e-12);
        assert!((c.max_cost_fraction - 0.5).abs() < 1e-12);
        assert!((c.accuracy_target - 0.001).abs() < 1e-12);
    }
}
