//! Query-aware parallelization (paper §4.4/§5.2): static LPT work
//! assignment plus the persistent low-latency worker pool.
//!
//! For example-at-a-time queries Willump runs each data input's
//! feature generators concurrently; "to guarantee low latency and
//! avoid scheduling overhead, Willump statically assigns feature
//! generators to threads using the feature generators' computational
//! costs, evenly distributing work between threads." That static
//! assignment is the classic LPT (longest processing time first)
//! heuristic implemented here. The [`WorkerPool`] provides the
//! low-latency threading substrate (the paper's Weld runtime threads):
//! workers are spawned once and fed through a channel, so dispatching
//! a generator costs a channel send rather than an OS thread spawn.

use std::fmt;
use std::sync::Arc;

/// A boxed unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads for per-input parallelism.
///
/// Spawning an OS thread costs tens of microseconds — more than most
/// feature generators — so per-query spawning inverts the gains of
/// parallelization. The pool spawns its workers once; each dispatch is
/// one channel send.
pub struct WorkerPool {
    sender: Option<crossbeam::channel::Sender<Job>>,
    n_threads: usize,
}

impl WorkerPool {
    /// Start a pool with `n_threads` workers.
    ///
    /// # Panics
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Arc<WorkerPool> {
        assert!(n_threads > 0, "need at least one thread");
        let (sender, receiver) = crossbeam::channel::unbounded::<Job>();
        for _ in 0..n_threads {
            let rx = receiver.clone();
            std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            });
        }
        Arc::new(WorkerPool {
            sender: Some(sender),
            n_threads,
        })
    }

    /// Number of workers.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Submit a job; it runs on some worker as soon as one is free.
    pub fn execute(&self, job: Job) {
        if let Some(s) = &self.sender {
            // Workers only stop when the pool is dropped, so send can
            // only fail during teardown, when losing the job is fine.
            let _ = s.send(job);
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("n_threads", &self.n_threads)
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        self.sender.take();
    }
}

/// Assign items with the given costs to `n_threads` groups using LPT:
/// sort by descending cost, always placing the next item on the
/// least-loaded thread. Returns per-thread item-index lists; threads
/// may be empty when there are fewer items than threads.
///
/// # Panics
/// Panics if `n_threads == 0`.
pub fn lpt_assign(costs: &[f64], n_threads: usize) -> Vec<Vec<usize>> {
    assert!(n_threads > 0, "need at least one thread");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .expect("finite costs")
            .then(a.cmp(&b))
    });
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_threads];
    let mut loads = vec![0.0f64; n_threads];
    for item in order {
        let (t, _) = loads
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite loads"))
            .expect("at least one thread");
        groups[t].push(item);
        loads[t] += costs[item];
    }
    groups
}

/// The makespan (maximum per-thread load) of an assignment.
pub fn makespan(costs: &[f64], groups: &[Vec<usize>]) -> f64 {
    groups
        .iter()
        .map(|g| g.iter().map(|&i| costs[i]).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Split `n` rows into up to `n_threads` contiguous chunks of nearly
/// equal size (batch-query parallelism: different inputs on different
/// threads). Returns `(start, end)` half-open ranges; never returns
/// empty chunks.
///
/// # Panics
/// Panics if `n_threads == 0`.
pub fn row_chunks(n: usize, n_threads: usize) -> Vec<(usize, usize)> {
    assert!(n_threads > 0, "need at least one thread");
    let k = n_threads.min(n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_jobs_and_shuts_down() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::new(3);
        assert_eq!(pool.n_threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::bounded(16);
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            }));
        }
        for _ in 0..16 {
            rx.recv_timeout(std::time::Duration::from_secs(5))
                .expect("job completes");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_dispatch_is_cheap() {
        // One dispatch round trip should cost microseconds, not the
        // tens of microseconds an OS thread spawn costs.
        let pool = WorkerPool::new(2);
        let (tx, rx) = crossbeam::channel::bounded(1);
        // Warm up.
        let t0 = {
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                let _ = tx.send(());
            }));
            rx.recv().expect("warmup");
            std::time::Instant::now()
        };
        let rounds = 200;
        for _ in 0..rounds {
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                let _ = tx.send(());
            }));
            rx.recv().expect("round trip");
        }
        let per_round = t0.elapsed().as_secs_f64() / f64::from(rounds);
        assert!(per_round < 500e-6, "dispatch {per_round}s");
    }

    #[test]
    fn lpt_covers_all_items_once() {
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let groups = lpt_assign(&costs, 2);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lpt_balances_equal_items() {
        let costs = [1.0; 8];
        let groups = lpt_assign(&costs, 4);
        for g in &groups {
            assert_eq!(g.len(), 2);
        }
        assert!((makespan(&costs, &groups) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_is_near_optimal_on_classic_case() {
        // LPT guarantees makespan <= 4/3 OPT; here OPT = 6.
        let costs = [4.0, 3.0, 3.0, 2.0, 2.0, 2.0];
        let groups = lpt_assign(&costs, 2);
        let ms = makespan(&costs, &groups);
        assert!(ms <= 8.0 + 1e-12, "makespan {ms}");
    }

    #[test]
    fn lpt_more_threads_than_items() {
        let costs = [2.0, 1.0];
        let groups = lpt_assign(&costs, 4);
        assert_eq!(groups.iter().filter(|g| !g.is_empty()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn lpt_zero_threads_panics() {
        let _ = lpt_assign(&[1.0], 0);
    }

    #[test]
    fn chunks_partition_rows() {
        let chunks = row_chunks(10, 3);
        assert_eq!(chunks, vec![(0, 4), (4, 7), (7, 10)]);
        let chunks = row_chunks(2, 8);
        assert_eq!(chunks, vec![(0, 1), (1, 2)]);
        assert!(row_chunks(0, 3).is_empty());
    }

    #[test]
    fn chunks_never_empty() {
        for n in 0..30 {
            for t in 1..6 {
                for (s, e) in row_chunks(n, t) {
                    assert!(e > s);
                }
            }
        }
    }
}
