//! Per-node and per-generator cost measurement (paper §4.2).
//!
//! "The computational cost of an IFV is an estimate of the cost of
//! computing its features. Willump estimates this cost by measuring
//! the runtime of the nodes in the IFV's feature generator during
//! model training." We run the compiled engine node-by-node over a
//! training sample, timing each node's wall-clock compute and adding
//! any *simulated* network wait charged to the store's virtual clock
//! (which a wall-clock timer cannot see).

use std::time::Instant;

use willump_data::Table;

use crate::exec::Executor;
use crate::graph::NodeId;
use crate::op::BatchOut;
use crate::{GraphError, Operator};

/// Measured costs, in seconds per input row.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Per-node cost (seconds/row), indexed by node id; sources and
    /// unvisited nodes are zero.
    pub per_node: Vec<f64>,
    /// Per-generator cost (seconds/row), indexed by generator.
    pub per_generator: Vec<f64>,
    /// Time spent at engine boundaries (input assembly and output
    /// materialization), seconds/row — the "driver overhead" of paper
    /// §6.4.
    pub boundary: f64,
}

impl CostReport {
    /// Total pipeline cost per row (generators + boundary).
    pub fn total(&self) -> f64 {
        self.per_generator.iter().sum::<f64>() + self.boundary
    }
}

/// Measure node and generator costs by executing the graph on a sample
/// table with per-node timing.
///
/// # Errors
/// Propagates execution failures; errors on an empty sample.
pub fn measure_costs(exec: &Executor, sample: &Table) -> Result<CostReport, GraphError> {
    if sample.n_rows() == 0 {
        return Err(GraphError::Data("cost sample is empty".into()));
    }
    let graph = exec.graph();
    let n_rows = sample.n_rows() as f64;
    let mut per_node = vec![0.0; graph.len()];
    let mut values: Vec<Option<BatchOut>> = vec![None; graph.len()];
    let mut boundary = 0.0;

    let full = exec.full_subset();
    let order: Vec<NodeId> = exec.needed_nodes(&full);
    for id in order {
        let node = graph.node(id);
        match &node.op {
            Operator::Source { column } => {
                // Reading inputs into the engine is boundary (driver)
                // work, not feature computation.
                let start = Instant::now();
                let col = sample
                    .column(column)
                    .ok_or_else(|| GraphError::MissingInput {
                        name: column.clone(),
                    })?
                    .clone();
                boundary += start.elapsed().as_secs_f64();
                values[id] = Some(BatchOut::Column(col));
            }
            op => {
                let inputs: Vec<&BatchOut> = node
                    .inputs
                    .iter()
                    .map(|&i| values[i].as_ref().expect("topo order"))
                    .collect();
                // Charge simulated network wait (virtual clock) plus
                // wall-clock compute.
                let clock_before = virtual_wait(op);
                let start = Instant::now();
                let out = op.eval_batch(&node.name, &inputs, sample.n_rows())?;
                let wall = start.elapsed().as_secs_f64();
                let clock_after = virtual_wait(op);
                let waited = (clock_after - clock_before) as f64 / 1e9;
                per_node[id] = (wall + waited) / n_rows;
                values[id] = Some(out);
            }
        }
    }

    let per_generator = exec
        .analysis()
        .generators
        .iter()
        .map(|g| g.nodes.iter().map(|&id| per_node[id]).sum())
        .collect();
    Ok(CostReport {
        per_node,
        per_generator,
        boundary: boundary / n_rows,
    })
}

/// Current total simulated wait charged by the node's store, if it has
/// one.
fn virtual_wait(op: &Operator) -> u64 {
    match op {
        Operator::StoreLookup(j) => j.store().stats().wait_nanos(),
        _ => 0,
    }
}

/// Measure per-generator costs on the *single-input serving path*:
/// each sampled row is served example-at-a-time, so lookup generators
/// pay one full round trip per row instead of the batch-amortized
/// fraction [`measure_costs`] sees.
///
/// Batch cost is the right input to Algorithm 1 when optimizing batch
/// queries; this is the right input when optimizing example-at-a-time
/// queries, where the serving economics (e.g. whether skipping a
/// remote lookup pays for a cascade) are per-row. Boundary cost is the
/// per-row input-assembly time. `per_node` detail is not available on
/// this path and reports zeros.
///
/// # Errors
/// Propagates execution failures; errors on an empty sample.
pub fn measure_costs_per_row(
    exec: &Executor,
    sample: &Table,
    max_rows: usize,
) -> Result<CostReport, GraphError> {
    let n = sample.n_rows().min(max_rows);
    if n == 0 {
        return Err(GraphError::Data("cost sample is empty".into()));
    }
    let graph = exec.graph();
    let analysis = exec.analysis();
    let n_gens = analysis.generators.len();
    let mut per_generator = vec![0.0; n_gens];
    let mut boundary = 0.0;

    // Sum of wait counters across a generator's stores (deduplicated
    // by stats address so shared stores are not double-counted).
    let generator_waits = |g: usize| -> u64 {
        let mut seen: Vec<*const willump_store::StoreStats> = Vec::new();
        let mut total = 0;
        for &id in &analysis.generators[g].nodes {
            if let Operator::StoreLookup(j) = &graph.node(id).op {
                let stats = j.store().stats() as *const willump_store::StoreStats;
                if !seen.contains(&stats) {
                    seen.push(stats);
                    total += j.store().stats().wait_nanos();
                }
            }
        }
        total
    };

    for r in 0..n {
        let start = Instant::now();
        let input = crate::row::InputRow::from_table(sample, r)?;
        boundary += start.elapsed().as_secs_f64();
        for (g, cost) in per_generator.iter_mut().enumerate() {
            let wait_before = generator_waits(g);
            let start = Instant::now();
            let _ = exec.compute_generator_row(&input, g)?;
            let wall = start.elapsed().as_secs_f64();
            let waited = (generator_waits(g) - wait_before) as f64 / 1e9;
            *cost += wall + waited;
        }
    }
    for c in &mut per_generator {
        *c /= n as f64;
    }
    Ok(CostReport {
        per_node: vec![0.0; graph.len()],
        per_generator,
        boundary: boundary / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::EngineMode;
    use crate::graph::GraphBuilder;
    use std::sync::Arc;
    use willump_data::Column;
    use willump_featurize::{StoreJoin, TfIdfVectorizer, VectorizerConfig};
    use willump_store::{FeatureTable, Key, LatencyModel, Store};

    fn cost_graph() -> (Arc<crate::TransformGraph>, Table, Store) {
        let mut users = FeatureTable::new(2);
        for i in 0..10 {
            users.insert(Key::Int(i), vec![i as f64, 1.0]).unwrap();
        }
        let store = Store::remote(
            [("users".to_string(), users)],
            LatencyModel::virtual_network(1_000_000, 1_000), // 1ms RTT
        );
        let join = StoreJoin::new(store.clone(), "users").unwrap();

        let mut tv = TfIdfVectorizer::new(VectorizerConfig {
            ngram_hi: 2,
            ..VectorizerConfig::default()
        })
        .unwrap();
        tv.fit(&["alpha beta gamma", "beta delta", "gamma gamma alpha"]);

        let mut b = GraphBuilder::new();
        let text = b.source("text");
        let uid = b.source("user_id");
        let tf = b
            .add("tfidf", Operator::TfIdf(Arc::new(tv)), [text])
            .unwrap();
        let lk = b
            .add("user_lookup", Operator::StoreLookup(Arc::new(join)), [uid])
            .unwrap();
        let g = Arc::new(b.finish_with_concat("f", [tf, lk]).unwrap());

        let mut t = Table::new();
        let texts: Vec<String> = (0..10).map(|i| format!("alpha beta row {i}")).collect();
        t.add_column("text", Column::from(texts)).unwrap();
        t.add_column("user_id", Column::from((0i64..10).collect::<Vec<_>>()))
            .unwrap();
        (g, t, store)
    }

    #[test]
    fn costs_cover_generators_and_include_latency() {
        let (g, t, _store) = cost_graph();
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let report = measure_costs(&exec, &t).unwrap();
        assert_eq!(report.per_generator.len(), 2);
        // The lookup generator pays 1ms RTT / 10 rows = 100us/row at
        // minimum; tf-idf costs far less virtual time.
        assert!(
            report.per_generator[1] >= 100e-6,
            "lookup cost {:?}",
            report.per_generator
        );
        assert!(report.total() >= report.per_generator.iter().sum::<f64>());
        assert!(report.boundary >= 0.0);
    }

    #[test]
    fn empty_sample_errors() {
        let (g, _, _) = cost_graph();
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let empty = Table::new();
        assert!(measure_costs(&exec, &empty).is_err());
        assert!(measure_costs_per_row(&exec, &empty, 10).is_err());
    }

    #[test]
    fn per_row_costs_exceed_batch_amortized_for_lookups() {
        let (g, t, _store) = cost_graph();
        let exec = Executor::new(g, EngineMode::Compiled).unwrap();
        let batch = measure_costs(&exec, &t).unwrap();
        let per_row = measure_costs_per_row(&exec, &t, 10).unwrap();
        // Batch: 1ms RTT amortized over 10 rows. Per-row: 1ms every row.
        assert!(
            per_row.per_generator[1] >= 1e-3,
            "{:?}",
            per_row.per_generator
        );
        assert!(
            per_row.per_generator[1] > 5.0 * batch.per_generator[1],
            "per-row {:?} vs batch {:?}",
            per_row.per_generator,
            batch.per_generator
        );
    }

    #[test]
    fn per_node_zero_for_sources() {
        let (g, t, _) = cost_graph();
        let exec = Executor::new(g.clone(), EngineMode::Compiled).unwrap();
        let report = measure_costs(&exec, &t).unwrap();
        for node in g.nodes() {
            if node.is_source() {
                assert_eq!(report.per_node[node.id], 0.0);
            }
        }
    }
}
