//! Single-input rows for example-at-a-time serving.

use std::collections::HashMap;

use willump_data::{Table, Value};

use crate::GraphError;

/// One raw pipeline input: named values for each source column.
///
/// ```
/// use willump_graph::InputRow;
/// use willump_data::Value;
///
/// let row = InputRow::new([("user_id", Value::Int(7))]);
/// assert_eq!(row.get("user_id"), Some(&Value::Int(7)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InputRow {
    values: HashMap<String, Value>,
}

impl InputRow {
    /// Build from `(name, value)` pairs.
    pub fn new<'a>(pairs: impl IntoIterator<Item = (&'a str, Value)>) -> InputRow {
        InputRow {
            values: pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// Insert or replace a value.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.values.insert(name.into(), value);
    }

    /// Look up a value by source name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Look up a value, erroring when missing.
    ///
    /// # Errors
    /// Returns [`GraphError::MissingInput`] when absent.
    pub fn try_get(&self, name: &str) -> Result<&Value, GraphError> {
        self.values
            .get(name)
            .ok_or_else(|| GraphError::MissingInput {
                name: name.to_string(),
            })
    }

    /// Extract row `r` of a table as an `InputRow`.
    ///
    /// # Errors
    /// Returns a data error if `r` is out of bounds.
    pub fn from_table(table: &Table, r: usize) -> Result<InputRow, GraphError> {
        let vals = table.row(r)?;
        Ok(InputRow {
            values: table
                .column_names()
                .into_iter()
                .map(str::to_string)
                .zip(vals)
                .collect(),
        })
    }
}

/// Sparse feature output for one data input: sorted `(column, value)`
/// entries plus the total feature width.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowFeatures {
    /// Sorted `(column, value)` pairs, zeros omitted.
    pub entries: Vec<(usize, f64)>,
    /// Total feature-vector width.
    pub width: usize,
}

impl RowFeatures {
    /// A new feature row.
    pub fn new(entries: Vec<(usize, f64)>, width: usize) -> RowFeatures {
        RowFeatures { entries, width }
    }

    /// Materialize as a dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.width];
        for (c, v) in &self.entries {
            out[*c] = *v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_data::Column;

    #[test]
    fn set_get_try_get() {
        let mut row = InputRow::new([("a", Value::Int(1))]);
        row.set("b", Value::from("x"));
        assert_eq!(row.get("b"), Some(&Value::from("x")));
        assert!(row.try_get("c").is_err());
    }

    #[test]
    fn from_table_extracts_named_values() {
        let mut t = Table::new();
        t.add_column("id", Column::from(vec![1i64, 2])).unwrap();
        t.add_column("s", Column::from(vec!["a", "b"])).unwrap();
        let row = InputRow::from_table(&t, 1).unwrap();
        assert_eq!(row.get("id"), Some(&Value::Int(2)));
        assert_eq!(row.get("s"), Some(&Value::from("b")));
        assert!(InputRow::from_table(&t, 9).is_err());
    }

    #[test]
    fn row_features_densify() {
        let rf = RowFeatures::new(vec![(1, 2.0), (3, -1.0)], 5);
        assert_eq!(rf.to_dense(), vec![0.0, 2.0, 0.0, -1.0, 0.0]);
    }
}
