//! The executor: compiled and interpreted engines over one graph.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use willump_data::{FeatureMatrix, Table, Value};

use crate::analysis::{identify_ifvs, subset_layout, IfvAnalysis};
use crate::cache::{source_key, FeatureCaches};
use crate::graph::{NodeId, TransformGraph};
use crate::interp;
use crate::op::{BatchOut, RowOut};
use crate::parallel::{lpt_assign, row_chunks};
use crate::row::{InputRow, RowFeatures};
use crate::{GraphError, Operator};

/// Which engine executes the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Row-at-a-time boxed-value execution: the Python-baseline
    /// stand-in (see DESIGN.md substitutions).
    Interpreted,
    /// Columnar, batched, fused execution: the Weld stand-in.
    Compiled,
}

/// Parallelization strategy (paper §4.4: query-aware parallelization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded.
    None,
    /// Batch queries: different data inputs on different threads.
    Batch(usize),
    /// Example-at-a-time queries: one input's feature generators run
    /// concurrently, statically LPT-assigned by cost.
    PerInput(usize),
}

/// Execution counters (cache effectiveness, work performed).
#[derive(Debug, Default)]
pub struct ExecStats {
    generators_computed: AtomicU64,
    cache_hits: AtomicU64,
}

impl ExecStats {
    /// Number of feature-generator evaluations actually performed.
    pub fn generators_computed(&self) -> u64 {
        self.generators_computed.load(Ordering::Relaxed)
    }

    /// Number of generator evaluations skipped via the feature cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Reset counters.
    pub fn reset(&self) {
        self.generators_computed.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
    }
}

/// Executes a [`TransformGraph`] under a chosen engine, optionally
/// restricted to a subset of feature generators (the mechanism behind
/// cascades), with optional feature-level caching and parallelism.
#[derive(Debug, Clone)]
pub struct Executor {
    graph: Arc<TransformGraph>,
    analysis: IfvAnalysis,
    mode: EngineMode,
    parallelism: Parallelism,
    caches: Option<FeatureCaches>,
    /// Per-generator source columns the IFV depends on (cache keys;
    /// precomputed because the serving path consults them per row).
    key_columns: Arc<Vec<Vec<String>>>,
    /// Per-generator per-row costs (seconds) for LPT assignment.
    generator_costs: Option<Arc<Vec<f64>>>,
    /// Persistent workers for per-input parallelism (created by
    /// `with_parallelism`).
    pool: Option<Arc<crate::parallel::WorkerPool>>,
    stats: Arc<ExecStats>,
}

impl Executor {
    /// Build an executor; runs IFV identification once.
    ///
    /// # Errors
    /// Propagates analysis failures.
    pub fn new(graph: Arc<TransformGraph>, mode: EngineMode) -> Result<Executor, GraphError> {
        let analysis = identify_ifvs(&graph)?;
        let key_columns = Arc::new(
            analysis
                .generators
                .iter()
                .map(|g| {
                    g.key_source_columns(&graph)
                        .into_iter()
                        .map(str::to_string)
                        .collect()
                })
                .collect(),
        );
        Ok(Executor {
            graph,
            analysis,
            mode,
            parallelism: Parallelism::None,
            caches: None,
            key_columns,
            generator_costs: None,
            pool: None,
            stats: Arc::new(ExecStats::default()),
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TransformGraph {
        &self.graph
    }

    /// The IFV analysis.
    pub fn analysis(&self) -> &IfvAnalysis {
        &self.analysis
    }

    /// The engine mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Execution counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Set the parallelization strategy (compiled engine only; the
    /// interpreted engine models a GIL-bound runtime and ignores it).
    /// `PerInput(t)` with `t > 1` starts a persistent worker pool so
    /// per-query dispatch costs a channel send, not a thread spawn.
    pub fn with_parallelism(mut self, p: Parallelism) -> Executor {
        self.parallelism = p;
        self.pool = match p {
            Parallelism::PerInput(t) if t > 1 => Some(crate::parallel::WorkerPool::new(t)),
            _ => None,
        };
        self
    }

    /// Attach per-IFV feature caches (paper §4.5). Effective on the
    /// compiled single-input path, where caching is defined.
    pub fn with_caches(mut self, caches: FeatureCaches) -> Executor {
        self.caches = Some(caches);
        self
    }

    /// Attached caches, if any.
    pub fn caches(&self) -> Option<&FeatureCaches> {
        self.caches.as_ref()
    }

    /// Provide measured per-generator costs for LPT thread assignment.
    pub fn with_generator_costs(mut self, costs: Vec<f64>) -> Executor {
        self.generator_costs = Some(Arc::new(costs));
        self
    }

    /// The canonical full subset (all generators, concatenation order).
    pub fn full_subset(&self) -> Vec<usize> {
        (0..self.analysis.generators.len()).collect()
    }

    /// The complement of a generator subset, in canonical order — the
    /// "inefficient" set a cascade escalates to. Out-of-range indices
    /// in `subset` are ignored (they never match a generator).
    pub fn complement_subset(&self, subset: &[usize]) -> Vec<usize> {
        (0..self.analysis.generators.len())
            .filter(|g| !subset.contains(g))
            .collect()
    }

    /// Total feature width of a generator subset (`None` = all).
    ///
    /// # Errors
    /// Returns [`GraphError::BadSubset`] for invalid indices.
    pub fn subset_width(&self, subset: Option<&[usize]>) -> Result<usize, GraphError> {
        let full = self.full_subset();
        let subset = subset.unwrap_or(&full);
        crate::analysis::subset_width(&self.graph, &self.analysis, subset)
    }

    /// Compute the (possibly subset) feature matrix for a batch of
    /// inputs.
    ///
    /// # Errors
    /// Returns [`GraphError`] on missing inputs, bad subsets, or
    /// operator failures.
    pub fn features_batch(
        &self,
        table: &Table,
        subset: Option<&[usize]>,
    ) -> Result<FeatureMatrix, GraphError> {
        let full = self.full_subset();
        let subset: &[usize] = subset.unwrap_or(&full);
        // Validate subset indices up front.
        subset_layout(&self.graph, &self.analysis, subset)?;
        match self.mode {
            EngineMode::Interpreted => interp::features_batch(self, table, subset),
            EngineMode::Compiled => match self.parallelism {
                Parallelism::Batch(threads) if threads > 1 && table.n_rows() > 1 => {
                    self.compiled_batch_parallel(table, subset, threads)
                }
                _ => self.compiled_batch(table, subset),
            },
        }
    }

    /// Compute the (possibly subset) feature row for one input.
    ///
    /// # Errors
    /// Returns [`GraphError`] on missing inputs, bad subsets, or
    /// operator failures.
    pub fn features_one(
        &self,
        input: &InputRow,
        subset: Option<&[usize]>,
    ) -> Result<RowFeatures, GraphError> {
        let full = self.full_subset();
        let subset: &[usize] = subset.unwrap_or(&full);
        let layout = subset_layout(&self.graph, &self.analysis, subset)?;
        match self.mode {
            EngineMode::Interpreted => interp::features_one(self, input, subset),
            EngineMode::Compiled => match self.parallelism {
                Parallelism::PerInput(threads) if threads > 1 && subset.len() > 1 => {
                    self.compiled_one_parallel(input, subset, &layout, threads)
                }
                _ => self.compiled_one(input, subset, &layout),
            },
        }
    }

    // ----- compiled batch path -------------------------------------

    /// Nodes needed to evaluate `subset` (preprocessing + generator
    /// nodes), in topological order.
    pub(crate) fn needed_nodes(&self, subset: &[usize]) -> Vec<NodeId> {
        let mut needed = vec![false; self.graph.len()];
        for &id in &self.analysis.preprocessing {
            needed[id] = true;
        }
        for &g in subset {
            for &id in &self.analysis.generators[g].nodes {
                needed[id] = true;
            }
        }
        self.graph
            .topo_order()
            .iter()
            .copied()
            .filter(|&id| needed[id])
            .collect()
    }

    fn compiled_batch(&self, table: &Table, subset: &[usize]) -> Result<FeatureMatrix, GraphError> {
        let order = self.needed_nodes(subset);
        let mut values: Vec<Option<BatchOut>> = vec![None; self.graph.len()];
        for id in order {
            let node = self.graph.node(id);
            let out = match &node.op {
                Operator::Source { column } => {
                    let col = table
                        .column(column)
                        .ok_or_else(|| GraphError::MissingInput {
                            name: column.clone(),
                        })?;
                    BatchOut::Column(col.clone())
                }
                op => {
                    let inputs: Vec<&BatchOut> = node
                        .inputs
                        .iter()
                        .map(|&i| values[i].as_ref().expect("topo order computed inputs"))
                        .collect();
                    op.eval_batch(&node.name, &inputs, table.n_rows())?
                }
            };
            values[id] = Some(out);
        }
        self.stats
            .generators_computed
            .fetch_add(subset.len() as u64, Ordering::Relaxed);
        let parts: Result<Vec<FeatureMatrix>, GraphError> = subset
            .iter()
            .map(|&g| {
                let root = self.analysis.generators[g].root;
                values[root]
                    .as_ref()
                    .expect("generator root computed")
                    .as_features(&self.graph.node(root).name)
                    .cloned()
            })
            .collect();
        Ok(FeatureMatrix::hstack(&parts?)?)
    }

    fn compiled_batch_parallel(
        &self,
        table: &Table,
        subset: &[usize],
        threads: usize,
    ) -> Result<FeatureMatrix, GraphError> {
        let chunks = row_chunks(table.n_rows(), threads);
        if chunks.len() <= 1 {
            return self.compiled_batch(table, subset);
        }
        let results: Vec<Result<FeatureMatrix, GraphError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(start, end)| {
                    let sub_rows: Vec<usize> = (start..end).collect();
                    let chunk_table = table.take_rows(&sub_rows);
                    scope.spawn(move |_| self.compiled_batch(&chunk_table, subset))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        })
        .expect("scope does not panic");
        let mats: Result<Vec<FeatureMatrix>, GraphError> = results.into_iter().collect();
        let mats = mats?;
        // Vertically stack chunk results back together.
        let dense_all = mats.iter().all(|m| matches!(m, FeatureMatrix::Dense(_)));
        if dense_all {
            let parts: Vec<willump_data::Matrix> = mats.iter().map(|m| m.to_dense()).collect();
            let refs: Vec<&willump_data::Matrix> = parts.iter().collect();
            Ok(FeatureMatrix::Dense(willump_data::Matrix::vstack(&refs)?))
        } else {
            // Sparse vstack via row re-push.
            let width = mats[0].n_cols();
            let mut b = willump_data::SparseRowBuilder::new(width);
            for m in &mats {
                for r in 0..m.n_rows() {
                    b.push_row(&m.row_entries(r));
                }
            }
            Ok(FeatureMatrix::Sparse(b.finish()))
        }
    }

    // ----- compiled single-input path -------------------------------

    /// Evaluate one generator for one input, going through the feature
    /// cache when attached.
    pub(crate) fn compute_generator_row(
        &self,
        input: &InputRow,
        g: usize,
    ) -> Result<Vec<(usize, f64)>, GraphError> {
        let generator = &self.analysis.generators[g];
        // Cache lookup keyed by the source values the generator's IFV
        // depends on — exclusive sources plus the preprocessing
        // sources that are its ancestors, and nothing else, so inputs
        // sharing an entity hit regardless of their other columns
        // (paper §4.5).
        let cache_key = if self.caches.is_some() {
            let mut vals: Vec<&Value> = Vec::new();
            for col in &self.key_columns[g] {
                vals.push(input.try_get(col)?);
            }
            Some(source_key(&vals))
        } else {
            None
        };
        if let (Some(caches), Some(key)) = (&self.caches, &cache_key) {
            if let Some(hit) = caches.get(g, key) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        let mut values: Vec<Option<RowOut>> = vec![None; self.graph.len()];
        // Preprocessing nodes evaluate first (rule 3).
        let mut order: Vec<NodeId> = Vec::new();
        for &id in self.graph.topo_order() {
            if self.analysis.preprocessing.contains(&id) || generator.nodes.contains(&id) {
                order.push(id);
            }
        }
        for id in order {
            let node = self.graph.node(id);
            let out = match &node.op {
                Operator::Source { column } => RowOut::Value(input.try_get(column)?.clone()),
                op => {
                    let inputs: Vec<&RowOut> = node
                        .inputs
                        .iter()
                        .map(|&i| values[i].as_ref().expect("topo order computed inputs"))
                        .collect();
                    op.eval_row(&node.name, &inputs)?
                }
            };
            values[id] = Some(out);
        }
        self.stats
            .generators_computed
            .fetch_add(1, Ordering::Relaxed);
        let root = generator.root;
        let feats = values[root]
            .take()
            .expect("root computed")
            .as_features(&self.graph.node(root).name)?
            .to_vec();
        if let (Some(caches), Some(key)) = (&self.caches, cache_key) {
            caches.put(g, key, feats.clone());
        }
        Ok(feats)
    }

    fn compiled_one(
        &self,
        input: &InputRow,
        subset: &[usize],
        layout: &[(usize, usize, usize)],
    ) -> Result<RowFeatures, GraphError> {
        let mut entries = Vec::new();
        let mut width = 0;
        for (&g, &(_, offset, w)) in subset.iter().zip(layout) {
            let feats = self.compute_generator_row(input, g)?;
            entries.extend(feats.into_iter().map(|(c, v)| (c + offset, v)));
            width = offset + w;
        }
        Ok(RowFeatures::new(entries, width))
    }

    fn compiled_one_parallel(
        &self,
        input: &InputRow,
        subset: &[usize],
        layout: &[(usize, usize, usize)],
        threads: usize,
    ) -> Result<RowFeatures, GraphError> {
        // LPT-assign generators to threads by measured cost (uniform
        // when no costs were provided).
        let costs: Vec<f64> = match &self.generator_costs {
            Some(c) => subset
                .iter()
                .map(|&g| c.get(g).copied().unwrap_or(1.0))
                .collect(),
            None => vec![1.0; subset.len()],
        };
        let groups = lpt_assign(&costs, threads.min(subset.len()));
        let mut groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
        let Some(pool) = &self.pool else {
            // No pool (e.g. threads collapsed to 1): run sequentially.
            return self.compiled_one(input, subset, layout);
        };

        // Dispatch all but the heaviest group to pool workers; the
        // main thread computes the heaviest group itself and then
        // combines (paper §5.2: workers compute feature generators
        // concurrently, the main thread combines). LPT puts the
        // heaviest items first, so group 0 is the largest load.
        type GroupResult = Result<Vec<(usize, Vec<(usize, f64)>)>, GraphError>;
        let main_group = groups.remove(0);
        let (tx, rx) = crossbeam::channel::bounded::<GroupResult>(groups.len().max(1));
        for grp in &groups {
            // Jobs must be 'static: clone the (cheap, Arc-backed)
            // executor and the input row into the closure.
            let exec = self.clone();
            let input = input.clone();
            let grp = grp.clone();
            let subset: Vec<usize> = subset.to_vec();
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                let compute = || -> GroupResult {
                    let mut out = Vec::with_capacity(grp.len());
                    for &pos in &grp {
                        out.push((pos, exec.compute_generator_row(&input, subset[pos])?));
                    }
                    Ok(out)
                };
                let _ = tx.send(compute());
            }));
        }
        let mut per_position: Vec<Option<Vec<(usize, f64)>>> = vec![None; subset.len()];
        for &pos in &main_group {
            per_position[pos] = Some(self.compute_generator_row(input, subset[pos])?);
        }
        for _ in 0..groups.len() {
            let r = rx
                .recv()
                .map_err(|_| GraphError::Data("worker pool disconnected mid-query".into()))?;
            for (pos, feats) in r? {
                per_position[pos] = Some(feats);
            }
        }
        let mut entries = Vec::new();
        let mut width = 0;
        for (pos, &(_, offset, w)) in layout.iter().enumerate() {
            let feats = per_position[pos].take().expect("all positions computed");
            entries.extend(feats.into_iter().map(|(c, v)| (c + offset, v)));
            width = offset + w;
        }
        entries.sort_unstable_by_key(|(c, _)| *c);
        Ok(RowFeatures::new(entries, width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use willump_data::Column;

    fn sample_graph() -> Arc<TransformGraph> {
        let mut b = GraphBuilder::new();
        let title = b.source("title");
        let body = b.source("body");
        let ts = b
            .add("title_stats", Operator::StringStats, [title])
            .unwrap();
        let bs = b.add("body_stats", Operator::StringStats, [body]).unwrap();
        Arc::new(b.finish_with_concat("features", [ts, bs]).unwrap())
    }

    fn sample_table() -> Table {
        let mut t = Table::new();
        t.add_column("title", Column::from(vec!["Nice Hat!", "meh"]))
            .unwrap();
        t.add_column("body", Column::from(vec!["long body text here", "x"]))
            .unwrap();
        t
    }

    #[test]
    fn compiled_batch_full_width() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        let f = exec.features_batch(&sample_table(), None).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.n_cols(), 16);
        assert_eq!(exec.stats().generators_computed(), 2);
    }

    #[test]
    fn subset_narrows_features() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        let f = exec.features_batch(&sample_table(), Some(&[1])).unwrap();
        assert_eq!(f.n_cols(), 8);
        // Subset [1] must equal columns 8..16 of the full features.
        let full = exec.features_batch(&sample_table(), None).unwrap();
        for r in 0..2 {
            let sub: Vec<(usize, f64)> = f.row_entries(r);
            let full_right: Vec<(usize, f64)> = full
                .row_entries(r)
                .into_iter()
                .filter(|(c, _)| *c >= 8)
                .map(|(c, v)| (c - 8, v))
                .collect();
            assert_eq!(sub, full_right);
        }
    }

    #[test]
    fn complement_subset_covers_rest() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        assert_eq!(exec.complement_subset(&[0]), vec![1]);
        assert_eq!(exec.complement_subset(&[1]), vec![0]);
        assert_eq!(exec.complement_subset(&[]), vec![0, 1]);
        assert!(exec.complement_subset(&[0, 1]).is_empty());
    }

    #[test]
    fn bad_subset_rejected() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        assert!(matches!(
            exec.features_batch(&sample_table(), Some(&[9])),
            Err(GraphError::BadSubset { .. })
        ));
    }

    #[test]
    fn row_matches_batch() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        let t = sample_table();
        let batch = exec.features_batch(&t, None).unwrap();
        for r in 0..t.n_rows() {
            let input = InputRow::from_table(&t, r).unwrap();
            let row = exec.features_one(&input, None).unwrap();
            assert_eq!(row.width, 16);
            assert_eq!(row.entries, batch.row_entries(r));
        }
    }

    #[test]
    fn interp_and_compiled_agree() {
        let g = sample_graph();
        let t = sample_table();
        let compiled = Executor::new(g.clone(), EngineMode::Compiled).unwrap();
        let interp = Executor::new(g, EngineMode::Interpreted).unwrap();
        let a = compiled.features_batch(&t, None).unwrap();
        let b = interp.features_batch(&t, None).unwrap();
        for r in 0..t.n_rows() {
            let ae = a.row_entries(r);
            let be = b.row_entries(r);
            assert_eq!(ae.len(), be.len());
            for ((c1, v1), (c2, v2)) in ae.iter().zip(&be) {
                assert_eq!(c1, c2);
                assert!((v1 - v2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn missing_input_column_errors() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        let mut t = Table::new();
        t.add_column("title", Column::from(vec!["x"])).unwrap();
        assert!(matches!(
            exec.features_batch(&t, None),
            Err(GraphError::MissingInput { .. })
        ));
        let input = InputRow::new([("title", Value::from("x"))]);
        assert!(exec.features_one(&input, None).is_err());
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        let par = exec.clone().with_parallelism(Parallelism::Batch(3));
        let t = {
            let mut t = Table::new();
            let titles: Vec<String> = (0..17).map(|i| format!("title {i}!")).collect();
            let bodies: Vec<String> = (0..17).map(|i| format!("body text {i}")).collect();
            t.add_column("title", Column::from(titles)).unwrap();
            t.add_column("body", Column::from(bodies)).unwrap();
            t
        };
        let serial = exec.features_batch(&t, None).unwrap();
        let parallel = par.features_batch(&t, None).unwrap();
        assert_eq!(serial.n_rows(), parallel.n_rows());
        for r in 0..t.n_rows() {
            assert_eq!(serial.row_entries(r), parallel.row_entries(r));
        }
    }

    #[test]
    fn parallel_per_input_matches_serial() {
        let exec = Executor::new(sample_graph(), EngineMode::Compiled).unwrap();
        let par = exec
            .clone()
            .with_parallelism(Parallelism::PerInput(2))
            .with_generator_costs(vec![2.0, 1.0]);
        let t = sample_table();
        for r in 0..t.n_rows() {
            let input = InputRow::from_table(&t, r).unwrap();
            let a = exec.features_one(&input, None).unwrap();
            let b = par.features_one(&input, None).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn feature_cache_skips_recomputation() {
        let caches = FeatureCaches::new(2, None);
        let exec = Executor::new(sample_graph(), EngineMode::Compiled)
            .unwrap()
            .with_caches(caches.clone());
        let input = InputRow::new([
            ("title", Value::from("Nice Hat!")),
            ("body", Value::from("some body")),
        ]);
        let first = exec.features_one(&input, None).unwrap();
        let computed_after_first = exec.stats().generators_computed();
        let second = exec.features_one(&input, None).unwrap();
        assert_eq!(first, second);
        assert_eq!(exec.stats().generators_computed(), computed_after_first);
        assert_eq!(exec.stats().cache_hits(), 2);
        assert_eq!(caches.hits(), 2);
    }

    #[test]
    fn cache_distinguishes_inputs() {
        let caches = FeatureCaches::new(2, None);
        let exec = Executor::new(sample_graph(), EngineMode::Compiled)
            .unwrap()
            .with_caches(caches);
        let a = InputRow::new([("title", Value::from("a")), ("body", Value::from("b"))]);
        let b = InputRow::new([("title", Value::from("c")), ("body", Value::from("b"))]);
        exec.features_one(&a, None).unwrap();
        exec.features_one(&b, None).unwrap();
        // Title generator missed for b (different title); body hit.
        assert_eq!(exec.stats().cache_hits(), 1);
    }
}
