//! Operators: the node kinds of a transformation graph.

use std::sync::Arc;

use willump_data::{Column, FeatureMatrix, Matrix, SparseRowBuilder, Value};
use willump_featurize::stringstats::{string_stats, string_stats_batch};
use willump_featurize::{
    CountVectorizer, OneHotEncoder, OrdinalEncoder, StandardScaler, StoreJoin, TfIdfVectorizer,
};
use willump_store::Key;

use crate::GraphError;

/// Batch output of a node (columnar).
#[derive(Debug, Clone)]
pub enum BatchOut {
    /// A raw column (sources and column-to-column transforms).
    Column(Column),
    /// Computed features.
    Features(FeatureMatrix),
}

impl BatchOut {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        match self {
            BatchOut::Column(c) => c.len(),
            BatchOut::Features(f) => f.n_rows(),
        }
    }

    /// Borrow as features.
    ///
    /// # Errors
    /// Returns [`GraphError::BadInput`] if this is a raw column.
    pub fn as_features(&self, node: &str) -> Result<&FeatureMatrix, GraphError> {
        match self {
            BatchOut::Features(f) => Ok(f),
            BatchOut::Column(_) => Err(GraphError::BadInput {
                node: node.to_string(),
                reason: "expected features, found raw column".into(),
            }),
        }
    }

    /// Borrow as a raw column.
    ///
    /// # Errors
    /// Returns [`GraphError::BadInput`] if this is a feature matrix.
    pub fn as_column(&self, node: &str) -> Result<&Column, GraphError> {
        match self {
            BatchOut::Column(c) => Ok(c),
            BatchOut::Features(_) => Err(GraphError::BadInput {
                node: node.to_string(),
                reason: "expected raw column, found features".into(),
            }),
        }
    }
}

/// Single-row output of a node.
#[derive(Debug, Clone)]
pub enum RowOut {
    /// A raw value.
    Value(Value),
    /// Sparse feature entries (sorted by column).
    Features(Vec<(usize, f64)>),
}

impl RowOut {
    /// Borrow as feature entries.
    ///
    /// # Errors
    /// Returns [`GraphError::BadInput`] if this is a raw value.
    pub fn as_features(&self, node: &str) -> Result<&[(usize, f64)], GraphError> {
        match self {
            RowOut::Features(f) => Ok(f),
            RowOut::Value(_) => Err(GraphError::BadInput {
                node: node.to_string(),
                reason: "expected features, found raw value".into(),
            }),
        }
    }

    /// Borrow as a raw value.
    ///
    /// # Errors
    /// Returns [`GraphError::BadInput`] if this holds features.
    pub fn as_value(&self, node: &str) -> Result<&Value, GraphError> {
        match self {
            RowOut::Value(v) => Ok(v),
            RowOut::Features(_) => Err(GraphError::BadInput {
                node: node.to_string(),
                reason: "expected raw value, found features".into(),
            }),
        }
    }
}

fn value_to_key(v: &Value) -> Result<Key, GraphError> {
    match v {
        Value::Int(i) => Ok(Key::Int(*i)),
        Value::Str(s) => Ok(Key::Str(Arc::clone(s))),
        other => Err(GraphError::Feature(format!(
            "value `{other}` cannot be used as a lookup key"
        ))),
    }
}

fn column_to_keys(c: &Column, node: &str) -> Result<Vec<Key>, GraphError> {
    match c {
        Column::Int(v) => Ok(v.iter().map(|i| Key::Int(*i)).collect()),
        Column::Str(v) => Ok(v.iter().map(|s| Key::Str(Arc::clone(s))).collect()),
        _ => Err(GraphError::BadInput {
            node: node.to_string(),
            reason: "lookup keys must be int or string columns".into(),
        }),
    }
}

/// A transformation operator.
///
/// Each operator supports a columnar batch path ([`Operator::eval_batch`],
/// used by the compiled engine) and a single-row path
/// ([`Operator::eval_row`], used for example-at-a-time serving). The
/// interpreted engine reuses the row path but adds the boxing and
/// materialization overheads of a dynamic language (see
/// `crate::interp`).
#[derive(Debug, Clone)]
pub enum Operator {
    /// A raw input: reads the named column from the pipeline input.
    Source {
        /// Input column name.
        column: String,
    },
    /// Pass a numeric column through as a 1-wide feature block.
    NumericColumn,
    /// The eight cheap string statistics.
    StringStats,
    /// TF-IDF featurization (fitted).
    TfIdf(Arc<TfIdfVectorizer>),
    /// Count (bag-of-n-grams) featurization (fitted).
    CountVec(Arc<CountVectorizer>),
    /// One-hot encoding of a string column (fitted).
    OneHot(Arc<OneHotEncoder>),
    /// Ordinal encoding of a string column (fitted).
    Ordinal(Arc<OrdinalEncoder>),
    /// Standardize a dense feature block (fitted).
    Scale(Arc<StandardScaler>),
    /// Keyed lookup join against a feature store table.
    StoreLookup(Arc<StoreJoin>),
    /// Concatenate feature blocks (the commutative node of §5.1).
    Concat {
        /// Widths of each input block, in input order.
        widths: Vec<usize>,
    },
}

impl Operator {
    /// Short kind name for debugging/printing.
    pub fn kind(&self) -> &'static str {
        match self {
            Operator::Source { .. } => "source",
            Operator::NumericColumn => "numeric",
            Operator::StringStats => "string_stats",
            Operator::TfIdf(_) => "tfidf",
            Operator::CountVec(_) => "count_vec",
            Operator::OneHot(_) => "one_hot",
            Operator::Ordinal(_) => "ordinal",
            Operator::Scale(_) => "scale",
            Operator::StoreLookup(_) => "store_lookup",
            Operator::Concat { .. } => "concat",
        }
    }

    /// Output feature width (0 for raw sources).
    pub fn out_dim(&self) -> usize {
        match self {
            Operator::Source { .. } => 0,
            Operator::NumericColumn => 1,
            Operator::StringStats => willump_featurize::STRING_STAT_NAMES.len(),
            Operator::TfIdf(v) => v.n_features(),
            Operator::CountVec(v) => v.n_features(),
            Operator::OneHot(e) => e.n_features(),
            Operator::Ordinal(_) => 1,
            Operator::Scale(s) => s.means().len(),
            Operator::StoreLookup(j) => j.dim(),
            Operator::Concat { widths } => widths.iter().sum(),
        }
    }

    /// Whether this node queries a (possibly remote) feature store.
    pub fn is_lookup(&self) -> bool {
        matches!(self, Operator::StoreLookup(_))
    }

    /// Whether this node commutes with feature concatenation
    /// (paper §5.1; concatenation itself is the canonical case).
    pub fn is_commutative(&self) -> bool {
        matches!(self, Operator::Concat { .. })
    }

    /// Whether the compiled engine can compile this node (everything
    /// in the built-in set is compilable; the paper's non-compilable
    /// Python nodes are modeled in the interpreted engine).
    pub fn is_compilable(&self) -> bool {
        true
    }

    /// Evaluate the batch (columnar) path.
    ///
    /// # Errors
    /// Returns [`GraphError`] on arity/type mismatches or featurizer
    /// failures.
    pub fn eval_batch(
        &self,
        name: &str,
        inputs: &[&BatchOut],
        input_table_len: usize,
    ) -> Result<BatchOut, GraphError> {
        let arity = |n: usize| -> Result<(), GraphError> {
            if inputs.len() != n {
                return Err(GraphError::BadInput {
                    node: name.to_string(),
                    reason: format!("expected {n} inputs, got {}", inputs.len()),
                });
            }
            Ok(())
        };
        match self {
            Operator::Source { .. } => Err(GraphError::BadInput {
                node: name.to_string(),
                reason: "sources are evaluated by the engine, not eval_batch".into(),
            }),
            Operator::NumericColumn => {
                arity(1)?;
                let col = inputs[0].as_column(name)?;
                let vals = col.to_f64_vec().map_err(|e| GraphError::BadInput {
                    node: name.to_string(),
                    reason: e.to_string(),
                })?;
                Ok(BatchOut::Features(Matrix::column_vector(vals).into()))
            }
            Operator::StringStats => {
                arity(1)?;
                let col = inputs[0].as_column(name)?;
                let strs = col.as_str_slice().ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "string stats need a string column".into(),
                })?;
                Ok(BatchOut::Features(string_stats_batch(strs).into()))
            }
            Operator::TfIdf(v) => {
                arity(1)?;
                let col = inputs[0].as_column(name)?;
                let strs = col.as_str_slice().ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "tf-idf needs a string column".into(),
                })?;
                Ok(BatchOut::Features(v.transform(strs)?.into()))
            }
            Operator::CountVec(v) => {
                arity(1)?;
                let col = inputs[0].as_column(name)?;
                let strs = col.as_str_slice().ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "count vectorizer needs a string column".into(),
                })?;
                Ok(BatchOut::Features(v.transform(strs)?.into()))
            }
            Operator::OneHot(e) => {
                arity(1)?;
                let col = inputs[0].as_column(name)?;
                let strs = col.as_str_slice().ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "one-hot needs a string column".into(),
                })?;
                Ok(BatchOut::Features(e.transform(strs)?.into()))
            }
            Operator::Ordinal(e) => {
                arity(1)?;
                let col = inputs[0].as_column(name)?;
                let strs = col.as_str_slice().ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "ordinal encoding needs a string column".into(),
                })?;
                Ok(BatchOut::Features(e.transform(strs)?.into()))
            }
            Operator::Scale(s) => {
                arity(1)?;
                let f = inputs[0].as_features(name)?;
                Ok(BatchOut::Features(s.transform(&f.to_dense())?.into()))
            }
            Operator::StoreLookup(j) => {
                arity(1)?;
                let col = inputs[0].as_column(name)?;
                let keys = column_to_keys(col, name)?;
                Ok(BatchOut::Features(j.join_batch(&keys)?.into()))
            }
            Operator::Concat { widths } => {
                if inputs.is_empty() {
                    return Err(GraphError::BadInput {
                        node: name.to_string(),
                        reason: "concat needs at least one input".into(),
                    });
                }
                if inputs.len() != widths.len() {
                    return Err(GraphError::BadInput {
                        node: name.to_string(),
                        reason: format!(
                            "concat fitted for {} inputs, got {}",
                            widths.len(),
                            inputs.len()
                        ),
                    });
                }
                let mats: Result<Vec<FeatureMatrix>, GraphError> = inputs
                    .iter()
                    .map(|i| i.as_features(name).cloned())
                    .collect();
                let _ = input_table_len;
                Ok(BatchOut::Features(FeatureMatrix::hstack(&mats?)?))
            }
        }
    }

    /// Evaluate the single-row path.
    ///
    /// # Errors
    /// Returns [`GraphError`] on arity/type mismatches or featurizer
    /// failures.
    pub fn eval_row(&self, name: &str, inputs: &[&RowOut]) -> Result<RowOut, GraphError> {
        let arity = |n: usize| -> Result<(), GraphError> {
            if inputs.len() != n {
                return Err(GraphError::BadInput {
                    node: name.to_string(),
                    reason: format!("expected {n} inputs, got {}", inputs.len()),
                });
            }
            Ok(())
        };
        let str_input = |i: usize| -> Result<&str, GraphError> {
            inputs[i]
                .as_value(name)?
                .as_str()
                .ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "expected a string value".into(),
                })
        };
        match self {
            Operator::Source { .. } => Err(GraphError::BadInput {
                node: name.to_string(),
                reason: "sources are evaluated by the engine, not eval_row".into(),
            }),
            Operator::NumericColumn => {
                arity(1)?;
                let v = inputs[0]
                    .as_value(name)?
                    .as_f64()
                    .ok_or_else(|| GraphError::BadInput {
                        node: name.to_string(),
                        reason: "expected a numeric value".into(),
                    })?;
                Ok(RowOut::Features(if v == 0.0 {
                    vec![]
                } else {
                    vec![(0, v)]
                }))
            }
            Operator::StringStats => {
                arity(1)?;
                let stats = string_stats(str_input(0)?);
                Ok(RowOut::Features(
                    stats
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| **v != 0.0)
                        .map(|(c, v)| (c, *v))
                        .collect(),
                ))
            }
            Operator::TfIdf(v) => {
                arity(1)?;
                Ok(RowOut::Features(v.transform_one(str_input(0)?)?))
            }
            Operator::CountVec(v) => {
                arity(1)?;
                Ok(RowOut::Features(v.transform_one(str_input(0)?)?))
            }
            Operator::OneHot(e) => {
                arity(1)?;
                Ok(RowOut::Features(e.transform_one(str_input(0)?)?))
            }
            Operator::Ordinal(e) => {
                arity(1)?;
                let code = e.transform_one(str_input(0)?)?;
                Ok(RowOut::Features(if code == 0.0 {
                    vec![]
                } else {
                    vec![(0, code)]
                }))
            }
            Operator::Scale(s) => {
                arity(1)?;
                let entries = inputs[0].as_features(name)?;
                let mut dense = vec![0.0; s.means().len()];
                for (c, v) in entries {
                    dense[*c] = *v;
                }
                s.transform_one(&mut dense)?;
                Ok(RowOut::Features(
                    dense
                        .into_iter()
                        .enumerate()
                        .filter(|(_, v)| *v != 0.0)
                        .collect(),
                ))
            }
            Operator::StoreLookup(j) => {
                arity(1)?;
                let key = value_to_key(inputs[0].as_value(name)?)?;
                let row = j.join_one(&key)?;
                Ok(RowOut::Features(
                    row.into_iter()
                        .enumerate()
                        .filter(|(_, v)| *v != 0.0)
                        .collect(),
                ))
            }
            Operator::Concat { widths } => {
                if inputs.len() != widths.len() {
                    return Err(GraphError::BadInput {
                        node: name.to_string(),
                        reason: format!(
                            "concat fitted for {} inputs, got {}",
                            widths.len(),
                            inputs.len()
                        ),
                    });
                }
                let mut out = Vec::new();
                let mut offset = 0;
                for (inp, w) in inputs.iter().zip(widths) {
                    for (c, v) in inp.as_features(name)? {
                        out.push((c + offset, *v));
                    }
                    offset += w;
                }
                Ok(RowOut::Features(out))
            }
        }
    }

    /// Build a sparse matrix from per-row feature entries (used by the
    /// interpreted engine's final materialization).
    pub fn rows_to_sparse(rows: &[Vec<(usize, f64)>], width: usize) -> FeatureMatrix {
        let mut b = SparseRowBuilder::new(width);
        for r in rows {
            b.push_row(r);
        }
        FeatureMatrix::Sparse(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willump_featurize::VectorizerConfig;
    use willump_store::{FeatureTable, LatencyModel, Store};

    fn tfidf() -> Arc<TfIdfVectorizer> {
        let mut v = TfIdfVectorizer::new(VectorizerConfig::default()).unwrap();
        v.fit(&["hello world", "goodbye world"]);
        Arc::new(v)
    }

    #[test]
    fn out_dims() {
        assert_eq!(Operator::NumericColumn.out_dim(), 1);
        assert_eq!(Operator::StringStats.out_dim(), 8);
        assert_eq!(Operator::TfIdf(tfidf()).out_dim(), 3);
        assert_eq!(
            Operator::Concat {
                widths: vec![2, 3, 4]
            }
            .out_dim(),
            9
        );
    }

    #[test]
    fn batch_and_row_agree_for_tfidf() {
        let op = Operator::TfIdf(tfidf());
        let col = Column::from(vec!["hello world", "nothing here"]);
        let batch = op
            .eval_batch("t", &[&BatchOut::Column(col.clone())], 2)
            .unwrap();
        let bf = batch.as_features("t").unwrap();
        for r in 0..2 {
            let row_out = op
                .eval_row("t", &[&RowOut::Value(col.value(r).unwrap())])
                .unwrap();
            assert_eq!(row_out.as_features("t").unwrap(), bf.row_entries(r));
        }
    }

    #[test]
    fn concat_offsets_row_path() {
        let op = Operator::Concat { widths: vec![2, 3] };
        let a = RowOut::Features(vec![(1, 1.0)]);
        let b = RowOut::Features(vec![(0, 2.0), (2, 3.0)]);
        let out = op.eval_row("c", &[&a, &b]).unwrap();
        assert_eq!(
            out.as_features("c").unwrap(),
            &[(1, 1.0), (2, 2.0), (4, 3.0)]
        );
    }

    #[test]
    fn concat_arity_mismatch() {
        let op = Operator::Concat { widths: vec![2] };
        let a = RowOut::Features(vec![]);
        let b = RowOut::Features(vec![]);
        assert!(op.eval_row("c", &[&a, &b]).is_err());
    }

    #[test]
    fn store_lookup_both_paths() {
        let mut t = FeatureTable::new(2);
        t.insert(Key::Int(5), vec![1.5, 0.0]).unwrap();
        let store = Store::remote(
            [("u".to_string(), t)],
            LatencyModel::virtual_network(100, 1),
        );
        let join = StoreJoin::new(store.clone(), "u").unwrap();
        let op = Operator::StoreLookup(Arc::new(join));
        let batch = op
            .eval_batch("l", &[&BatchOut::Column(Column::from(vec![5i64]))], 1)
            .unwrap();
        assert_eq!(
            batch.as_features("l").unwrap().row_entries(0),
            vec![(0, 1.5)]
        );
        let row = op.eval_row("l", &[&RowOut::Value(Value::Int(5))]).unwrap();
        assert_eq!(row.as_features("l").unwrap(), &[(0, 1.5)]);
        assert_eq!(store.stats().round_trips(), 2);
    }

    #[test]
    fn numeric_column_paths() {
        let op = Operator::NumericColumn;
        let batch = op
            .eval_batch(
                "n",
                &[&BatchOut::Column(Column::from(vec![1.0f64, 0.0]))],
                2,
            )
            .unwrap();
        assert_eq!(batch.as_features("n").unwrap().n_cols(), 1);
        let row = op
            .eval_row("n", &[&RowOut::Value(Value::Float(0.0))])
            .unwrap();
        assert_eq!(row.as_features("n").unwrap(), &[]);
    }

    #[test]
    fn type_errors_are_reported() {
        let op = Operator::StringStats;
        let bad = BatchOut::Column(Column::from(vec![1i64]));
        assert!(matches!(
            op.eval_batch("s", &[&bad], 1),
            Err(GraphError::BadInput { .. })
        ));
        let bad_row = RowOut::Value(Value::Int(1));
        assert!(op.eval_row("s", &[&bad_row]).is_err());
    }

    #[test]
    fn kind_strings() {
        assert_eq!(Operator::StringStats.kind(), "string_stats");
        assert_eq!(Operator::Source { column: "x".into() }.kind(), "source");
    }
}
