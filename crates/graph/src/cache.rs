//! Per-IFV feature caches (paper §4.5, "Feature-Level Caching").
//!
//! "Willump allocates a fixed-size LRU cache for each IFV whose keys
//! are sources of the IFV's feature generator and whose values are the
//! features in the IFV." On the single-input serving path the compiled
//! engine consults the generator's cache before computing it, skipping
//! the computation (and any remote store requests) on a hit.

use parking_lot::Mutex;
use std::sync::Arc;

use willump_data::Value;
use willump_store::LruCache;

/// A cache key: the display forms of the generator's source values.
///
/// Values hash by content; floats are formatted (feature-table keys
/// are ids and categories in practice, so this is both precise and
/// cheap).
pub type SourceKey = Vec<String>;

/// Build a cache key from source values in source order.
pub fn source_key(values: &[&Value]) -> SourceKey {
    values.iter().map(|v| v.to_string()).collect()
}

/// Cached feature entries for one generator: `(column, value)` pairs.
type CachedFeatures = Vec<(usize, f64)>;
/// One generator's LRU cache.
type GeneratorCache = Mutex<LruCache<SourceKey, CachedFeatures>>;

/// One LRU cache per feature generator, shared across threads.
#[derive(Debug, Clone)]
pub struct FeatureCaches {
    caches: Arc<Vec<GeneratorCache>>,
}

impl FeatureCaches {
    /// Caches for `n_generators`, each with the given capacity
    /// (`None` = unbounded, the paper's Table 2/3 setting).
    pub fn new(n_generators: usize, capacity: Option<usize>) -> FeatureCaches {
        let caches = (0..n_generators)
            .map(|_| {
                Mutex::new(match capacity {
                    Some(c) => LruCache::with_capacity(c),
                    None => LruCache::unbounded(),
                })
            })
            .collect();
        FeatureCaches {
            caches: Arc::new(caches),
        }
    }

    /// Number of generator caches.
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// Whether there are no caches.
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// Look up generator `g`'s features for `key`.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn get(&self, g: usize, key: &SourceKey) -> Option<Vec<(usize, f64)>> {
        self.caches[g].lock().get(key).cloned()
    }

    /// Store generator `g`'s features for `key`.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn put(&self, g: usize, key: SourceKey, features: Vec<(usize, f64)>) {
        self.caches[g].lock().put(key, features);
    }

    /// Total hits across all generator caches.
    pub fn hits(&self) -> u64 {
        self.caches.iter().map(|c| c.lock().hits()).sum()
    }

    /// Total misses across all generator caches.
    pub fn misses(&self) -> u64 {
        self.caches.iter().map(|c| c.lock().misses()).sum()
    }

    /// Overall hit rate (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Clear all caches and counters.
    pub fn clear(&self) {
        for c in self.caches.iter() {
            c.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_from_values() {
        let v1 = Value::Int(7);
        let v2 = Value::from("rock");
        assert_eq!(
            source_key(&[&v1, &v2]),
            vec!["7".to_string(), "rock".to_string()]
        );
    }

    #[test]
    fn per_generator_isolation() {
        let caches = FeatureCaches::new(2, None);
        let key = vec!["k".to_string()];
        caches.put(0, key.clone(), vec![(0, 1.0)]);
        assert_eq!(caches.get(0, &key), Some(vec![(0, 1.0)]));
        assert_eq!(caches.get(1, &key), None);
        assert_eq!(caches.hits(), 1);
        assert_eq!(caches.misses(), 1);
        assert!((caches.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_caches_evict() {
        let caches = FeatureCaches::new(1, Some(1));
        caches.put(0, vec!["a".into()], vec![]);
        caches.put(0, vec!["b".into()], vec![]);
        assert_eq!(caches.get(0, &vec!["a".to_string()]), None);
        assert!(caches.get(0, &vec!["b".to_string()]).is_some());
    }

    #[test]
    fn clear_resets() {
        let caches = FeatureCaches::new(1, None);
        caches.put(0, vec!["a".into()], vec![]);
        caches.get(0, &vec!["a".to_string()]);
        caches.clear();
        assert_eq!(caches.hits(), 0);
        assert_eq!(caches.get(0, &vec!["a".to_string()]), None);
    }

    #[test]
    fn shared_across_clones() {
        let caches = FeatureCaches::new(1, None);
        let other = caches.clone();
        other.put(0, vec!["x".into()], vec![(1, 2.0)]);
        assert_eq!(caches.get(0, &vec!["x".to_string()]), Some(vec![(1, 2.0)]));
    }
}
