//! # willump-graph
//!
//! The transformation-graph substrate of the Willump reproduction
//! (paper §5): a directed acyclic graph whose nodes are feature
//! transformations, whose edges are materialized data, whose sources
//! are raw pipeline inputs, and whose single sink feeds the model.
//!
//! This crate provides:
//!
//! - [`TransformGraph`] / [`GraphBuilder`]: the IR and its
//!   construction API (our stand-in for the paper's Python-AST
//!   frontend — see DESIGN.md's substitution table),
//! - [`analysis`]: identification of independent feature vectors
//!   (IFVs) and their feature generators via the paper's three rules
//!   (§5.1), plus the transition-minimizing node sort (§5.2),
//! - [`Executor`]: two execution engines over the same graph — an
//!   **interpreted** engine with boxed dynamic values and row-at-a-time
//!   dispatch (the Python-baseline stand-in) and a **compiled** engine
//!   with columnar, batched, cache- and parallelism-aware execution
//!   (the Weld stand-in),
//! - [`cost`]: per-node cost measurement used by the optimizer's IFV
//!   statistics (§4.2).
//!
//! ```
//! use willump_graph::{GraphBuilder, Operator, Executor, EngineMode};
//! use willump_data::{Table, Column};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let title = b.source("title");
//! let stats = b.add("stats", Operator::StringStats, [title])?;
//! let graph = b.finish_with_concat("features", [stats])?;
//!
//! let mut t = Table::new();
//! t.add_column("title", Column::from(vec!["Big Sale!!", "ok"]))?;
//! let exec = Executor::new(graph.into(), EngineMode::Compiled)?;
//! let feats = exec.features_batch(&t, None)?;
//! assert_eq!(feats.n_rows(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod cache;
pub mod cost;
mod error;
mod exec;
mod graph;
mod interp;
mod op;
pub mod parallel;
pub mod parse;
mod row;

pub use cache::FeatureCaches;
pub use error::GraphError;
pub use exec::{EngineMode, ExecStats, Executor, Parallelism};
pub use graph::{GraphBuilder, Node, NodeId, TransformGraph};
pub use op::Operator;
pub use parse::parse_pipeline;
pub use row::{InputRow, RowFeatures};
