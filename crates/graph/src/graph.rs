//! The transformation graph IR and its builder.

use std::collections::VecDeque;

use crate::op::Operator;
use crate::GraphError;

/// Identifier of a node within its [`TransformGraph`].
pub type NodeId = usize;

/// One node of a transformation graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's id (its index in the graph).
    pub id: NodeId,
    /// Human-readable name (unique names make debugging sane but are
    /// not enforced).
    pub name: String,
    /// The transformation this node applies.
    pub op: Operator,
    /// Ids of the nodes whose outputs feed this node, in order.
    pub inputs: Vec<NodeId>,
}

impl Node {
    /// Whether this node is a raw-input source.
    pub fn is_source(&self) -> bool {
        matches!(self.op, Operator::Source { .. })
    }
}

/// A directed acyclic graph of feature transformations with a single
/// sink feeding the model (paper §5.1).
#[derive(Debug, Clone)]
pub struct TransformGraph {
    nodes: Vec<Node>,
    sink: NodeId,
    topo: Vec<NodeId>,
}

impl TransformGraph {
    /// All nodes, indexed by id.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sink node (feeds the model).
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// A topological order of all node ids (sources first).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Source column names, in node order.
    pub fn source_columns(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                Operator::Source { column } => Some(column.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The width of the sink's feature output.
    pub fn out_dim(&self) -> usize {
        self.nodes[self.sink].op.out_dim()
    }

    /// Ids of nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// All transitive ancestors of `id` (excluding `id` itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.nodes[id].inputs.clone();
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            out.push(n);
            stack.extend(&self.nodes[n].inputs);
        }
        out.sort_unstable();
        out
    }

    fn compute_topo(nodes: &[Node]) -> Result<Vec<NodeId>, GraphError> {
        let n = nodes.len();
        let mut indegree = vec![0usize; n];
        for node in nodes {
            for &inp in &node.inputs {
                if inp >= n {
                    return Err(GraphError::UnknownNode { id: inp });
                }
            }
            indegree[node.id] = node.inputs.len();
        }
        let mut queue: VecDeque<NodeId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for consumer in nodes.iter().filter(|x| x.inputs.contains(&id)) {
                // A node with duplicate inputs decrements once per edge.
                let edges = consumer.inputs.iter().filter(|&&i| i == id).count();
                indegree[consumer.id] -= edges;
                if indegree[consumer.id] == 0 {
                    queue.push_back(consumer.id);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cyclic);
        }
        Ok(order)
    }
}

/// Incremental builder for [`TransformGraph`].
///
/// This is the reproduction's stand-in for the paper's Python-AST
/// frontend: workload definitions construct their transformation
/// graphs explicitly instead of having them inferred from Python
/// bytecode (see DESIGN.md).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Add a raw-input source reading `column` from the pipeline input.
    pub fn source(&mut self, column: impl Into<String>) -> NodeId {
        let column = column.into();
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            name: format!("source:{column}"),
            op: Operator::Source { column },
            inputs: Vec::new(),
        });
        id
    }

    /// Add a transformation node.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if an input id is invalid.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: Operator,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId, GraphError> {
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        for &i in &inputs {
            if i >= self.nodes.len() {
                return Err(GraphError::UnknownNode { id: i });
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs,
        });
        Ok(id)
    }

    /// Add a concatenation node over feature-producing inputs, wiring
    /// the input widths automatically.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] if an input id is invalid,
    /// or [`GraphError::BadInput`] if `inputs` is empty.
    pub fn concat(
        &mut self,
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        if inputs.is_empty() {
            return Err(GraphError::BadInput {
                node: name,
                reason: "concat needs at least one input".into(),
            });
        }
        let mut widths = Vec::with_capacity(inputs.len());
        for &i in &inputs {
            if i >= self.nodes.len() {
                return Err(GraphError::UnknownNode { id: i });
            }
            widths.push(self.nodes[i].op.out_dim());
        }
        self.add(name, Operator::Concat { widths }, inputs)
    }

    /// Finish the graph with `sink` as the node feeding the model.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] for an invalid sink or
    /// [`GraphError::Cyclic`] if the graph has a cycle.
    pub fn finish(self, sink: NodeId) -> Result<TransformGraph, GraphError> {
        if sink >= self.nodes.len() {
            return Err(GraphError::UnknownNode { id: sink });
        }
        let topo = TransformGraph::compute_topo(&self.nodes)?;
        Ok(TransformGraph {
            nodes: self.nodes,
            sink,
            topo,
        })
    }

    /// Convenience: add a concat over `inputs` and finish with it as
    /// the sink (the common shape of every benchmark pipeline).
    ///
    /// # Errors
    /// Propagates [`GraphBuilder::concat`] and [`GraphBuilder::finish`]
    /// errors.
    pub fn finish_with_concat(
        mut self,
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<TransformGraph, GraphError> {
        let sink = self.concat(name, inputs)?;
        self.finish(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TransformGraph {
        // src -> stats -+
        //               +-> concat (sink)
        // src -> stats -+
        let mut b = GraphBuilder::new();
        let s = b.source("text");
        let a = b.add("a", Operator::StringStats, [s]).unwrap();
        let c = b.add("c", Operator::StringStats, [s]).unwrap();
        b.finish_with_concat("sink", [a, c]).unwrap()
    }

    #[test]
    fn topo_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &id) in g.topo_order().iter().enumerate() {
                p[id] = i;
            }
            p
        };
        for n in g.nodes() {
            for &inp in &n.inputs {
                assert!(pos[inp] < pos[n.id], "edge {inp}->{} violated", n.id);
            }
        }
    }

    #[test]
    fn sink_and_sources() {
        let g = diamond();
        assert_eq!(g.source_columns(), vec!["text"]);
        assert_eq!(g.node(g.sink()).name, "sink");
        assert_eq!(g.out_dim(), 16);
    }

    #[test]
    fn ancestors_and_consumers() {
        let g = diamond();
        let sink = g.sink();
        let anc = g.ancestors(sink);
        assert_eq!(anc, vec![0, 1, 2]);
        assert_eq!(g.consumers(0), vec![1, 2]);
        assert!(g.ancestors(0).is_empty());
    }

    #[test]
    fn invalid_ids_rejected() {
        let mut b = GraphBuilder::new();
        assert!(matches!(
            b.add("x", Operator::StringStats, [42]),
            Err(GraphError::UnknownNode { id: 42 })
        ));
        let s = b.source("t");
        let _ = s;
        assert!(matches!(
            b.finish(99),
            Err(GraphError::UnknownNode { id: 99 })
        ));
    }

    #[test]
    fn empty_concat_rejected() {
        let mut b = GraphBuilder::new();
        assert!(b.concat("c", []).is_err());
    }

    #[test]
    fn concat_captures_widths() {
        let g = diamond();
        match &g.node(g.sink()).op {
            Operator::Concat { widths } => assert_eq!(widths, &vec![8, 8]),
            _ => unreachable!(),
        }
    }
}
