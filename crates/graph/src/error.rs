//! Error type for graph construction and execution.

use std::error::Error;
use std::fmt;

/// Errors produced while building or executing a transformation graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node referenced an id that does not exist.
    UnknownNode {
        /// The bad id.
        id: usize,
    },
    /// The graph contains a cycle.
    Cyclic,
    /// An operator received inputs of the wrong arity or type.
    BadInput {
        /// Node that failed.
        node: String,
        /// Why it failed.
        reason: String,
    },
    /// A raw input column was missing from the input table/row.
    MissingInput {
        /// The missing source column name.
        name: String,
    },
    /// Feature computation failed.
    Feature(String),
    /// Model-layer failure surfaced through execution.
    Data(String),
    /// A requested feature-generator subset index was invalid.
    BadSubset {
        /// The offending index.
        index: usize,
        /// Number of feature generators.
        n_fgs: usize,
    },
    /// A pipeline description failed to parse (see [`crate::parse`]).
    Parse {
        /// 1-based line of the offending statement (0 for whole-file
        /// errors).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            GraphError::Cyclic => f.write_str("transformation graph contains a cycle"),
            GraphError::BadInput { node, reason } => {
                write!(f, "bad input to node `{node}`: {reason}")
            }
            GraphError::MissingInput { name } => {
                write!(f, "input column `{name}` missing from pipeline input")
            }
            GraphError::Feature(msg) => write!(f, "featurization failed: {msg}"),
            GraphError::Data(msg) => write!(f, "data error: {msg}"),
            GraphError::BadSubset { index, n_fgs } => {
                write!(
                    f,
                    "feature generator index {index} out of range ({n_fgs} generators)"
                )
            }
            GraphError::Parse { line, reason } => {
                write!(f, "pipeline description error at line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

impl From<willump_featurize::FeatError> for GraphError {
    fn from(e: willump_featurize::FeatError) -> Self {
        GraphError::Feature(e.to_string())
    }
}

impl From<willump_data::DataError> for GraphError {
    fn from(e: willump_data::DataError) -> Self {
        GraphError::Data(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GraphError::Cyclic.to_string().contains("cycle"));
        let e = GraphError::BadSubset { index: 4, n_fgs: 2 };
        assert!(e.to_string().contains("4"));
        let e: GraphError = willump_featurize::FeatError::NotFitted { transformer: "x" }.into();
        assert!(matches!(e, GraphError::Feature(_)));
    }
}
