//! A textual pipeline-description frontend for transformation graphs.
//!
//! The paper's dataflow stage builds the transformation graph by
//! descending a Python function's AST (§5.1), resolving transformer
//! objects out of the function's closure. This module is the Rust
//! analogue: a small line-oriented description language whose
//! statements wire *bound* operators (already-fitted transformers the
//! caller supplies) into a [`TransformGraph`].
//!
//! ```text
//! # MusicRec, paper Figure 1
//! source user_id
//! source song_id
//! user     = op:user_lookup(user_id)
//! song     = op:song_lookup(song_id)
//! features = concat(user, song)
//! ```
//!
//! One statement per line; `#` starts a comment. Statements:
//!
//! - `source <column>` — a raw input reading `<column>`,
//! - `<name> = <func>(<arg>, ...)` — a transformation node, where
//!   `<func>` is a builtin (`numeric`, `string_stats`, `concat`) or
//!   `op:<binding>` referencing an operator passed in `bindings`.
//!
//! The graph's sink is the node named `features` if present, otherwise
//! the last-defined node.

use std::collections::HashMap;

use crate::graph::{GraphBuilder, NodeId, TransformGraph};
use crate::op::Operator;
use crate::GraphError;

/// Parse a pipeline description into a [`TransformGraph`].
///
/// `bindings` supplies the fitted operators referenced by `op:<name>`
/// calls; builtins (`numeric`, `string_stats`, `concat`) need no
/// binding. See the [module docs](self) for the statement grammar.
///
/// # Errors
/// Returns [`GraphError::Parse`] for syntax errors, unknown
/// identifiers, unknown functions or bindings, redefinitions, and
/// arity violations; propagates graph-construction errors otherwise.
pub fn parse_pipeline(
    text: &str,
    bindings: &HashMap<String, Operator>,
) -> Result<TransformGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    let mut last: Option<NodeId> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;

        if let Some(rest) = line.strip_prefix("source ") {
            let column = rest.trim();
            validate_ident(column, lineno)?;
            if names.contains_key(column) {
                return Err(parse_err(lineno, format!("`{column}` is already defined")));
            }
            let id = builder.source(column);
            names.insert(column.to_string(), id);
            last = Some(id);
            continue;
        }

        let (name, call) = line.split_once('=').ok_or_else(|| {
            parse_err(
                lineno,
                "expected `source <column>` or `<name> = <func>(...)`".to_string(),
            )
        })?;
        let name = name.trim();
        validate_ident(name, lineno)?;
        if names.contains_key(name) {
            return Err(parse_err(lineno, format!("`{name}` is already defined")));
        }

        let (func, args) = parse_call(call.trim(), lineno)?;
        let inputs: Vec<NodeId> = args
            .iter()
            .map(|a| {
                names.get(*a).copied().ok_or_else(|| {
                    parse_err(
                        lineno,
                        format!("unknown input `{a}` (defined later or never?)"),
                    )
                })
            })
            .collect::<Result<_, _>>()?;

        let id = match func {
            "numeric" => {
                expect_arity(&inputs, 1, func, lineno)?;
                builder.add(name, Operator::NumericColumn, inputs)?
            }
            "string_stats" => {
                expect_arity(&inputs, 1, func, lineno)?;
                builder.add(name, Operator::StringStats, inputs)?
            }
            "concat" => {
                if inputs.is_empty() {
                    return Err(parse_err(lineno, "concat needs at least one input".into()));
                }
                builder.concat(name, inputs)?
            }
            _ => {
                let Some(binding) = func.strip_prefix("op:") else {
                    return Err(parse_err(
                        lineno,
                        format!(
                            "unknown function `{func}` (builtins: numeric, string_stats, \
                             concat; bound operators: op:<name>)"
                        ),
                    ));
                };
                let op = bindings.get(binding).ok_or_else(|| {
                    parse_err(lineno, format!("no operator bound for `op:{binding}`"))
                })?;
                expect_arity(&inputs, 1, func, lineno)?;
                builder.add(name, op.clone(), inputs)?
            }
        };
        names.insert(name.to_string(), id);
        last = Some(id);
    }

    let sink = names
        .get("features")
        .copied()
        .or(last)
        .ok_or_else(|| parse_err(0, "empty pipeline description".into()))?;
    builder.finish(sink)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_err(line: usize, reason: String) -> GraphError {
    GraphError::Parse { line, reason }
}

fn validate_ident(name: &str, lineno: usize) -> Result<(), GraphError> {
    let ok = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.starts_with(|c: char| c.is_ascii_digit());
    if ok {
        Ok(())
    } else {
        Err(parse_err(lineno, format!("invalid identifier `{name}`")))
    }
}

/// Split `func(a, b, c)` into the function name and argument names.
fn parse_call(call: &str, lineno: usize) -> Result<(&str, Vec<&str>), GraphError> {
    let open = call
        .find('(')
        .ok_or_else(|| parse_err(lineno, format!("expected a call, found `{call}`")))?;
    if !call.ends_with(')') {
        return Err(parse_err(lineno, format!("unclosed call `{call}`")));
    }
    let func = call[..open].trim();
    if func.is_empty() {
        return Err(parse_err(lineno, "missing function name".into()));
    }
    let body = &call[open + 1..call.len() - 1];
    let args: Vec<&str> = if body.trim().is_empty() {
        Vec::new()
    } else {
        body.split(',').map(str::trim).collect()
    };
    if args.iter().any(|a| a.is_empty()) {
        return Err(parse_err(lineno, format!("empty argument in `{call}`")));
    }
    Ok((func, args))
}

fn expect_arity(
    inputs: &[NodeId],
    want: usize,
    func: &str,
    lineno: usize,
) -> Result<(), GraphError> {
    if inputs.len() == want {
        Ok(())
    } else {
        Err(parse_err(
            lineno,
            format!("`{func}` takes {want} input(s), got {}", inputs.len()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_bindings() -> HashMap<String, Operator> {
        HashMap::new()
    }

    #[test]
    fn parses_the_module_example_shape() {
        let text = "
            # toy pipeline
            source text
            stats    = string_stats(text)   # cheap block
            features = concat(stats)
        ";
        let g = parse_pipeline(text, &no_bindings()).unwrap();
        assert_eq!(g.source_columns(), vec!["text"]);
        assert_eq!(g.node(g.sink()).name, "features");
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn sink_defaults_to_last_node_without_features_name() {
        let text = "
            source a
            x = numeric(a)
        ";
        let g = parse_pipeline(text, &no_bindings()).unwrap();
        assert_eq!(g.node(g.sink()).name, "x");
    }

    #[test]
    fn bound_operators_resolve() {
        let mut b = HashMap::new();
        b.insert("pass".to_string(), Operator::NumericColumn);
        let text = "
            source a
            f = op:pass(a)
            features = concat(f)
        ";
        let g = parse_pipeline(text, &b).unwrap();
        assert!(matches!(g.node(1).op, Operator::NumericColumn));
    }

    #[test]
    fn missing_binding_is_reported_with_line() {
        let text = "source a\nf = op:nope(a)";
        let err = parse_pipeline(text, &no_bindings()).unwrap_err();
        match err {
            GraphError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("op:nope"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_input_and_forward_references_rejected() {
        let err = parse_pipeline("source a\nf = numeric(b)", &no_bindings()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        // Using a name before it is defined is also unknown.
        let err =
            parse_pipeline("source a\nf = concat(g)\ng = numeric(a)", &no_bindings()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn redefinition_rejected() {
        let err = parse_pipeline("source a\na = numeric(a)", &no_bindings()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn syntax_errors_are_parse_errors() {
        for bad in [
            "f := numeric(a)",
            "source 9lives",
            "source a\nf = numeric a",
            "source a\nf = numeric(a",
            "source a\nf = (a)",
            "source a\nf = numeric(a,,b)",
            "source a\nf = numeric(a, a)", // arity
        ] {
            let err = parse_pipeline(bad, &no_bindings()).unwrap_err();
            assert!(matches!(err, GraphError::Parse { .. }), "input: {bad}");
        }
    }

    #[test]
    fn empty_description_rejected() {
        assert!(matches!(
            parse_pipeline("  \n# only comments\n", &no_bindings()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn parsed_graph_executes() {
        use crate::{EngineMode, Executor};
        use willump_data::{Column, Table};

        let text = "
            source txt
            source n
            stats    = string_stats(txt)
            num      = numeric(n)
            features = concat(stats, num)
        ";
        let g = parse_pipeline(text, &no_bindings()).unwrap();
        let exec = Executor::new(std::sync::Arc::new(g), EngineMode::Compiled).unwrap();
        let mut t = Table::new();
        t.add_column("txt", Column::from(vec!["hello world".to_string()]))
            .unwrap();
        t.add_column("n", Column::from(vec![3.5])).unwrap();
        let f = exec.features_batch(&t, None).unwrap();
        assert_eq!(f.n_rows(), 1);
        assert_eq!(f.n_cols(), 9, "8 string stats + 1 numeric");
    }
}
