//! Dataflow analyses over transformation graphs (paper §5.1-§5.2).
//!
//! Implements the three IFV-identification rules:
//!
//! 1. Any ancestor of a commutative node that is not itself commutative
//!    is the *root node* of a feature generator.
//! 2. Any ancestor of the root node of exactly one feature generator is
//!    part of that feature generator.
//! 3. Any ancestor of the root nodes of multiple feature generators is
//!    a *preprocessing node*, executed before any features.
//!
//! Also provides the transition-minimizing sort of §5.2: ordering nodes
//! to minimize switches between compiled and non-compiled runs.

use crate::graph::{NodeId, TransformGraph};
use crate::GraphError;

/// One feature generator: the disjoint subgraph computing one
/// independent feature vector (IFV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureGenerator {
    /// The generator's root (the node whose output is the IFV).
    pub root: NodeId,
    /// All nodes belonging to the generator, in ascending id order
    /// (includes `root` and its exclusive ancestors, including
    /// sources).
    pub nodes: Vec<NodeId>,
}

impl FeatureGenerator {
    /// The source column names among this generator's *exclusive*
    /// nodes (rule 2). Sources shared with other generators are
    /// preprocessing nodes and do not appear here; see
    /// [`FeatureGenerator::key_source_columns`] for the full
    /// dependency set.
    pub fn source_columns<'g>(&self, graph: &'g TransformGraph) -> Vec<&'g str> {
        self.nodes
            .iter()
            .filter_map(|&id| match &graph.node(id).op {
                crate::Operator::Source { column } => Some(column.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Every source column this generator's IFV transitively depends
    /// on — exclusive sources *and* shared (preprocessing) sources
    /// that are ancestors of the generator's root.
    ///
    /// This is the correct cache key for feature-level caching (paper
    /// §4.5: "keys are sources of the IFV's feature generator"): two
    /// inputs agreeing on these columns produce the same IFV, and
    /// columns feeding only *other* generators must not fragment the
    /// key.
    pub fn key_source_columns<'g>(&self, graph: &'g TransformGraph) -> Vec<&'g str> {
        let mut ids = graph.ancestors(self.root);
        ids.push(self.root);
        ids.sort_unstable();
        ids.iter()
            .filter_map(|&id| match &graph.node(id).op {
                crate::Operator::Source { column } => Some(column.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// Result of IFV identification over a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfvAnalysis {
    /// Feature generators in canonical order (the order their roots
    /// feed the commutative chain, i.e. concatenation order).
    pub generators: Vec<FeatureGenerator>,
    /// Commutative nodes between the generators and the model.
    pub commutative: Vec<NodeId>,
    /// Preprocessing nodes shared by multiple generators (rule 3).
    pub preprocessing: Vec<NodeId>,
}

impl IfvAnalysis {
    /// Number of independent feature vectors.
    pub fn n_ifvs(&self) -> usize {
        self.generators.len()
    }
}

/// Identify IFVs and feature generators (paper §5.1).
///
/// Starts at the sink and recursively descends commutative nodes; the
/// non-commutative frontier nodes are generator roots (rule 1), their
/// exclusive ancestor sets are the generators (rule 2), and shared
/// ancestors are preprocessing nodes (rule 3).
///
/// # Errors
/// Currently infallible for valid graphs; returns [`GraphError`] to
/// leave room for stricter validation.
pub fn identify_ifvs(graph: &TransformGraph) -> Result<IfvAnalysis, GraphError> {
    let mut commutative = Vec::new();
    let mut roots: Vec<NodeId> = Vec::new();
    // DFS through the commutative region, preserving input order so the
    // generator order matches concatenation order.
    let mut stack = vec![graph.sink()];
    let mut seen = vec![false; graph.len()];
    while let Some(id) = stack.pop() {
        if seen[id] {
            continue;
        }
        seen[id] = true;
        let node = graph.node(id);
        if node.op.is_commutative() {
            commutative.push(id);
            // Push children in reverse so they pop in input order.
            for &inp in node.inputs.iter().rev() {
                stack.push(inp);
            }
        } else {
            // Rule 1: non-commutative ancestor of a commutative node
            // (or the sink itself) roots a feature generator.
            roots.push(id);
        }
    }
    commutative.sort_unstable();

    // Count, for every node, how many roots it is an ancestor of
    // (or is). Rule 2: exactly one -> that generator. Rule 3: more
    // than one -> preprocessing.
    let mut membership: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for (g, &root) in roots.iter().enumerate() {
        membership[root].push(g);
        for anc in graph.ancestors(root) {
            membership[anc].push(g);
        }
    }
    let mut generators: Vec<FeatureGenerator> = roots
        .iter()
        .map(|&root| FeatureGenerator {
            root,
            nodes: Vec::new(),
        })
        .collect();
    let mut preprocessing = Vec::new();
    for (id, gens) in membership.iter().enumerate() {
        match gens.len() {
            0 => {} // commutative node or unreachable
            1 => generators[gens[0]].nodes.push(id),
            _ => preprocessing.push(id),
        }
    }
    for g in &mut generators {
        g.nodes.sort_unstable();
    }
    Ok(IfvAnalysis {
        generators,
        commutative,
        preprocessing,
    })
}

/// The feature-column layout of a subset of generators: for each
/// generator index in `subset` (kept in the given order), its column
/// offset and width in the concatenated feature vector.
///
/// Willump's cascades compute the *efficient feature vector* by
/// concatenating the efficient IFVs in canonical order; this function
/// defines that layout for both training (batch) and serving (row)
/// paths.
///
/// # Errors
/// Returns [`GraphError::BadSubset`] for out-of-range indices.
pub fn subset_layout(
    graph: &TransformGraph,
    analysis: &IfvAnalysis,
    subset: &[usize],
) -> Result<Vec<(usize, usize, usize)>, GraphError> {
    let mut out = Vec::with_capacity(subset.len());
    let mut offset = 0;
    for &g in subset {
        let generator = analysis.generators.get(g).ok_or(GraphError::BadSubset {
            index: g,
            n_fgs: analysis.generators.len(),
        })?;
        let width = graph.node(generator.root).op.out_dim();
        out.push((g, offset, width));
        offset += width;
    }
    Ok(out)
}

/// Total feature width of a generator subset.
///
/// # Errors
/// Returns [`GraphError::BadSubset`] for out-of-range indices.
pub fn subset_width(
    graph: &TransformGraph,
    analysis: &IfvAnalysis,
    subset: &[usize],
) -> Result<usize, GraphError> {
    Ok(subset_layout(graph, analysis, subset)?
        .iter()
        .map(|(_, _, w)| w)
        .sum())
}

/// Sort nodes topologically while minimizing transitions between
/// compilable and non-compilable nodes (paper §5.2: "Willump sorts the
/// graph topologically, then heuristically minimizes the number of
/// transitions by moving each Python node to the earliest allowable
/// location").
pub fn transition_minimizing_sort(
    graph: &TransformGraph,
    compilable: &dyn Fn(NodeId) -> bool,
) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = graph.topo_order().to_vec();
    // Hoist each non-compilable node to the earliest position allowed
    // by its dependencies.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..order.len() {
            if compilable(order[i]) {
                continue;
            }
            let node = graph.node(order[i]);
            // Find the earliest slot after all dependencies.
            let mut earliest = 0;
            for (pos, &other) in order.iter().enumerate().take(i) {
                if node.inputs.contains(&other) {
                    earliest = pos + 1;
                }
            }
            if earliest < i {
                let id = order.remove(i);
                order.insert(earliest, id);
                changed = true;
            }
        }
    }
    order
}

/// Count compiled/non-compiled transitions in an execution order
/// (sources are free and skipped).
pub fn count_transitions(
    graph: &TransformGraph,
    order: &[NodeId],
    compilable: &dyn Fn(NodeId) -> bool,
) -> usize {
    let mut transitions = 0;
    let mut last: Option<bool> = None;
    for &id in order {
        if graph.node(id).is_source() {
            continue;
        }
        let c = compilable(id);
        if let Some(prev) = last {
            if prev != c {
                transitions += 1;
            }
        }
        last = Some(c);
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::Operator;

    /// The MusicRec shape from paper Figure 1: three lookup-style
    /// generators concatenated into one model input.
    fn musicrec_like() -> TransformGraph {
        let mut b = GraphBuilder::new();
        let user = b.source("user");
        let song = b.source("song");
        let genre = b.source("genre");
        let u = b.add("user_stats", Operator::StringStats, [user]).unwrap();
        let s = b.add("song_stats", Operator::StringStats, [song]).unwrap();
        let g = b
            .add("genre_stats", Operator::StringStats, [genre])
            .unwrap();
        b.finish_with_concat("features", [u, s, g]).unwrap()
    }

    #[test]
    fn identifies_three_generators_in_order() {
        let g = musicrec_like();
        let a = identify_ifvs(&g).unwrap();
        assert_eq!(a.n_ifvs(), 3);
        assert_eq!(
            a.generators.iter().map(|f| f.root).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        // Each generator includes its source.
        assert_eq!(a.generators[0].nodes, vec![0, 3]);
        assert_eq!(a.generators[1].nodes, vec![1, 4]);
        assert_eq!(a.generators[2].nodes, vec![2, 5]);
        assert!(a.preprocessing.is_empty());
        assert_eq!(a.commutative, vec![g.sink()]);
    }

    #[test]
    fn shared_ancestor_becomes_preprocessing() {
        // One source feeds two generators: it's a preprocessing node
        // by rule 3.
        let mut b = GraphBuilder::new();
        let text = b.source("text");
        let a = b.add("a", Operator::StringStats, [text]).unwrap();
        let c = b.add("c", Operator::StringStats, [text]).unwrap();
        let g = b.finish_with_concat("f", [a, c]).unwrap();
        let an = identify_ifvs(&g).unwrap();
        assert_eq!(an.n_ifvs(), 2);
        assert_eq!(an.preprocessing, vec![text]);
        assert_eq!(an.generators[0].nodes, vec![a]);
        assert_eq!(an.generators[1].nodes, vec![c]);
    }

    #[test]
    fn nested_concats_flatten() {
        let mut b = GraphBuilder::new();
        let s1 = b.source("x");
        let s2 = b.source("y");
        let s3 = b.source("z");
        let a = b.add("a", Operator::StringStats, [s1]).unwrap();
        let c = b.add("c", Operator::StringStats, [s2]).unwrap();
        let d = b.add("d", Operator::StringStats, [s3]).unwrap();
        let inner = b.concat("inner", [a, c]).unwrap();
        let outer = b.concat("outer", [inner, d]).unwrap();
        let g = b.finish(outer).unwrap();
        let an = identify_ifvs(&g).unwrap();
        assert_eq!(an.n_ifvs(), 3);
        assert_eq!(an.commutative.len(), 2);
        // Canonical order follows concatenation order: a, c, d.
        assert_eq!(
            an.generators.iter().map(|f| f.root).collect::<Vec<_>>(),
            vec![a, c, d]
        );
    }

    #[test]
    fn non_commutative_sink_is_single_generator() {
        let mut b = GraphBuilder::new();
        let s = b.source("t");
        let a = b.add("a", Operator::StringStats, [s]).unwrap();
        let g = b.finish(a).unwrap();
        let an = identify_ifvs(&g).unwrap();
        assert_eq!(an.n_ifvs(), 1);
        assert_eq!(an.generators[0].root, a);
        assert_eq!(an.generators[0].nodes, vec![s, a]);
        assert!(an.commutative.is_empty());
    }

    #[test]
    fn layout_offsets_accumulate() {
        let g = musicrec_like();
        let a = identify_ifvs(&g).unwrap();
        let layout = subset_layout(&g, &a, &[0, 2]).unwrap();
        assert_eq!(layout, vec![(0, 0, 8), (2, 8, 8)]);
        assert_eq!(subset_width(&g, &a, &[0, 1, 2]).unwrap(), 24);
        assert!(subset_layout(&g, &a, &[7]).is_err());
    }

    #[test]
    fn generator_source_columns() {
        let g = musicrec_like();
        let a = identify_ifvs(&g).unwrap();
        assert_eq!(a.generators[0].source_columns(&g), vec!["user"]);
        assert_eq!(a.generators[2].source_columns(&g), vec!["genre"]);
    }

    /// Regression: cache keys must cover exactly the sources a
    /// generator depends on. A shared (preprocessing) source belongs
    /// to the keys of the generators it feeds — and to no others —
    /// else per-entity caching degenerates to per-row caching.
    #[test]
    fn key_source_columns_track_dependencies_only() {
        let mut b = GraphBuilder::new();
        let shared = b.source("shared");
        let own = b.source("own");
        let a = b.add("a", Operator::StringStats, [shared]).unwrap();
        let c = b.add("c", Operator::StringStats, [shared]).unwrap();
        let d = b.add("d", Operator::StringStats, [own]).unwrap();
        let g = b.finish_with_concat("f", [a, c, d]).unwrap();
        let an = identify_ifvs(&g).unwrap();
        assert_eq!(an.preprocessing, vec![shared]);
        // Generators over the shared source key on it...
        assert_eq!(an.generators[0].key_source_columns(&g), vec!["shared"]);
        assert_eq!(an.generators[1].key_source_columns(&g), vec!["shared"]);
        // ...while the independent generator keys only on its own
        // source (rule 2 puts `own` inside it, so both accessors agree).
        assert_eq!(an.generators[2].key_source_columns(&g), vec!["own"]);
        assert_eq!(an.generators[2].source_columns(&g), vec!["own"]);
        // But exclusive `source_columns` is empty for the shared ones.
        assert!(an.generators[0].source_columns(&g).is_empty());
    }

    #[test]
    fn transition_sort_is_topological_and_reduces_transitions() {
        // Alternating compilable/non-compilable chain over independent
        // generators: the sort should group the non-compilable ones.
        let mut b = GraphBuilder::new();
        let mut roots = Vec::new();
        for i in 0..6 {
            let s = b.source(format!("s{i}"));
            let n = b.add(format!("n{i}"), Operator::StringStats, [s]).unwrap();
            roots.push(n);
        }
        let g = b.finish_with_concat("f", roots.clone()).unwrap();
        // Odd generators are "python".
        let compilable = |id: NodeId| -> bool {
            !g.node(id).name.starts_with('n')
                || g.node(id).name[1..].parse::<usize>().unwrap() % 2 == 0
        };
        let order = transition_minimizing_sort(&g, &compilable);
        // Valid topological order.
        let mut pos = vec![0; g.len()];
        for (i, &id) in order.iter().enumerate() {
            pos[id] = i;
        }
        for n in g.nodes() {
            for &inp in &n.inputs {
                assert!(pos[inp] < pos[n.id]);
            }
        }
        let before = count_transitions(&g, g.topo_order(), &compilable);
        let after = count_transitions(&g, &order, &compilable);
        assert!(after <= before, "transitions {before} -> {after}");
        assert!(after <= 2, "after {after}");
    }

    #[test]
    fn count_transitions_skips_sources() {
        let g = musicrec_like();
        let all_compilable = |_: NodeId| true;
        assert_eq!(count_transitions(&g, g.topo_order(), &all_compilable), 0);
    }
}
