//! The interpreted engine: the unoptimized-Python stand-in.
//!
//! The paper's baselines are CPython pipelines whose cost structure is
//! dominated by per-row interpreter dispatch, object boxing, dict
//! lookups, and materialization between operators. This engine
//! reproduces that cost structure honestly in Rust:
//!
//! - rows are processed one at a time, walking the whole graph per row,
//! - every intermediate lives in a per-row `HashMap<String, RowOut>`
//!   keyed by node *name* (a namespace dict, as in Python),
//! - every string input is copied into a fresh allocation at each
//!   operator boundary (object churn),
//! - store lookups issue one request per row (no batching),
//! - nothing is parallelized (the GIL).
//!
//! The compiled engine in [`crate::exec`] removes exactly these
//! overheads, which is what paper Figures 5 and 6 measure.

use std::collections::HashMap;

use willump_data::{FeatureMatrix, SparseRowBuilder, Table, Value};
use willump_featurize::{TfIdfVectorizer, VectorizerConfig, Vocabulary};

use crate::exec::Executor;
use crate::op::RowOut;
use crate::row::{InputRow, RowFeatures};
use crate::{GraphError, Operator};

/// Copy a value the way a dynamic runtime would: strings get fresh
/// heap allocations instead of sharing.
fn rebox(v: &Value) -> Value {
    match v {
        Value::Str(s) => Value::from(s.to_string()),
        other => other.clone(),
    }
}

/// Count n-grams the way a pure-Python featurizer would: every n-gram
/// becomes a boxed string object, counting goes through a
/// string-keyed dict (another allocation per token), and only then are
/// tokens resolved against the vocabulary.
fn dynamic_ngram_counts(
    config: &VectorizerConfig,
    vocab: &Vocabulary,
    doc: &str,
) -> Vec<(usize, f64)> {
    // Token objects.
    let mut tokens: Vec<Value> = Vec::new();
    config.analyze(doc, |g| tokens.push(Value::from(g.to_string())));
    // String-keyed counting dict.
    let mut counts: HashMap<String, f64> = HashMap::new();
    for t in &tokens {
        *counts.entry(t.to_string()).or_insert(0.0) += 1.0;
    }
    let mut row: Vec<(usize, f64)> = counts
        .into_iter()
        .filter_map(|(tok, c)| vocab.get(&tok).map(|id| (id as usize, c)))
        .collect();
    row.sort_unstable_by_key(|(c, _)| *c);
    row
}

/// TF-IDF through the dynamic counting path.
fn dynamic_tfidf(v: &TfIdfVectorizer, doc: &str) -> Result<Vec<(usize, f64)>, GraphError> {
    let vocab = v
        .vocabulary()
        .ok_or_else(|| GraphError::Feature("tf-idf vectorizer used before fit".to_string()))?;
    let mut row = dynamic_ngram_counts(v.config(), vocab, doc);
    v.weigh(&mut row);
    Ok(row)
}

/// Evaluate one node the interpreted way: text featurization takes the
/// boxed-token dynamic path; everything else falls through to the
/// shared row implementation.
fn eval_row_interp(op: &Operator, name: &str, inputs: &[&RowOut]) -> Result<RowOut, GraphError> {
    match op {
        Operator::TfIdf(v) if inputs.len() == 1 => {
            let doc = inputs[0]
                .as_value(name)?
                .as_str()
                .ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "tf-idf needs a string value".into(),
                })?;
            Ok(RowOut::Features(dynamic_tfidf(v, doc)?))
        }
        Operator::CountVec(v) if inputs.len() == 1 => {
            let doc = inputs[0]
                .as_value(name)?
                .as_str()
                .ok_or_else(|| GraphError::BadInput {
                    node: name.to_string(),
                    reason: "count vectorizer needs a string value".into(),
                })?;
            let vocab = v.vocabulary().ok_or_else(|| {
                GraphError::Feature("count vectorizer used before fit".to_string())
            })?;
            Ok(RowOut::Features(dynamic_ngram_counts(
                v.config(),
                vocab,
                doc,
            )))
        }
        other => other.eval_row(name, inputs),
    }
}

/// Evaluate the whole (subset) pipeline for one row into a fresh
/// namespace map, returning the concatenated feature entries.
fn eval_row_namespace(
    exec: &Executor,
    input: &InputRow,
    subset: &[usize],
) -> Result<RowFeatures, GraphError> {
    let graph = exec.graph();
    let analysis = exec.analysis();
    let layout = crate::analysis::subset_layout(graph, analysis, subset)?;

    // Namespace dict: node name -> boxed output, rebuilt per row.
    let mut namespace: HashMap<String, RowOut> = HashMap::new();

    let order = exec.needed_nodes(subset);
    for id in order {
        let node = graph.node(id);
        let out = match &node.op {
            Operator::Source { column } => RowOut::Value(rebox(input.try_get(column)?)),
            op => {
                // Fetch inputs from the namespace dict by name, copying
                // boxed values at the boundary (object churn).
                let mut owned_inputs: Vec<RowOut> = Vec::with_capacity(node.inputs.len());
                for &i in &node.inputs {
                    let name = &graph.node(i).name;
                    let cell = namespace.get(name).ok_or_else(|| GraphError::BadInput {
                        node: node.name.clone(),
                        reason: format!("namespace missing `{name}`"),
                    })?;
                    owned_inputs.push(match cell {
                        RowOut::Value(v) => RowOut::Value(rebox(v)),
                        RowOut::Features(f) => RowOut::Features(f.clone()),
                    });
                }
                let refs: Vec<&RowOut> = owned_inputs.iter().collect();
                eval_row_interp(op, &node.name, &refs)?
            }
        };
        namespace.insert(node.name.clone(), out);
    }

    // Concatenate generator outputs per the subset layout.
    let mut entries = Vec::new();
    let mut width = 0;
    for &(g, offset, w) in &layout {
        let root = analysis.generators[g].root;
        let name = &graph.node(root).name;
        let feats = namespace
            .get(name)
            .expect("generator root evaluated")
            .as_features(name)?;
        entries.extend(feats.iter().map(|(c, v)| (c + offset, *v)));
        width = offset + w;
    }
    Ok(RowFeatures::new(entries, width))
}

/// Batch execution: loop the single-row interpreter over every row and
/// materialize a sparse matrix at the end.
pub(crate) fn features_batch(
    exec: &Executor,
    table: &Table,
    subset: &[usize],
) -> Result<FeatureMatrix, GraphError> {
    let width = exec.subset_width(Some(subset))?;
    let mut b = SparseRowBuilder::new(width);
    for r in 0..table.n_rows() {
        // Build a boxed per-row input (object creation per field).
        let input = InputRow::from_table(table, r)?;
        let row = eval_row_namespace(exec, &input, subset)?;
        b.push_row(&row.entries);
    }
    Ok(FeatureMatrix::Sparse(b.finish()))
}

/// Single-input execution.
pub(crate) fn features_one(
    exec: &Executor,
    input: &InputRow,
    subset: &[usize],
) -> Result<RowFeatures, GraphError> {
    let mut row = eval_row_namespace(exec, input, subset)?;
    row.entries.sort_unstable_by_key(|(c, _)| *c);
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::EngineMode;
    use crate::graph::GraphBuilder;
    use std::sync::Arc;
    use willump_data::Column;

    fn graph_and_table() -> (Arc<crate::TransformGraph>, Table) {
        let mut b = GraphBuilder::new();
        let s = b.source("text");
        let a = b.add("stats_a", Operator::StringStats, [s]).unwrap();
        let c = b.add("stats_c", Operator::StringStats, [s]).unwrap();
        let g = Arc::new(b.finish_with_concat("f", [a, c]).unwrap());
        let mut t = Table::new();
        t.add_column("text", Column::from(vec!["Hello There!", "short"]))
            .unwrap();
        (g, t)
    }

    #[test]
    fn interp_handles_shared_preprocessing_source() {
        let (g, t) = graph_and_table();
        let exec = Executor::new(g, EngineMode::Interpreted).unwrap();
        let f = exec.features_batch(&t, None).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.n_cols(), 16);
        // Both halves identical (same op, same input).
        for r in 0..2 {
            let e = f.row_entries(r);
            let left: Vec<(usize, f64)> = e
                .iter()
                .filter(|(c, _)| *c < 8)
                .map(|(c, v)| (*c, *v))
                .collect();
            let right: Vec<(usize, f64)> = e
                .iter()
                .filter(|(c, _)| *c >= 8)
                .map(|(c, v)| (*c - 8, *v))
                .collect();
            assert_eq!(left, right);
        }
    }

    #[test]
    fn interp_single_row_sorted() {
        let (g, t) = graph_and_table();
        let exec = Executor::new(g, EngineMode::Interpreted).unwrap();
        let input = InputRow::from_table(&t, 0).unwrap();
        let row = exec.features_one(&input, None).unwrap();
        let mut sorted = row.entries.clone();
        sorted.sort_unstable_by_key(|(c, _)| *c);
        assert_eq!(row.entries, sorted);
    }

    #[test]
    fn interp_subset() {
        let (g, t) = graph_and_table();
        let exec = Executor::new(g, EngineMode::Interpreted).unwrap();
        let f = exec.features_batch(&t, Some(&[0])).unwrap();
        assert_eq!(f.n_cols(), 8);
    }

    #[test]
    fn rebox_copies_strings() {
        let v = Value::from("shared");
        let r = rebox(&v);
        match (&v, &r) {
            (Value::Str(a), Value::Str(b)) => {
                assert_eq!(a, b);
                assert!(!Arc::ptr_eq(a, b), "rebox must copy");
            }
            _ => unreachable!(),
        }
    }
}
