//! Criterion benchmarks for the hot serving paths: featurization,
//! model prediction, cascade serving, and top-K filtering. These track
//! performance regressions; the paper-shaped experiment tables come
//! from the `fig*`/`table*` binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use willump::{QueryMode, Willump, WillumpConfig};
use willump_graph::{EngineMode, Executor, InputRow};
use willump_workloads::{WorkloadConfig, WorkloadKind};

fn bench_featurization(c: &mut Criterion) {
    let w = WorkloadKind::Toxic
        .generate(&WorkloadConfig::small())
        .expect("workload generates");
    let compiled =
        Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).expect("executor");
    let interp =
        Executor::new(w.pipeline.graph().clone(), EngineMode::Interpreted).expect("executor");
    let mut g = c.benchmark_group("featurization_toxic");
    g.bench_function("compiled_batch", |b| {
        b.iter(|| compiled.features_batch(&w.test, None).expect("features"))
    });
    g.bench_function("interpreted_batch", |b| {
        b.iter(|| interp.features_batch(&w.test, None).expect("features"))
    });
    let input = InputRow::from_table(&w.test, 0).expect("row");
    g.bench_function("compiled_single", |b| {
        b.iter(|| compiled.features_one(&input, None).expect("features"))
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let w = WorkloadKind::Music
        .generate(&WorkloadConfig::small())
        .expect("workload generates");
    let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).expect("executor");
    let feats = exec.features_batch(&w.train, None).expect("features");
    let model = w
        .pipeline
        .spec()
        .fit(&feats, &w.train_y, 1)
        .expect("model trains");
    let test_feats = exec.features_batch(&w.test, None).expect("features");
    c.bench_function("gbdt_predict_batch", |b| {
        b.iter(|| model.predict_scores(&test_feats))
    });
}

fn bench_cascades(c: &mut Criterion) {
    let w = WorkloadKind::Product
        .generate(&WorkloadConfig::small())
        .expect("workload generates");
    let opt = Willump::new(WillumpConfig::default())
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
    let mut g = c.benchmark_group("cascade_product");
    g.bench_function("cascade_batch", |b| {
        b.iter(|| opt.predict_batch(&w.test).expect("predicts"))
    });
    let input = InputRow::from_table(&w.test, 0).expect("row");
    g.bench_function("cascade_single", |b| {
        b.iter(|| opt.predict_one(&input).expect("predicts"))
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let w = WorkloadKind::Price
        .generate(&WorkloadConfig::small())
        .expect("workload generates");
    let cfg = WillumpConfig {
        mode: QueryMode::TopK { k: 20 },
        ..WillumpConfig::default()
    };
    let opt = Willump::new(cfg)
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimizes");
    c.bench_function("topk_price_filtered", |b| {
        b.iter_batched(
            || (),
            |()| opt.top_k(&w.test, 20).expect("top-K"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_vectorizers(c: &mut Criterion) {
    use willump_featurize::{HashingVectorizer, TfIdfVectorizer, VectorizerConfig};
    let docs: Vec<String> = {
        let mut rng = willump_data::rng::seeded(5);
        let vocab = willump_data::text::SyntheticVocab::new(2_000);
        (0..500)
            .map(|_| vocab.document(&mut rng, 20, None, 0.0))
            .collect()
    };
    let mut tfidf = TfIdfVectorizer::new(VectorizerConfig::default()).expect("config valid");
    tfidf.fit(&docs);
    let hashing =
        HashingVectorizer::new(VectorizerConfig::default(), 1 << 12).expect("config valid");
    let mut g = c.benchmark_group("vectorizers");
    g.bench_function("tfidf_batch_500", |b| {
        b.iter(|| tfidf.transform(&docs).expect("fitted"))
    });
    g.bench_function("hashing_batch_500", |b| b.iter(|| hashing.transform(&docs)));
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    use willump_models::{IsotonicCalibrator, PlattScaler};
    let scores: Vec<f64> = (0..5_000).map(|i| (i % 1000) as f64 / 1000.0).collect();
    let labels: Vec<f64> = scores.iter().map(|s| f64::from(*s > 0.4)).collect();
    let platt = PlattScaler::fit(&scores, &labels).expect("fits");
    let iso = IsotonicCalibrator::fit(&scores, &labels).expect("fits");
    let mut g = c.benchmark_group("calibration");
    g.bench_function("platt_batch_5k", |b| {
        b.iter(|| platt.calibrate_batch(&scores))
    });
    g.bench_function("isotonic_batch_5k", |b| {
        b.iter(|| iso.calibrate_batch(&scores))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_featurization, bench_models, bench_cascades, bench_topk,
              bench_vectorizers, bench_calibration
}
criterion_main!(benches);
