//! Reusable open-loop load generator.
//!
//! Extracted from the `table9` overload experiment so every serving
//! benchmark offers traffic the same way: arrivals are scheduled
//! up-front (Poisson or uniform), sender threads share the schedule
//! round-robin, and latency is charged from each request's *scheduled*
//! arrival time — not its send time — so queue-induced send delay
//! counts against the system under test (no coordinated omission,
//! after Schwartz/Tene's critique of closed-loop benchmarking).
//!
//! The generator knows nothing about serving: callers hand
//! [`open_loop`] a closure mapping a request index to a
//! [`CallOutcome`], and get back a [`LoadReport`] with served/shed
//! counts and a sorted latency distribution (p50/p99/p99.9).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// What one offered request came back as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOutcome {
    /// Served successfully: the scheduled-to-response time is recorded
    /// as a latency sample.
    Served,
    /// Shed by admission control: counted, but no latency sample
    /// (nothing was served).
    Shed,
    /// Failed: counted separately so experiments can assert error-free
    /// runs without panicking inside sender threads.
    Error,
}

/// A pre-drawn Poisson arrival schedule: `n` offsets (seconds from
/// test start) with exponential inter-arrivals at `rate_per_sec`.
#[must_use]
pub fn poisson_schedule(rate_per_sec: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            // Uniform in (0, 1]: never ln(0).
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            t += -(1.0 - u).ln() / rate_per_sec;
            t
        })
        .collect()
}

/// A deterministic uniform arrival schedule: request `i` is offered at
/// `i / rate_per_sec` seconds.
#[must_use]
pub fn uniform_schedule(rate_per_sec: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64 / rate_per_sec).collect()
}

/// The outcome of one [`open_loop`] run: outcome counts plus the
/// sorted latency distribution of served requests.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests offered (the schedule length).
    pub offered: u64,
    /// Requests served (equals the number of latency samples).
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Scheduled-arrival-to-response latencies of served requests,
    /// seconds, ascending.
    latencies: Vec<f64>,
}

impl LoadReport {
    /// The `q`-quantile (`0.0..=1.0`) of served latency, seconds
    /// (nearest-rank; `0.0` when nothing was served).
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies[idx]
    }

    /// Median served latency, seconds.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 99th-percentile served latency, seconds.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile served latency, seconds.
    #[must_use]
    pub fn p999(&self) -> f64 {
        self.percentile(0.999)
    }

    /// The sorted latency samples (seconds, ascending).
    #[must_use]
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }
}

/// Drive one open-loop cell: `threads` sender threads share the
/// arrival schedule round-robin; each sleeps until a request's
/// scheduled time, invokes `call(i)`, and charges the full
/// scheduled-to-response time as that request's latency when it was
/// served. Shed and errored requests are counted but contribute no
/// latency sample.
///
/// `call` receives the request's schedule index and must be shareable
/// across sender threads ([`willump_serve::RuntimeClient`]-style
/// handles are `Sync`; capture one by reference).
///
/// # Panics
/// Panics if a sender thread panics inside `call`.
pub fn open_loop(
    arrivals: &[f64],
    threads: usize,
    call: impl Fn(usize) -> CallOutcome + Sync,
) -> LoadReport {
    let latencies = Mutex::new(Vec::with_capacity(arrivals.len()));
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let call = &call;
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let latencies = &latencies;
            let shed = &shed;
            let errors = &errors;
            s.spawn(move || {
                let mut i = tid;
                while i < arrivals.len() {
                    let at = arrivals[i];
                    let now = start.elapsed().as_secs_f64();
                    if at > now {
                        std::thread::sleep(Duration::from_secs_f64(at - now));
                    }
                    let outcome = call(i);
                    let done = start.elapsed().as_secs_f64();
                    match outcome {
                        CallOutcome::Served => latencies
                            .lock()
                            .expect("no panicked sender")
                            .push(done - at),
                        CallOutcome::Shed => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        CallOutcome::Error => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += threads;
                }
            });
        }
    });
    let mut lat = latencies.into_inner().expect("no panicked sender");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    LoadReport {
        offered: arrivals.len() as u64,
        served: lat.len() as u64,
        shed: shed.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        latencies: lat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn poisson_schedule_is_seeded_and_monotone() {
        let a = poisson_schedule(100.0, 500, 7);
        let b = poisson_schedule(100.0, 500, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1] > w[0]));
        assert_ne!(a, poisson_schedule(100.0, 500, 8));
        // Mean inter-arrival ~ 1/rate: the 500th arrival lands near 5s.
        assert!((3.0..8.0).contains(a.last().unwrap()), "{:?}", a.last());
    }

    #[test]
    fn uniform_schedule_is_exact() {
        let s = uniform_schedule(200.0, 4);
        assert_eq!(s, vec![0.0, 0.005, 0.01, 0.015]);
    }

    #[test]
    fn open_loop_counts_outcomes_and_records_latency() {
        let arrivals = uniform_schedule(2_000.0, 30);
        let calls = AtomicUsize::new(0);
        let report = open_loop(&arrivals, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            match i % 3 {
                0 => CallOutcome::Served,
                1 => CallOutcome::Shed,
                _ => CallOutcome::Error,
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 30);
        assert_eq!(report.offered, 30);
        assert_eq!(report.served, 10);
        assert_eq!(report.shed, 10);
        assert_eq!(report.errors, 10);
        assert_eq!(report.latencies().len(), 10);
        // Latencies are sorted and non-negative (scheduled arrival is
        // always at or before the response).
        assert!(report.latencies().windows(2).all(|w| w[0] <= w[1]));
        assert!(report.latencies().iter().all(|&l| l >= 0.0));
        assert!(report.p50() <= report.p99() && report.p99() <= report.p999());
    }

    #[test]
    fn open_loop_charges_from_scheduled_arrival() {
        // One slow request delays its thread; the next request on that
        // thread still charges from its *scheduled* time, so its
        // latency includes the queueing delay.
        let arrivals = vec![0.0, 0.0];
        let report = open_loop(&arrivals, 1, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(30));
            }
            CallOutcome::Served
        });
        assert_eq!(report.served, 2);
        // Both samples include the 30ms head-of-line delay.
        assert!(report.percentile(1.0) >= 0.03, "{:?}", report.latencies());
    }

    #[test]
    fn empty_report_percentiles_are_zero() {
        let report = open_loop(&[], 2, |_| CallOutcome::Served);
        assert_eq!(report.offered, 0);
        assert_eq!(report.p50(), 0.0);
        assert_eq!(report.p999(), 0.0);
    }
}
