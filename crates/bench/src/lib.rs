//! # willump-bench
//!
//! Shared harness for the experiment binaries that regenerate every
//! table and figure of the Willump paper's evaluation (§6). Each
//! binary prints a paper-shaped table; `EXPERIMENTS.md` records the
//! measured output next to the paper's numbers.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run -p willump-bench --release --bin fig5
//! ```
//!
//! Timing convention: every measurement reports *effective* time =
//! wall-clock time plus any simulated network wait charged to the
//! workload's virtual clock (see `willump-store::SimClock`), so local
//! and remote configurations are directly comparable.

#![warn(missing_docs)]

pub mod loadgen;

use std::time::Instant;

use willump::{CachingConfig, OptimizedPipeline, QueryMode, Willump, WillumpConfig};
use willump_data::Table;
use willump_graph::InputRow;
use willump_serve::{table_row_to_wire, ServingRuntime, WireRow};
use willump_workloads::{Workload, WorkloadConfig, WorkloadKind};

/// Default experiment sizes (larger than unit-test sizes, small enough
/// to finish a full `cargo bench` run in minutes).
pub fn experiment_config() -> WorkloadConfig {
    WorkloadConfig {
        n_train: 2_000,
        n_valid: 1_000,
        n_test: 2_000,
        seed: 42,
        remote: None,
    }
}

/// The three optimization levels of paper Figures 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Original interpreted pipeline ("Python").
    Python,
    /// Compiled engine, no statistically-aware optimizations
    /// ("Willump Compilation").
    Compiled,
    /// Compiled engine plus end-to-end cascades
    /// ("Willump Compilation + Cascades").
    Cascades,
}

impl OptLevel {
    /// Column label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Python => "Python",
            OptLevel::Compiled => "Compilation",
            OptLevel::Cascades => "Compilation+Cascades",
        }
    }
}

/// Virtual-clock nanos for a workload (0 when no store).
pub fn virtual_nanos(w: &Workload) -> u64 {
    w.store.as_ref().map_or(0, |s| s.clock().now_nanos())
}

/// Measure effective seconds (wall + virtual) of a closure.
pub fn effective_seconds<T>(w: &Workload, f: impl FnOnce() -> T) -> (f64, T) {
    let v0 = virtual_nanos(w);
    let start = Instant::now();
    let out = f();
    let wall = start.elapsed().as_secs_f64();
    let v1 = virtual_nanos(w);
    (wall + (v1 - v0) as f64 / 1e9, out)
}

/// Optimize a workload at a given level, with optional overrides.
///
/// # Panics
/// Panics on optimization failure (experiment binaries fail loudly).
pub fn optimize_level(
    w: &Workload,
    level: OptLevel,
    mode: QueryMode,
    caching: Option<CachingConfig>,
    threads: usize,
) -> OptimizedPipeline {
    assert_ne!(level, OptLevel::Python, "Python level has no optimizer");
    let cfg = WillumpConfig {
        cascades: level == OptLevel::Cascades,
        mode,
        caching,
        threads,
        ..WillumpConfig::default()
    };
    Willump::new(cfg)
        .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
        .expect("optimization succeeds")
}

/// Train the interpreted baseline.
///
/// # Panics
/// Panics on training failure.
pub fn baseline(w: &Workload) -> willump::BaselinePipeline {
    w.pipeline
        .fit_baseline(&w.train, &w.train_y, 42)
        .expect("baseline training succeeds")
}

/// Batch throughput (rows/s, effective time) of a closure processing
/// the workload's test set `reps` times.
pub fn batch_throughput(w: &Workload, reps: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up run (populates lazily-initialized state).
    f();
    let (secs, ()) = effective_seconds(w, || {
        for _ in 0..reps {
            f();
        }
    });
    (w.test.n_rows() * reps) as f64 / secs
}

/// The first `max_rows` of the workload's test set, for bounded-cost
/// measurements of the interpreted baseline (see
/// [`python_sample_rows`]).
pub fn test_sample(w: &Workload, max_rows: usize) -> willump_data::Table {
    let idx: Vec<usize> = (0..w.test.n_rows().min(max_rows)).collect();
    w.test.take_rows(&idx)
}

/// Sample size used when timing the interpreted ("Python") baseline on
/// batch queries. The interpreted engine's row-at-a-time text
/// featurization is 2–3 orders of magnitude slower than the compiled
/// engine, so timing it over the full test set would dominate the
/// entire experiment suite; throughput and latency are per-row rates,
/// and a few hundred rows estimate them stably (EXPERIMENTS.md notes
/// this). Optimized configurations are always measured on the full
/// test set.
pub const PYTHON_SAMPLE_ROWS: usize = 300;

/// Convenience: `PYTHON_SAMPLE_ROWS` as a function for binaries.
pub fn python_sample_rows() -> usize {
    PYTHON_SAMPLE_ROWS
}

/// Batch throughput (rows/s, effective time) of a closure processing
/// an explicit `n_rows`-row table once per rep, with one warm-up call.
pub fn batch_throughput_rows(w: &Workload, n_rows: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let (secs, ()) = effective_seconds(w, || {
        for _ in 0..reps {
            f();
        }
    });
    (n_rows * reps) as f64 / secs
}

/// Mean per-input latency (seconds, effective time) over the first
/// `n` test rows.
///
/// # Panics
/// Panics if prediction fails.
pub fn per_input_latency(w: &Workload, n: usize, mut predict: impl FnMut(&InputRow) -> f64) -> f64 {
    let n = n.min(w.test.n_rows());
    let inputs: Vec<InputRow> = (0..n)
        .map(|r| InputRow::from_table(&w.test, r).expect("row in range"))
        .collect();
    // Warm-up on one input.
    let _ = predict(&inputs[0]);
    let (secs, ()) = effective_seconds(w, || {
        for input in &inputs {
            let _ = predict(input);
        }
    });
    secs / n as f64
}

/// Where the benchmark-trajectory capture lives, relative to the
/// working directory the experiment binaries run from (the repository
/// root under `cargo run`).
pub const EXPERIMENTS_PATH: &str = "EXPERIMENTS.md";

/// Preamble written when EXPERIMENTS.md does not exist yet.
const EXPERIMENTS_PREAMBLE: &str = "# EXPERIMENTS\n\n\
Benchmark-trajectory capture (ROADMAP item). Each section below is\n\
recorded by one experiment binary's `--record` flag, delimited by its\n\
`<!-- schema: ... -->` marker, and schema-checked by that binary's\n\
`--smoke` run in CI. Re-recording one binary leaves the other\n\
sections untouched.\n";

/// Pure section-replacement: a section spans from its
/// `<!-- schema: ... -->` marker line to the next marker (or EOF).
/// Replaces the `schema` section's content with `body`, or appends a
/// new section when the marker is absent.
fn upsert_section(existing: &str, schema: &str, body: &str) -> String {
    let section = format!("{schema}\n\n{}\n", body.trim_matches('\n'));
    let mut out = String::new();
    let mut replaced = false;
    let mut skipping = false;
    for line in existing.lines() {
        let is_marker = line.trim_start().starts_with("<!-- schema:");
        if is_marker {
            if line.trim() == schema {
                // The blank line that separated the old section from
                // the next marker is inside the skipped span, so emit
                // a fresh one to keep re-records byte-stable.
                out.push_str(&section);
                out.push('\n');
                replaced = true;
                skipping = true;
                continue;
            }
            skipping = false;
        }
        if !skipping {
            out.push_str(line);
            out.push('\n');
        }
    }
    if !replaced {
        while !out.is_empty() && !out.ends_with("\n\n") {
            out.push('\n');
        }
        out.push_str(&section);
    }
    // A replaced final section would otherwise leave a trailing blank.
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

/// Record one experiment's section of `EXPERIMENTS.md`, preserving
/// every other binary's section (a section spans from its
/// `<!-- schema: ... -->` marker to the next marker or EOF, and is
/// replaced in place; a new marker appends).
///
/// # Panics
/// Panics when the file cannot be written.
pub fn record_experiments_section(schema: &str, body: &str) {
    let existing = std::fs::read_to_string(EXPERIMENTS_PATH)
        .unwrap_or_else(|_| EXPERIMENTS_PREAMBLE.to_string());
    std::fs::write(EXPERIMENTS_PATH, upsert_section(&existing, schema, body))
        .expect("write EXPERIMENTS.md");
    println!("\nrecorded section {schema} -> {EXPERIMENTS_PATH}");
}

/// Every recording binary's `(schema header, record command)` pair —
/// the registry audited by `xtask lint` rule WL004
/// (schema-registration): every recording binary's schema must be
/// listed here, every entry must map to a live binary, and every
/// registered section must exist in the committed EXPERIMENTS.md. A
/// binary whose schema constant drifts from this table also fails its
/// own `--smoke` run (see [`run_recorded_experiment`]), so the
/// registry cannot silently go stale.
pub const RECORDED_SCHEMAS: &[(&str, &str)] = &[
    (
        "<!-- schema: micro-wirecodec v1 -->",
        "cargo run --release -p willump-bench --bin micro -- --record",
    ),
    (
        "<!-- schema: table2-remote-requests v1 -->",
        "cargo run --release -p willump-bench --bin table2 -- --record",
    ),
    (
        "<!-- schema: table3-per-input-latency v1 -->",
        "cargo run --release -p willump-bench --bin table3 -- --record",
    ),
    (
        "<!-- schema: table6-serving-sweep v3 -->",
        "cargo run --release -p willump-bench --bin table6 -- --record",
    ),
    (
        "<!-- schema: table7-topk-subset v1 -->",
        "cargo run --release -p willump-bench --bin table7 -- --record",
    ),
    (
        "<!-- schema: table8-ifv-strategies v1 -->",
        "cargo run --release -p willump-bench --bin table8 -- --record",
    ),
    (
        "<!-- schema: table9-admission-overload v1 -->",
        "cargo run --release -p willump-bench --bin table9 -- --record",
    ),
    (
        "<!-- schema: table10-cluster-recovery v1 -->",
        "cargo run --release -p willump-bench --bin table10 -- --record",
    ),
    (
        "<!-- schema: table11-streaming v1 -->",
        "cargo run --release -p willump-bench --bin table11 -- --record",
    ),
    (
        "<!-- schema: fig5-batch-throughput v1 -->",
        "cargo run --release -p willump-bench --bin fig5 -- --record",
    ),
    (
        "<!-- schema: fig6-per-input-latency v1 -->",
        "cargo run --release -p willump-bench --bin fig6 -- --record",
    ),
    (
        "<!-- schema: fig7-threshold-sweep v1 -->",
        "cargo run --release -p willump-bench --bin fig7 -- --record",
    ),
    (
        "<!-- schema: fig8-parallel-speedup v1 -->",
        "cargo run --release -p willump-bench --bin fig8 -- --record",
    ),
];

/// The CI smoke check: the committed EXPERIMENTS.md must carry the
/// schema marker this binary records (single source of truth is the
/// binary's schema constant — bump both together).
///
/// # Panics
/// Panics when the file is missing or lacks the marker.
pub fn assert_experiments_schema(schema: &str, record_cmd: &str) {
    let recorded = std::fs::read_to_string(EXPERIMENTS_PATH)
        .unwrap_or_else(|_| panic!("EXPERIMENTS.md missing; run `{record_cmd}` and commit it"));
    assert!(
        recorded.contains(schema),
        "EXPERIMENTS.md lacks schema header {schema:?}; re-record with `{record_cmd}`"
    );
    println!("\nEXPERIMENTS.md schema header OK: {schema}");
}

/// The whole `--smoke`/`--record` workflow every recording binary
/// shares: parse the flags, run the measurement (`run(smoke)` returns
/// the printed output and the full EXPERIMENTS.md section body),
/// print it, validate the committed schema header on `--smoke`, and
/// rewrite this binary's section on `--record`. Keeping the flag
/// semantics here means a workflow change edits one function, not ten
/// `main`s. (Registry-wide validation — every registered section
/// present in EXPERIMENTS.md, no stale entries — lives in `xtask
/// lint` rule WL004, which subsumed the old `--check-schemas` mode.)
///
/// # Panics
/// Panics on unknown flags, a schema constant missing from
/// [`RECORDED_SCHEMAS`], a missing/stale schema header during
/// `--smoke`, or an unwritable EXPERIMENTS.md during `--record`.
pub fn run_recorded_experiment(
    schema: &str,
    record_cmd: &str,
    run: impl FnOnce(bool) -> (String, String),
) {
    assert!(
        RECORDED_SCHEMAS.iter().any(|(s, _)| *s == schema),
        "schema {schema:?} is not in RECORDED_SCHEMAS; register it so \
         `xtask lint` (WL004) covers this binary"
    );
    let flags = experiment_flags();
    let (output, record_body) = run(flags.smoke);
    print!("{output}");
    if flags.smoke {
        assert_experiments_schema(schema, record_cmd);
    }
    if flags.record && !flags.smoke {
        record_experiments_section(schema, &record_body);
    }
}

/// Parsed command-line flags shared by every recording experiment
/// binary (see [`experiment_flags`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExperimentFlags {
    /// `--smoke`: tiny CI-speed pass + schema-header assertion.
    pub smoke: bool,
    /// `--record`: rewrite this binary's EXPERIMENTS.md section.
    pub record: bool,
}

/// Parse the `--smoke` / `--record` flags every recording experiment
/// binary shares; panics on unknown arguments.
pub fn experiment_flags() -> ExperimentFlags {
    let mut flags = ExperimentFlags::default();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" => flags.smoke = true,
            "--record" => flags.record = true,
            other => panic!("unknown flag {other}; supported: --smoke --record"),
        }
    }
    flags
}

/// Render a markdown table (title as an `##` heading, aligned cells).
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let mut out = format!("\n## {title}\n\n");
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Pretty-print a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(title, headers, rows));
}

/// Format a throughput as `12.3K rows/s`-style strings.
pub fn fmt_throughput(rows_per_sec: f64) -> String {
    if rows_per_sec >= 1e6 {
        format!("{:.2}M", rows_per_sec / 1e6)
    } else if rows_per_sec >= 1e3 {
        format!("{:.1}K", rows_per_sec / 1e3)
    } else {
        format!("{rows_per_sec:.0}")
    }
}

/// Format a latency in adaptive units.
pub fn fmt_latency(seconds: f64) -> String {
    if seconds >= 1e-3 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{:.0}us", seconds * 1e6)
    }
}

/// Format a speedup factor.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.1}x")
}

/// Serving throughput (rows/s, wall-clock) through a
/// [`ServingRuntime`] under `clients` closed-loop concurrent client
/// threads, each sending `reqs` requests of `batch` rows drawn
/// cyclically from `test` at a per-client offset. Requests address
/// `endpoint` when given (`None` measures the default endpoint, which
/// is also what the legacy `ClipperServer` shim serves — reach its
/// runtime via `ClipperServer::runtime`). Request payloads are
/// pre-serialized into wire rows before the clock starts and each
/// client sends one warm-up request, so the measurement covers the
/// serving boundary (JSON codec, routing, queueing, batching,
/// prediction), not test-harness setup.
///
/// # Panics
/// Panics if serving fails or `test` is empty.
pub fn serving_throughput(
    runtime: &ServingRuntime,
    endpoint: Option<&str>,
    test: &Table,
    batch: usize,
    clients: usize,
    reqs: usize,
) -> f64 {
    let n = test.n_rows();
    assert!(n > 0, "empty test table");
    let per_client: Vec<Vec<Vec<WireRow>>> = (0..clients)
        .map(|c| {
            (0..reqs)
                .map(|r| {
                    (0..batch)
                        .map(|i| {
                            table_row_to_wire(test, (c * 7919 + r * batch + i) % n).expect("row")
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let barrier = std::sync::Barrier::new(clients + 1);
    let start = std::thread::scope(|s| {
        for requests in &per_client {
            let client = runtime.client();
            let barrier = &barrier;
            let send = move |rows: Vec<WireRow>| match endpoint {
                Some(name) => client.predict_endpoint(name, rows),
                None => client.predict(rows),
            };
            s.spawn(move || {
                send(requests[0].clone()).expect("warm-up succeeds");
                barrier.wait();
                for rows in requests {
                    send(rows.clone()).expect("serving succeeds");
                }
            });
        }
        barrier.wait();
        Instant::now()
    });
    // scope joins every client before returning, so `start.elapsed()`
    // spans exactly the post-warm-up request storm.
    (clients * reqs * batch) as f64 / start.elapsed().as_secs_f64()
}

/// Generate one workload at experiment size.
///
/// # Panics
/// Panics on generation failure.
pub fn generate(kind: WorkloadKind, remote: bool) -> Workload {
    let mut cfg = experiment_config();
    if remote {
        cfg = cfg.with_remote_tables();
    }
    kind.generate(&cfg).expect("workload generates")
}

/// The shared tiny workload config every `--smoke` binary uses.
fn smoke_config() -> WorkloadConfig {
    WorkloadConfig {
        n_train: 300,
        n_valid: 150,
        n_test: 200,
        seed: 42,
        remote: None,
    }
}

/// Generate one workload at the shared CI-speed smoke size,
/// optionally with remote tables (shared by every recording binary's
/// `--smoke` pass).
///
/// # Panics
/// Panics on generation failure.
pub fn generate_smoke(kind: WorkloadKind, remote: bool) -> Workload {
    let mut cfg = smoke_config();
    if remote {
        cfg = cfg.with_remote_tables();
    }
    kind.generate(&cfg).expect("workload generates")
}

/// Generate a remote-tables workload at experiment size, or at a tiny
/// smoke size for CI-speed passes (shared by the `table2`/`table3`
/// recording binaries).
///
/// # Panics
/// Panics on generation failure.
pub fn generate_remote(kind: WorkloadKind, smoke: bool) -> Workload {
    let base = if smoke {
        smoke_config()
    } else {
        experiment_config()
    };
    kind.generate(&base.with_remote_tables())
        .expect("workload generates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_throughput(1_500_000.0), "1.50M");
        assert_eq!(fmt_throughput(12_300.0), "12.3K");
        assert_eq!(fmt_throughput(42.0), "42");
        assert_eq!(fmt_latency(0.0042), "4.20ms");
        assert_eq!(fmt_latency(55e-6), "55us");
        assert_eq!(fmt_speedup(3.17), "3.2x");
    }

    #[test]
    fn effective_time_includes_virtual_wait() {
        // Small config: this only exercises the clock accounting.
        let cfg = WorkloadConfig {
            n_train: 200,
            n_valid: 100,
            n_test: 100,
            ..WorkloadConfig::default()
        }
        .with_remote_tables();
        let w = WorkloadKind::Music.generate(&cfg).expect("generates");
        let store = w.store.clone().unwrap();
        let (secs, ()) = effective_seconds(&w, || {
            store.clock().advance(50_000_000); // 50ms of virtual wait
        });
        assert!(secs >= 0.05, "effective {secs}");
    }

    #[test]
    fn upsert_section_replaces_and_appends() {
        let s1 = "<!-- schema: alpha v1 -->";
        let s2 = "<!-- schema: beta v1 -->";
        // Append to a fresh preamble.
        let one = upsert_section("# EXPERIMENTS\n", s1, "alpha body\n");
        assert!(one.starts_with("# EXPERIMENTS\n"));
        assert!(one.contains("alpha body"));
        // Append a second section; the first survives.
        let two = upsert_section(&one, s2, "beta body");
        assert!(two.contains("alpha body") && two.contains("beta body"));
        // Replace the first section only.
        let three = upsert_section(&two, s1, "alpha v2 body");
        assert!(!three.contains("alpha body\n"), "{three}");
        assert!(three.contains("alpha v2 body") && three.contains("beta body"));
        // Section order is stable and markers appear exactly once.
        assert_eq!(three.matches(s1).count(), 1);
        assert_eq!(three.matches(s2).count(), 1);
        assert!(three.find(s1).unwrap() < three.find(s2).unwrap());
        // Re-recording identical content is byte-stable, for every
        // section position (middle and last).
        assert_eq!(upsert_section(&three, s1, "alpha v2 body"), three);
        assert_eq!(upsert_section(&three, s2, "beta body"), three);
    }

    #[test]
    fn recorded_schema_registry_is_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (schema, cmd) in RECORDED_SCHEMAS {
            assert!(
                schema.starts_with("<!-- schema: ") && schema.ends_with(" -->"),
                "malformed marker {schema:?}"
            );
            assert!(seen.insert(schema), "duplicate schema {schema:?}");
            // Each record command targets the binary the schema names.
            let bin = schema
                .trim_start_matches("<!-- schema: ")
                .split('-')
                .next()
                .unwrap();
            assert!(
                cmd.contains(&format!("--bin {bin} ")) && cmd.ends_with("--record"),
                "command {cmd:?} does not record {bin}"
            );
        }
    }

    #[test]
    fn levels_have_labels() {
        assert_eq!(OptLevel::Python.label(), "Python");
        assert_eq!(OptLevel::Cascades.label(), "Compilation+Cascades");
    }

    #[test]
    fn test_sample_bounds_rows() {
        let cfg = WorkloadConfig {
            n_train: 200,
            n_valid: 100,
            n_test: 50,
            ..WorkloadConfig::default()
        };
        let w = WorkloadKind::Product.generate(&cfg).expect("generates");
        assert_eq!(test_sample(&w, 10).n_rows(), 10);
        // Caps at the test set size when the sample is larger.
        assert_eq!(test_sample(&w, 500).n_rows(), 50);
        const { assert!(PYTHON_SAMPLE_ROWS >= 100, "sample must stay meaningful") };
    }
}
