//! Table 11 (repo extension): a stateful streaming workload under
//! open-loop load, watched live through the `StatsHub` monitor.
//!
//! The clickstream workload (remote lookups + live event folds) is
//! optimized to a `ServingPlan` and served over 2 local shards plus 1
//! in-process remote shard, with feature-store lookups behind a
//! real-sleeping network model so each request has a known fixed
//! service time and the nominal capacity is honest. Three cells offer
//! Poisson traffic at 0.5x, 1x, and 3x of capacity while:
//!
//! - a writer thread continuously folds click events into the
//!   feature-store tables the serving path reads (`ClickstreamFolder`
//!   — the stateful-streaming part);
//! - a background [`StatsHub`] sampler records per-interval counter
//!   deltas and topology events;
//! - one third into the top-rate cell, the remote shard is
//!   live-drained under load, and the drain must be visible purely in
//!   the monitor's event feed (`ShardDraining` -> `ShardRemoved`).
//!
//! Past capacity the open loop shows queueing collapse: p99 measured
//! from *scheduled* arrival (coordinated-omission-safe) grows by
//! multiples, which the recorded table captures alongside the
//! monitor's view of the same run. Flags (mirroring the other
//! recording binaries):
//!
//! - `--smoke`: tiny CI-speed run + EXPERIMENTS.md schema check.
//! - `--record`: rewrite this binary's EXPERIMENTS.md section.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use willump::{QueryMode, ServingPlan, Willump, WillumpConfig};
use willump_bench::loadgen::{open_loop, poisson_schedule, CallOutcome, LoadReport};
use willump_bench::{format_table, run_recorded_experiment};
use willump_serve::{
    table_row_to_wire, InProcessWorker, MonitorConfig, MonitorEvent, ServerConfig, ServingRuntime,
    StatsHub, WireRow,
};
use willump_store::LatencyModel;
use willump_workloads::clickstream::{event_stream, ClickstreamFolder};
use willump_workloads::{Workload, WorkloadConfig, WorkloadKind};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table11-streaming v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table11 -- --record";

/// Store lookup per-key cost (small against the round trip, so the
/// per-request service time is ~2 round trips: one per joined table).
const PER_KEY_NANOS: u64 = 10_000;
const WORKERS: usize = 2;
/// 2 local shards + 1 in-process remote shard (index 2, the drain
/// target).
const LOCAL_SHARDS: usize = 2;
const REMOTE_SHARD: usize = 2;

/// Per-run parameters: the smoke cell must finish in CI seconds.
struct Params {
    round_trip: Duration,
    multipliers: &'static [f64],
    duration: f64,
    threads: usize,
    sample_interval: Duration,
}

fn params(smoke: bool) -> Params {
    if smoke {
        Params {
            round_trip: Duration::from_millis(1),
            multipliers: &[0.5, 3.0],
            duration: 0.25,
            threads: 32,
            sample_interval: Duration::from_millis(10),
        }
    } else {
        Params {
            round_trip: Duration::from_millis(2),
            multipliers: &[0.5, 1.0, 3.0],
            duration: 2.0,
            threads: 128,
            sample_interval: Duration::from_millis(20),
        }
    }
}

/// Generate the clickstream workload with real-sleeping store lookups
/// and compile its serving plan (no cascades: every request pays both
/// table lookups, keeping the per-request service time fixed).
fn build_plan(p: &Params, smoke: bool) -> (Workload, ServingPlan) {
    let (n_train, n_valid, n_test) = if smoke {
        (300, 150, 200)
    } else {
        (1_200, 600, 1_200)
    };
    let cfg = WorkloadConfig {
        n_train,
        n_valid,
        n_test,
        seed: 42,
        remote: Some(LatencyModel::real_network(
            u64::try_from(p.round_trip.as_nanos()).expect("round trip fits"),
            PER_KEY_NANOS,
        )),
    };
    let w = WorkloadKind::Clickstream
        .generate(&cfg)
        .expect("workload generates");
    let plan = Willump::new(WillumpConfig {
        cascades: false,
        mode: QueryMode::ExampleAtATime,
        ..WillumpConfig::default()
    })
    .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
    .expect("optimization succeeds")
    .serving_plan();
    (w, plan)
}

/// One fresh runtime per cell (queue state never leaks between
/// cells): 2 local shards + 1 in-process remote shard serving a clone
/// of the same plan against the same shared store.
fn build_runtime(plan: &ServingPlan) -> (ServingRuntime, ServingRuntime) {
    let mut backend = ServingRuntime::builder();
    backend.config(ServerConfig::builder().workers(WORKERS).build());
    backend.plan("clickstream", plan.clone()).shards(1);
    let backend = backend.build().expect("backend builds");

    let mut b = ServingRuntime::builder();
    b.config(
        ServerConfig::builder()
            .workers(WORKERS)
            .coalesce(false)
            .build(),
    );
    b.plan("clickstream", plan.clone())
        .shards(LOCAL_SHARDS)
        .shard_transport(Arc::new(InProcessWorker::new(&backend)));
    (b.build().expect("runtime builds"), backend)
}

struct CellResult {
    report: LoadReport,
    folded: u64,
    hub: StatsHub,
}

/// Drive one open-loop cell with the folder writing beside the
/// readers and the monitor sampling throughout. When `drain` is set,
/// one third in, the remote shard is live-drained under load.
fn run_cell(p: &Params, w: &Workload, plan: &ServingPlan, rate: f64, drain: bool) -> CellResult {
    let (runtime, _backend) = build_runtime(plan);
    let monitor = runtime.start_monitor(MonitorConfig {
        interval: p.sample_interval,
        history: 4_096,
        ..MonitorConfig::default()
    });

    let n = (rate * p.duration).ceil() as usize;
    let arrivals = poisson_schedule(rate, n, 42 + n as u64);
    let rows: Vec<WireRow> = (0..w.test.n_rows())
        .map(|r| table_row_to_wire(&w.test, r).expect("test row serializes"))
        .collect();
    let client = runtime.client();

    let folder = ClickstreamFolder::new(w.store.clone().expect("clickstream has a store"), 256);
    let events = event_stream(7, 512);
    let stop_writer = AtomicBool::new(false);

    let report = std::thread::scope(|s| {
        // The stateful-streaming part: click events fold into the
        // same store tables the serving path joins against.
        let writer = s.spawn(|| {
            let mut i = 0usize;
            while !stop_writer.load(Ordering::Relaxed) {
                folder
                    .fold(&events[i % events.len()])
                    .expect("folds never fail");
                i += 1;
            }
        });

        let load = s.spawn(|| {
            open_loop(&arrivals, p.threads, |i| {
                client
                    .predict_keyed(
                        "clickstream",
                        &format!("user-{i}"),
                        vec![rows[i % rows.len()].clone()],
                    )
                    .expect("serving succeeds");
                CallOutcome::Served
            })
        });

        if drain {
            // One third into the cell, live-drain the remote shard.
            // Sampling in a tight loop alongside the (blocking) drain
            // guarantees the monitor observes the draining window.
            std::thread::sleep(Duration::from_secs_f64(p.duration / 3.0));
            let drainer = s.spawn(|| {
                runtime
                    .drain_shard("clickstream", 1, REMOTE_SHARD, Duration::from_secs(30))
                    .expect("drain completes");
            });
            while !drainer.is_finished() {
                let _ = monitor.hub().sample_now(&runtime);
                std::thread::sleep(Duration::from_millis(2));
            }
            drainer.join().expect("drainer thread completes");
        }

        let report = load.join().expect("load threads complete");
        stop_writer.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread completes");
        report
    });

    // A final explicit sample so the hub's history ends at the cell's
    // settled state, then stop the background sampler.
    let _ = monitor.hub().sample_now(&runtime);
    let hub = monitor.stop();
    CellResult {
        report,
        folded: folder.folded(),
        hub,
    }
}

fn fmt_ms(seconds: f64) -> String {
    format!("{:.1}ms", seconds * 1e3)
}

fn sweep(smoke: bool) -> (String, String) {
    let p = params(smoke);
    // Per-request service: one round trip per joined table (2 tables),
    // per-key cost negligible. Capacity = workers / service.
    let service = 2.0 * p.round_trip.as_secs_f64();
    let capacity = WORKERS as f64 / service;
    let (w, plan) = build_plan(&p, smoke);

    let top = p.multipliers.last().copied().expect("multipliers set");
    let mut rows = Vec::new();
    let mut low_p99 = 0.0;
    let mut top_cell = None;
    for &mult in p.multipliers {
        let rate = capacity * mult;
        let cell = run_cell(&p, &w, &plan, rate, mult == top);
        assert_eq!(cell.report.errors, 0, "no request may fail");
        assert_eq!(
            cell.report.shed, 0,
            "no admission control in this experiment"
        );
        if mult == *p.multipliers.first().expect("multipliers set") {
            low_p99 = cell.report.p99();
        }
        rows.push(vec![
            format!("{mult}x"),
            format!("{rate:.0}/s"),
            cell.report.offered.to_string(),
            cell.report.served.to_string(),
            cell.folded.to_string(),
            fmt_ms(cell.report.p50()),
            fmt_ms(cell.report.p99()),
            fmt_ms(cell.report.p999()),
        ]);
        if mult == top {
            top_cell = Some(cell);
        }
    }
    let top_cell = top_cell.expect("top cell ran");

    // The monitor's view of the top cell, reconstructed purely from
    // hub history and events — no runtime inspection.
    let final_sample = top_cell.hub.latest().expect("sampler ran");
    assert_eq!(
        final_sample.requests, top_cell.report.offered,
        "the hub's final sample must account for every offered request"
    );
    let peak_rate = top_cell
        .hub
        .deltas()
        .iter()
        .map(|d| d.requests_per_sec())
        .fold(0.0f64, f64::max);
    let events = top_cell.hub.events();
    let drained = events
        .iter()
        .any(|e| matches!(&e.event, MonitorEvent::ShardDraining { endpoint, .. } if endpoint == "clickstream"));
    let removed = events
        .iter()
        .any(|e| matches!(&e.event, MonitorEvent::ShardRemoved { endpoint, .. } if endpoint == "clickstream"));
    assert!(
        removed,
        "the live drain must surface in the monitor event feed: {events:?}"
    );

    // THE acceptance checks (full runs only; smoke cells are too short
    // for stable percentiles): past capacity the open loop must show
    // queueing collapse, and the drain must be visible as a
    // draining-then-removed event sequence.
    let top_p99 = top_cell.report.p99();
    if !smoke {
        assert!(
            top_p99 >= 3.0 * low_p99,
            "no queueing collapse past capacity: p99 {top_p99:.4}s vs {low_p99:.4}s at 0.5x"
        );
        assert!(
            drained,
            "the draining window must be sampled before removal: {events:?}"
        );
    }

    let table = format_table(
        "Table 11: stateful streaming clickstream under open-loop load, monitored live",
        &[
            "offered load",
            "rate",
            "offered",
            "served",
            "events folded",
            "p50",
            "p99",
            "p99.9",
        ],
        &rows,
    );
    let monitor_summary = format!(
        "\nMonitor view of the {top}x cell: {} samples, final requests counter \
         {}, peak interval rate {peak_rate:.0} rows/s; live drain observed as \
         events [draining: {drained}, removed: {removed}].\n",
        top_cell.hub.samples().len(),
        final_sample.requests,
    );
    let output = format!("{table}{monitor_summary}");
    let body = format!(
        "Stateful streaming serving (repo extension beyond the paper):\n\
         the clickstream workload's plan (2 real-network store lookups\n\
         per request, {service:.3}s fixed service, no cascades) served over\n\
         2 local + 1 in-process remote shard at {capacity:.0} rows/s nominal\n\
         capacity ({WORKERS} workers), while a writer thread folds click\n\
         events into the same store tables and a StatsHub sampler\n\
         ({:?} interval) records deltas and topology events. One third\n\
         into the top cell the remote shard is live-drained under load.\n\
         Latency is measured from scheduled arrival\n\
         (coordinated-omission-safe). Regenerate with `{RECORD_CMD}`.\n{output}",
        p.sample_interval,
    );
    (output, body)
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, sweep);
}
