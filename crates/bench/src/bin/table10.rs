//! Table 10 (repo extension): cluster recovery under open-loop load —
//! kill-and-recover a remote node with the control-plane prober on and
//! off.
//!
//! One endpoint serves 2 local + 2 remote shards (a real
//! `RemoteRuntimeNode` TCP child in this process). An open-loop
//! generator offers uniform traffic for the whole run; one third in,
//! the node is killed; two thirds in, it is restarted **at the same
//! address**. Both cells use a long-cooldown circuit breaker (no
//! in-band half-open), so re-admission can only come from the
//! background health prober (`ServingRuntime::start_cluster`):
//!
//! - **prober off**: the recovered node is never re-admitted — every
//!   keyed-to-remote request for the rest of the run fails over to a
//!   local shard and the remote capacity is lost for good;
//! - **prober on**: breakers close within a probe interval of
//!   recovery, post-recovery failovers stop, and remote shards serve
//!   again.
//!
//! Latency is measured from each request's *scheduled* arrival (no
//! coordinated omission). Flags (mirroring the other recording
//! binaries):
//!
//! - `--smoke`: tiny CI-speed run + EXPERIMENTS.md schema check.
//! - `--record`: rewrite this binary's EXPERIMENTS.md section.

use std::sync::Arc;
use std::time::{Duration, Instant};

use willump_bench::loadgen::{open_loop, uniform_schedule, CallOutcome};
use willump_bench::{format_table, run_recorded_experiment};
use willump_data::{Table, Value};
use willump_serve::{
    ClusterConfig, RemoteRuntimeNode, RemoteWorker, Servable, ServerConfig, ServingRuntime, WireRow,
};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table10-cluster-recovery v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table10 -- --record";

/// Per-request service time on every shard, local or remote.
const SERVICE: Duration = Duration::from_millis(1);
/// Forward timeout: a dead-node forward costs at most this much.
const TIMEOUT: Duration = Duration::from_millis(250);
/// Breaker: open after 2 consecutive failures, and — the point of the
/// experiment — never half-open in-band (10-minute cooldown), so only
/// the background prober can re-admit a recovered node.
const BREAKER_FAILURES: u64 = 2;
const BREAKER_COOLDOWN: Duration = Duration::from_secs(600);
const WORKERS: usize = 2;

/// A predictor with a fixed, known service time (score = 2x).
struct FixedService(Duration);
impl Servable for FixedService {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        std::thread::sleep(self.0);
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs.into_iter().map(|x| 2.0 * x).collect())
    }
}

fn one_row(x: f64) -> Vec<WireRow> {
    vec![vec![("x".to_string(), Value::Float(x))]]
}

/// A child node serving `model` on `addr` (`127.0.0.1:0` for a free
/// port, or a pinned address for restarts — retried while the OS
/// releases the port).
fn bind_node(addr: &str) -> RemoteRuntimeNode {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut b = ServingRuntime::builder();
        b.config(ServerConfig::builder().workers(WORKERS).build());
        b.endpoint("model", Arc::new(FixedService(SERVICE)))
            .shards(2);
        match RemoteRuntimeNode::bind(addr, b.build().expect("child builds")) {
            Ok(node) => return node,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "could not bind node at {addr} within 10s: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

struct CellResult {
    served: u64,
    failovers: u64,
    post_failovers: u64,
    post_remote_forwards: u64,
    probes_sent: u64,
    probes_ok: u64,
    p50: f64,
    p99: f64,
}

/// One kill-and-recover cell: open-loop keyed traffic at `rate` for
/// `duration`, node killed at 1/3, restarted at 2/3. Returns overall
/// stats plus the post-recovery deltas that show whether the node was
/// ever re-admitted.
fn kill_recover_cell(rate: f64, duration: f64, threads: usize, prober: bool) -> CellResult {
    let mut node = bind_node("127.0.0.1:0");
    let addr = node.local_addr().to_string();

    let mut b = ServingRuntime::builder();
    b.config(ServerConfig::builder().workers(WORKERS).build());
    b.endpoint("model", Arc::new(FixedService(SERVICE)))
        .shards(2)
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr)
                .with_timeout(TIMEOUT)
                .with_breaker(BREAKER_FAILURES, BREAKER_COOLDOWN),
        ))
        .shard_transport(Arc::new(
            RemoteWorker::new(&addr)
                .with_timeout(TIMEOUT)
                .with_breaker(BREAKER_FAILURES, BREAKER_COOLDOWN),
        ));
    let runtime = b.build().expect("runtime builds");
    let cluster = prober.then(|| {
        runtime.start_cluster(ClusterConfig {
            probe_interval: Duration::from_millis(20),
            ..ClusterConfig::default()
        })
    });

    let n = (rate * duration).ceil() as usize;
    let arrivals = uniform_schedule(rate, n);
    let client = runtime.client();
    let start = Instant::now();
    let (report, post_failovers, post_remote) = std::thread::scope(|s| {
        // The open-loop generator runs on its own thread; the node
        // lifecycle runs on wall clock beside it.
        let load = s.spawn(|| {
            open_loop(&arrivals, threads, |i| {
                client
                    .predict_keyed("model", &format!("key-{i}"), one_row(i as f64))
                    .expect("fail-over keeps every request served");
                CallOutcome::Served
            })
        });

        let third = Duration::from_secs_f64(duration / 3.0);
        std::thread::sleep(third.saturating_sub(start.elapsed()));
        node.shutdown();
        std::thread::sleep((2 * third).saturating_sub(start.elapsed()));
        node = bind_node(&addr);
        // Everything from here is "post-recovery": a re-admitted node
        // stops the failover growth and serves forwards again.
        let post_failovers = runtime.stats().failovers();
        let post_remote = runtime.stats().remote_forwards();
        let report = load.join().expect("load threads complete");
        (report, post_failovers, post_remote)
    });

    let result = CellResult {
        served: report.served,
        failovers: runtime.stats().failovers(),
        post_failovers: runtime.stats().failovers() - post_failovers,
        post_remote_forwards: runtime.stats().remote_forwards() - post_remote,
        probes_sent: runtime.stats().probes_sent(),
        probes_ok: runtime.stats().probes_ok(),
        p50: report.p50(),
        p99: report.p99(),
    };
    drop(cluster);
    result
}

fn fmt_ms(seconds: f64) -> String {
    format!("{:.1}ms", seconds * 1e3)
}

fn sweep(smoke: bool) -> (String, String) {
    let (rate, duration, threads) = if smoke {
        (150.0, 1.2, 8)
    } else {
        (200.0, 4.5, 16)
    };

    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for prober in [false, true] {
        let cell = kill_recover_cell(rate, duration, threads, prober);
        rows.push(vec![
            if prober { "on" } else { "off" }.to_string(),
            cell.served.to_string(),
            cell.failovers.to_string(),
            cell.post_failovers.to_string(),
            cell.post_remote_forwards.to_string(),
            format!("{}/{}", cell.probes_ok, cell.probes_sent),
            fmt_ms(cell.p50),
            fmt_ms(cell.p99),
        ]);
        cells.push(cell);
    }

    // THE acceptance checks: without the prober the recovered node is
    // never re-admitted (zero post-recovery forwards, failovers keep
    // growing); with it, remote shards serve again and the
    // post-recovery failover count collapses.
    let (without, with) = (&cells[0], &cells[1]);
    assert_eq!(
        without.post_remote_forwards, 0,
        "long-cooldown breaker must stay open without the prober"
    );
    assert!(
        with.post_remote_forwards > 0,
        "prober failed to re-admit the recovered node"
    );
    assert!(
        with.post_failovers < without.post_failovers,
        "re-admission must stop the failover growth: {} vs {}",
        with.post_failovers,
        without.post_failovers
    );
    assert!(with.probes_ok > 0, "prober never reached the node");

    let table = format_table(
        "Table 10: kill-and-recover a remote node, health prober on/off",
        &[
            "prober",
            "served",
            "failovers",
            "failovers post-recovery",
            "remote fwd post-recovery",
            "probes ok/sent",
            "p50",
            "p99",
        ],
        &rows,
    );
    let body = format!(
        "Cluster recovery (repo extension beyond the paper): open-loop\n\
         keyed traffic at {rate:.0} rows/s over 2 local + 2 remote shards\n\
         for {duration}s; the remote node is killed at 1/3 and restarted at\n\
         the same address at 2/3. Both cells use a {BREAKER_FAILURES}-failure breaker\n\
         with a {BREAKER_COOLDOWN:?} cooldown, so only the background prober\n\
         (`start_cluster`, 20ms interval) can re-admit the node. Latency is\n\
         measured from scheduled arrival (coordinated-omission-safe).\n\
         Regenerate with `{RECORD_CMD}`.\n{table}"
    );
    (table, body)
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, sweep);
}
