//! Section 6.4 microbenchmarks not covered by the other binaries:
//!
//! - `gamma`: the Algorithm 1 stopping-rule ablation on Music,
//! - `threshold`: cascade-threshold robustness across validation
//!   splits,
//! - `driver`: engine-boundary ("Weld driver") overhead share,
//! - `opttime`: end-to-end optimization times,
//! - `calibration`: cascade confidence calibration ablation (an
//!   extension beyond the paper; see DESIGN.md §4b).
//!
//! Run one section with `cargo run -p willump-bench --release --bin
//! micro -- <section>`, or everything with no argument.

use std::sync::Arc;

use willump::cascade::train_cascade_with_subset;
use willump::efficient::{select_efficient_ifvs, SelectionStrategy};
use willump::stats::compute_ifv_stats;
use willump::{Calibration, QueryMode, Willump, WillumpConfig};
use willump_bench::{
    batch_throughput, fmt_speedup, generate, optimize_level, print_table, OptLevel,
};
use willump_graph::cost::measure_costs;
use willump_graph::{EngineMode, Executor};
use willump_models::metrics;
use willump_workloads::{Workload, WorkloadKind};

fn gamma_ablation() {
    // Paper §6.4: on Music (the classification benchmark with the most
    // IFVs), disabling the gamma rule lowers the cascade speedup at
    // matched accuracy targets.
    let w = generate(WorkloadKind::Music, true);
    let opt = optimize_level(&w, OptLevel::Compiled, QueryMode::Batch, None, 1);
    let exec = opt.executor();
    let full_feats = exec.features_batch(&w.train, None).expect("features");
    let stats = compute_ifv_stats(
        exec,
        opt.full_model(),
        &full_feats,
        &w.train,
        &w.train_y,
        42,
    )
    .expect("stats");
    let base_tp = batch_throughput(&w, 3, || {
        opt.predict_batch(&w.test).expect("predicts");
    });

    let mut rows = Vec::new();
    for (label, use_rule) in [("with gamma rule", true), ("without gamma rule", false)] {
        let subset = select_efficient_ifvs(
            &stats,
            SelectionStrategy::CostEffective {
                gamma: 0.25,
                use_gamma_rule: use_rule,
            },
            0.5,
        );
        for target in [0.001, 0.005] {
            let n_fgs = exec.analysis().generators.len();
            let cell = if subset.is_empty() || subset.len() >= n_fgs {
                "no cascade".to_string()
            } else {
                let (cascade, _) = train_cascade_with_subset(
                    exec,
                    w.pipeline.spec(),
                    Arc::clone(opt.full_model()),
                    &w.train,
                    &w.train_y,
                    &w.valid,
                    &w.valid_y,
                    subset.clone(),
                    target,
                    42,
                )
                .expect("cascade trains");
                let tp = batch_throughput(&w, 3, || {
                    cascade.predict_batch(&w.test).expect("predicts");
                });
                fmt_speedup(tp / base_tp)
            };
            rows.push(vec![
                label.to_string(),
                format!("{:.1}%", target * 100.0),
                format!("{subset:?}"),
                cell,
            ]);
        }
    }
    print_table(
        "Micro (gamma): Algorithm 1 stopping rule on Music (speedup over compiled)",
        &[
            "variant",
            "accuracy target",
            "efficient set",
            "cascade speedup",
        ],
        &rows,
    );
}

fn threshold_robustness() {
    // Paper §6.4: a threshold chosen on one validation set holds on
    // another (accuracy within the target, not statistically
    // significant).
    let mut rows = Vec::new();
    for kind in [
        WorkloadKind::Product,
        WorkloadKind::Toxic,
        WorkloadKind::Music,
        WorkloadKind::Tracking,
    ] {
        let w = generate(kind, false);
        // Split validation in half: choose on A, evaluate on B.
        let half = w.valid.n_rows() / 2;
        let a_idx: Vec<usize> = (0..half).collect();
        let b_idx: Vec<usize> = (half..w.valid.n_rows()).collect();
        let valid_a = w.valid.take_rows(&a_idx);
        let valid_a_y = a_idx.iter().map(|&i| w.valid_y[i]).collect::<Vec<_>>();
        let valid_b = w.valid.take_rows(&b_idx);
        let valid_b_y: Vec<f64> = b_idx.iter().map(|&i| w.valid_y[i]).collect();

        let sub = Workload {
            valid: valid_a,
            valid_y: valid_a_y,
            ..w.clone()
        };
        let opt = {
            let cfg = WillumpConfig {
                cascades: true,
                cascade_gate: false,
                ..WillumpConfig::default()
            };
            Willump::new(cfg)
                .optimize(
                    &sub.pipeline,
                    &sub.train,
                    &sub.train_y,
                    &sub.valid,
                    &sub.valid_y,
                )
                .expect("optimizes")
        };
        let Some(sel) = opt.report().threshold.clone() else {
            rows.push(vec![
                kind.name().to_string(),
                "no cascade".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        // Evaluate on validation half B.
        let scores = opt.predict_batch(&valid_b).expect("predicts");
        let full_feats = opt
            .executor()
            .features_batch(&valid_b, None)
            .expect("features");
        let full_acc = metrics::accuracy(&opt.full_model().predict_scores(&full_feats), &valid_b_y);
        let cascade_acc = metrics::accuracy(&scores, &valid_b_y);
        let ci = metrics::accuracy_ci_95(full_acc, valid_b_y.len());
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}", sel.threshold),
            format!("{full_acc:.4}"),
            format!("{cascade_acc:.4}"),
            if cascade_acc >= full_acc - ci {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print_table(
        "Micro (threshold): robustness across validation splits",
        &[
            "benchmark",
            "threshold (split A)",
            "full acc (split B)",
            "cascade acc (split B)",
            "within 95% CI",
        ],
        &rows,
    );
}

fn driver_overhead() {
    // Paper §6.4: engine-boundary overheads are <= 1.6 % of runtime.
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = generate(kind, false);
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled)
            .expect("executor builds");
        let report = measure_costs(&exec, &w.test).expect("costs measured");
        let share = 100.0 * report.boundary / report.total().max(1e-12);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}us", report.boundary * 1e6),
            format!("{:.2}us", report.total() * 1e6),
            format!("{share:.2}%"),
        ]);
    }
    print_table(
        "Micro (driver): engine-boundary overhead per input row",
        &["benchmark", "boundary", "total", "share"],
        &rows,
    );
}

fn optimization_times() {
    // Paper §6.4: optimization never exceeds thirty seconds.
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = generate(kind, kind.uses_store());
        let mode = if kind.is_classification() {
            QueryMode::Batch
        } else {
            QueryMode::TopK { k: 100 }
        };
        let opt = optimize_level(&w, OptLevel::Cascades, mode, None, 1);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}s", opt.report().optimization_seconds),
            opt.report().cascades_deployed.to_string(),
            opt.report().filter_deployed.to_string(),
        ]);
    }
    print_table(
        "Micro (opttime): Willump optimization wall time",
        &["benchmark", "optimization time", "cascades", "filter"],
        &rows,
    );
}

fn calibration_ablation() {
    // Extension (DESIGN.md §4b): calibrating small-model confidences
    // changes which inputs the cascade keeps. We compare raw vs Platt
    // vs isotonic on the classification benchmarks, reporting the
    // selected threshold, kept fraction, and test accuracy drift.
    let mut rows = Vec::new();
    for kind in [
        WorkloadKind::Product,
        WorkloadKind::Toxic,
        WorkloadKind::Music,
    ] {
        let w = generate(kind, false);
        for (label, method) in [
            ("raw scores (paper)", Calibration::None),
            ("platt", Calibration::Platt),
            ("isotonic", Calibration::Isotonic),
        ] {
            let cfg = WillumpConfig {
                cascade_gate: false,
                calibration: method,
                ..WillumpConfig::default()
            };
            let opt = Willump::new(cfg)
                .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
                .expect("optimizes");
            let Some(sel) = opt.report().threshold.clone() else {
                rows.push(vec![
                    kind.name().to_string(),
                    label.to_string(),
                    "no cascade".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            };
            let (scores, stats) = opt.predict_batch_with_stats(&w.test).expect("predicts");
            let acc = metrics::accuracy(&scores, &w.test_y);
            let kept = stats.map_or(0.0, |s| s.small_fraction());
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                format!("{:.1}", sel.threshold),
                format!("{:.1}%", 100.0 * kept),
                format!("{acc:.4}"),
            ]);
        }
    }
    print_table(
        "Micro (calibration): cascade confidence calibration ablation",
        &[
            "benchmark",
            "calibration",
            "threshold",
            "kept by small model",
            "test accuracy",
        ],
        &rows,
    );
}

fn main() {
    let section = std::env::args().nth(1);
    match section.as_deref() {
        Some("gamma") => gamma_ablation(),
        Some("threshold") => threshold_robustness(),
        Some("driver") => driver_overhead(),
        Some("opttime") => optimization_times(),
        Some("calibration") => calibration_ablation(),
        Some(other) => {
            eprintln!("unknown section `{other}`; use gamma|threshold|driver|opttime|calibration");
        }
        None => {
            gamma_ablation();
            threshold_robustness();
            driver_overhead();
            optimization_times();
            calibration_ablation();
        }
    }
}
