//! Section 6.4 microbenchmarks not covered by the other binaries:
//!
//! - `gamma`: the Algorithm 1 stopping-rule ablation on Music,
//! - `threshold`: cascade-threshold robustness across validation
//!   splits,
//! - `driver`: engine-boundary ("Weld driver") overhead share,
//! - `opttime`: end-to-end optimization times,
//! - `calibration`: cascade confidence calibration ablation (an
//!   extension beyond the paper; see DESIGN.md §4b),
//! - `wirecodec`: per-frame encode/decode cost of the legacy
//!   newline-JSON wire protocol vs the binary v2 framing — the
//!   serialization component of the Table 6c remote-shard delta,
//!   measured without any transport effects.
//!
//! Run one section with `cargo run -p willump-bench --release --bin
//! micro -- <section>`, or everything with no argument. The
//! `wirecodec` section is the recorded one: `--smoke` runs its
//! CI-speed pass and `--record` rewrites its EXPERIMENTS.md section.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use willump::cascade::train_cascade_with_subset;
use willump::efficient::{select_efficient_ifvs, SelectionStrategy};
use willump::stats::compute_ifv_stats;
use willump::{Calibration, PlanCountersSnapshot, QueryMode, Willump, WillumpConfig};
use willump_bench::{
    batch_throughput, fmt_speedup, format_table, generate, optimize_level, print_table,
    run_recorded_experiment, OptLevel,
};
use willump_data::Value;
use willump_graph::cost::measure_costs;
use willump_graph::{EngineMode, Executor};
use willump_models::metrics;
use willump_serve::wire2::{
    decode_request_payload, decode_response_payload, encode_request_payload,
    encode_response_payload,
};
use willump_serve::{
    decode_request, decode_response, encode_request, encode_response, EndpointCounters, Request,
    Response, WireRow,
};
use willump_workloads::{Workload, WorkloadKind};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: micro-wirecodec v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin micro -- --record";

fn gamma_ablation() {
    // Paper §6.4: on Music (the classification benchmark with the most
    // IFVs), disabling the gamma rule lowers the cascade speedup at
    // matched accuracy targets.
    let w = generate(WorkloadKind::Music, true);
    let opt = optimize_level(&w, OptLevel::Compiled, QueryMode::Batch, None, 1);
    let exec = opt.executor();
    let full_feats = exec.features_batch(&w.train, None).expect("features");
    let stats = compute_ifv_stats(
        exec,
        opt.full_model(),
        &full_feats,
        &w.train,
        &w.train_y,
        42,
    )
    .expect("stats");
    let base_tp = batch_throughput(&w, 3, || {
        opt.predict_batch(&w.test).expect("predicts");
    });

    let mut rows = Vec::new();
    for (label, use_rule) in [("with gamma rule", true), ("without gamma rule", false)] {
        let subset = select_efficient_ifvs(
            &stats,
            SelectionStrategy::CostEffective {
                gamma: 0.25,
                use_gamma_rule: use_rule,
            },
            0.5,
        );
        for target in [0.001, 0.005] {
            let n_fgs = exec.analysis().generators.len();
            let cell = if subset.is_empty() || subset.len() >= n_fgs {
                "no cascade".to_string()
            } else {
                let (cascade, _) = train_cascade_with_subset(
                    exec,
                    w.pipeline.spec(),
                    Arc::clone(opt.full_model()),
                    &w.train,
                    &w.train_y,
                    &w.valid,
                    &w.valid_y,
                    subset.clone(),
                    target,
                    42,
                )
                .expect("cascade trains");
                let tp = batch_throughput(&w, 3, || {
                    cascade.predict_batch(&w.test).expect("predicts");
                });
                fmt_speedup(tp / base_tp)
            };
            rows.push(vec![
                label.to_string(),
                format!("{:.1}%", target * 100.0),
                format!("{subset:?}"),
                cell,
            ]);
        }
    }
    print_table(
        "Micro (gamma): Algorithm 1 stopping rule on Music (speedup over compiled)",
        &[
            "variant",
            "accuracy target",
            "efficient set",
            "cascade speedup",
        ],
        &rows,
    );
}

fn threshold_robustness() {
    // Paper §6.4: a threshold chosen on one validation set holds on
    // another (accuracy within the target, not statistically
    // significant).
    let mut rows = Vec::new();
    for kind in [
        WorkloadKind::Product,
        WorkloadKind::Toxic,
        WorkloadKind::Music,
        WorkloadKind::Tracking,
    ] {
        let w = generate(kind, false);
        // Split validation in half: choose on A, evaluate on B.
        let half = w.valid.n_rows() / 2;
        let a_idx: Vec<usize> = (0..half).collect();
        let b_idx: Vec<usize> = (half..w.valid.n_rows()).collect();
        let valid_a = w.valid.take_rows(&a_idx);
        let valid_a_y = a_idx.iter().map(|&i| w.valid_y[i]).collect::<Vec<_>>();
        let valid_b = w.valid.take_rows(&b_idx);
        let valid_b_y: Vec<f64> = b_idx.iter().map(|&i| w.valid_y[i]).collect();

        let sub = Workload {
            valid: valid_a,
            valid_y: valid_a_y,
            ..w.clone()
        };
        let opt = {
            let cfg = WillumpConfig {
                cascades: true,
                cascade_gate: false,
                ..WillumpConfig::default()
            };
            Willump::new(cfg)
                .optimize(
                    &sub.pipeline,
                    &sub.train,
                    &sub.train_y,
                    &sub.valid,
                    &sub.valid_y,
                )
                .expect("optimizes")
        };
        let Some(sel) = opt.report().threshold.clone() else {
            rows.push(vec![
                kind.name().to_string(),
                "no cascade".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        // Evaluate on validation half B.
        let scores = opt.predict_batch(&valid_b).expect("predicts");
        let full_feats = opt
            .executor()
            .features_batch(&valid_b, None)
            .expect("features");
        let full_acc = metrics::accuracy(&opt.full_model().predict_scores(&full_feats), &valid_b_y);
        let cascade_acc = metrics::accuracy(&scores, &valid_b_y);
        let ci = metrics::accuracy_ci_95(full_acc, valid_b_y.len());
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}", sel.threshold),
            format!("{full_acc:.4}"),
            format!("{cascade_acc:.4}"),
            if cascade_acc >= full_acc - ci {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    print_table(
        "Micro (threshold): robustness across validation splits",
        &[
            "benchmark",
            "threshold (split A)",
            "full acc (split B)",
            "cascade acc (split B)",
            "within 95% CI",
        ],
        &rows,
    );
}

fn driver_overhead() {
    // Paper §6.4: engine-boundary overheads are <= 1.6 % of runtime.
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = generate(kind, false);
        let exec = Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled)
            .expect("executor builds");
        let report = measure_costs(&exec, &w.test).expect("costs measured");
        let share = 100.0 * report.boundary / report.total().max(1e-12);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}us", report.boundary * 1e6),
            format!("{:.2}us", report.total() * 1e6),
            format!("{share:.2}%"),
        ]);
    }
    print_table(
        "Micro (driver): engine-boundary overhead per input row",
        &["benchmark", "boundary", "total", "share"],
        &rows,
    );
}

fn optimization_times() {
    // Paper §6.4: optimization never exceeds thirty seconds.
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = generate(kind, kind.uses_store());
        let mode = if kind.is_classification() {
            QueryMode::Batch
        } else {
            QueryMode::TopK { k: 100 }
        };
        let opt = optimize_level(&w, OptLevel::Cascades, mode, None, 1);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}s", opt.report().optimization_seconds),
            opt.report().cascades_deployed.to_string(),
            opt.report().filter_deployed.to_string(),
        ]);
    }
    print_table(
        "Micro (opttime): Willump optimization wall time",
        &["benchmark", "optimization time", "cascades", "filter"],
        &rows,
    );
}

fn calibration_ablation() {
    // Extension (DESIGN.md §4b): calibrating small-model confidences
    // changes which inputs the cascade keeps. We compare raw vs Platt
    // vs isotonic on the classification benchmarks, reporting the
    // selected threshold, kept fraction, and test accuracy drift.
    let mut rows = Vec::new();
    for kind in [
        WorkloadKind::Product,
        WorkloadKind::Toxic,
        WorkloadKind::Music,
    ] {
        let w = generate(kind, false);
        for (label, method) in [
            ("raw scores (paper)", Calibration::None),
            ("platt", Calibration::Platt),
            ("isotonic", Calibration::Isotonic),
        ] {
            let cfg = WillumpConfig {
                cascade_gate: false,
                calibration: method,
                ..WillumpConfig::default()
            };
            let opt = Willump::new(cfg)
                .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
                .expect("optimizes");
            let Some(sel) = opt.report().threshold.clone() else {
                rows.push(vec![
                    kind.name().to_string(),
                    label.to_string(),
                    "no cascade".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            };
            let (scores, stats) = opt.predict_batch_with_stats(&w.test).expect("predicts");
            let acc = metrics::accuracy(&scores, &w.test_y);
            let kept = stats.map_or(0.0, |s| s.small_fraction());
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                format!("{:.1}", sel.threshold),
                format!("{:.1}%", 100.0 * kept),
                format!("{acc:.4}"),
            ]);
        }
    }
    print_table(
        "Micro (calibration): cascade confidence calibration ablation",
        &[
            "benchmark",
            "calibration",
            "threshold",
            "kept by small model",
            "test accuracy",
        ],
        &rows,
    );
}

/// A forwarding-shaped request: `batch` rows of the mixed-type column
/// layout the Table 6 workload ships per prediction (eight float
/// features, an int, and a string key).
fn codec_request(batch: usize) -> Request {
    let rows: Vec<WireRow> = (0..batch)
        .map(|i| {
            let mut row: WireRow = (0..8)
                .map(|c| (format!("f{c}"), Value::Float(0.25 * (i + c) as f64)))
                .collect();
            row.push(("count".to_string(), Value::Int(i as i64)));
            row.push(("key".to_string(), Value::str(format!("user-{i:04}"))));
            row
        })
        .collect();
    Request {
        id: 7,
        rows,
        endpoint: Some("product".to_string()),
        version: Some(3),
        key: Some("tenant-a".to_string()),
        forwarded: true,
        control: None,
    }
}

/// A scored reply of `scores` predictions, optionally carrying the
/// per-endpoint counters block a stats poll returns.
fn codec_response(scores: usize, with_counters: bool) -> Response {
    let counters = with_counters.then(|| {
        (0..3u32)
            .map(|i| EndpointCounters {
                endpoint: format!("endpoint-{i}"),
                version: i + 1,
                counters: PlanCountersSnapshot {
                    rows: 100_000 + u64::from(i),
                    gate_resolved: 60_000,
                    escalated: 40_000,
                    filter_dropped: 12_345,
                },
            })
            .collect::<Vec<_>>()
    });
    Response {
        id: 7,
        scores: (0..scores).map(|i| 0.001 * i as f64).collect(),
        error: None,
        endpoint: Some("product".to_string()),
        version: Some(3),
        counters,
        degraded: false,
        overloaded: false,
    }
}

/// Mean nanoseconds per call of `f` over `iters` iterations.
fn ns_per_op(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 10_000.0 {
        format!("{:.1}us", ns / 1000.0)
    } else {
        format!("{ns:.0}ns")
    }
}

/// JSON vs binary-v2 codec cost per frame, isolated from transport.
fn wirecodec_comparison(smoke: bool) -> String {
    let iters: u32 = if smoke { 500 } else { 50_000 };

    // Frame shapes: request batches spanning the Table 6 batch sweep,
    // a scored reply, and a counters (stats-poll) reply.
    let frames: Vec<(String, Request)> = [1usize, 10, 100]
        .iter()
        .map(|&b| (format!("request, batch {b}"), codec_request(b)))
        .collect();
    let responses = vec![
        (
            "response, 100 scores".to_string(),
            codec_response(100, false),
        ),
        ("response, counters".to_string(), codec_response(0, true)),
    ];

    let mut rows = Vec::new();
    for (label, req) in &frames {
        let json = encode_request(req).expect("json encodes");
        let bin = encode_request_payload(req);
        let json_enc = ns_per_op(iters, || {
            black_box(encode_request(black_box(req)).expect("json encodes"));
        });
        let bin_enc = ns_per_op(iters, || {
            black_box(encode_request_payload(black_box(req)));
        });
        let json_dec = ns_per_op(iters, || {
            black_box(decode_request(black_box(&json)).expect("json decodes"));
        });
        let bin_dec = ns_per_op(iters, || {
            black_box(decode_request_payload(black_box(&bin)).expect("binary decodes"));
        });
        rows.push(vec![
            label.clone(),
            json.len().to_string(),
            bin.len().to_string(),
            fmt_ns(json_enc),
            fmt_ns(bin_enc),
            fmt_speedup(json_enc / bin_enc),
            fmt_ns(json_dec),
            fmt_ns(bin_dec),
            fmt_speedup(json_dec / bin_dec),
        ]);
    }
    for (label, resp) in &responses {
        let json = encode_response(resp).expect("json encodes");
        let bin = encode_response_payload(resp);
        let json_enc = ns_per_op(iters, || {
            black_box(encode_response(black_box(resp)).expect("json encodes"));
        });
        let bin_enc = ns_per_op(iters, || {
            black_box(encode_response_payload(black_box(resp)));
        });
        let json_dec = ns_per_op(iters, || {
            black_box(decode_response(black_box(&json)).expect("json decodes"));
        });
        let bin_dec = ns_per_op(iters, || {
            black_box(decode_response_payload(black_box(&bin)).expect("binary decodes"));
        });
        rows.push(vec![
            label.clone(),
            json.len().to_string(),
            bin.len().to_string(),
            fmt_ns(json_enc),
            fmt_ns(bin_enc),
            fmt_speedup(json_enc / bin_enc),
            fmt_ns(json_dec),
            fmt_ns(bin_dec),
            fmt_speedup(json_dec / bin_dec),
        ]);
    }

    format_table(
        "Micro (wirecodec): per-frame codec cost, legacy JSON vs binary v2",
        &[
            "frame",
            "json bytes",
            "bin bytes",
            "json enc",
            "bin enc",
            "enc speedup",
            "json dec",
            "bin dec",
            "dec speedup",
        ],
        &rows,
    )
}

fn run_recorded_wirecodec() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = wirecodec_comparison(smoke);
        (table.clone(), table)
    });
}

fn main() {
    let section = std::env::args().nth(1);
    match section.as_deref() {
        Some("gamma") => gamma_ablation(),
        Some("threshold") => threshold_robustness(),
        Some("driver") => driver_overhead(),
        Some("opttime") => optimization_times(),
        Some("calibration") => calibration_ablation(),
        Some("wirecodec") => print!("{}", wirecodec_comparison(false)),
        // `--smoke` / `--record` route through the recording harness,
        // which re-parses the flags itself; only the wirecodec section
        // is recorded (the others are analyses, not claims).
        Some("--smoke") | Some("--record") => run_recorded_wirecodec(),
        Some(other) => {
            eprintln!(
                "unknown section `{other}`; use \
                 gamma|threshold|driver|opttime|calibration|wirecodec"
            );
        }
        None => {
            gamma_ablation();
            threshold_robustness();
            driver_overhead();
            optimization_times();
            calibration_ablation();
            run_recorded_wirecodec();
        }
    }
}
