//! Table 3: average per-input latency on Music and Tracking with
//! remote tables under the same configurations as Table 2, plus the
//! unoptimized (interpreted) pipeline.
//!
//! As in `table2`, every optimized configuration is a lowered
//! `ServingPlan` run row-wise; the end-to-end cache rows compose
//! `with_e2e_cache` onto the plain compiled plan.
//!
//! Flags (mirroring `table6`):
//!
//! - `--smoke`: tiny workloads and input counts — a CI-speed sanity
//!   pass that also checks EXPERIMENTS.md carries this binary's
//!   schema header (never writes the file).
//! - `--record`: rewrite this binary's EXPERIMENTS.md section with
//!   the measured table.

use willump::{CachingConfig, QueryMode};
use willump_bench::{
    baseline, fmt_latency, format_table, generate_remote, optimize_level, per_input_latency,
    run_recorded_experiment, OptLevel,
};
use willump_workloads::WorkloadKind;

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table3-per-input-latency v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table3 -- --record";

fn latency_table(smoke: bool) -> String {
    let kinds = [WorkloadKind::Music, WorkloadKind::Tracking];
    let n = if smoke { 100 } else { 500 };
    let mut results: Vec<Vec<String>> = vec![
        vec!["Unoptimized".to_string()],
        vec!["End-to-end Caching + No Cascades".to_string()],
        vec!["Feature-Level Caching + No Cascades".to_string()],
        vec!["No Caching + Cascades".to_string()],
        vec!["Feature-Level Caching + Cascades".to_string()],
    ];

    for kind in kinds {
        let w = generate_remote(kind, smoke);

        let python = baseline(&w);
        let lat_unopt = per_input_latency(&w, n, |input| {
            python.predict_one(input).expect("prediction succeeds")
        });

        let plain = optimize_level(&w, OptLevel::Compiled, QueryMode::ExampleAtATime, None, 1);
        let e2e = plain
            .serving_plan()
            .with_e2e_cache(w.source_columns(), None)
            .expect("cache composes onto the plain plan");
        let lat_e2e = per_input_latency(&w, n, |input| {
            e2e.predict_one(input).expect("prediction succeeds")
        });

        let feat = optimize_level(
            &w,
            OptLevel::Compiled,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        )
        .serving_plan();
        let lat_feat = per_input_latency(&w, n, |input| {
            feat.predict_one(input).expect("prediction succeeds")
        });

        let casc = optimize_level(&w, OptLevel::Cascades, QueryMode::ExampleAtATime, None, 1)
            .serving_plan();
        let lat_casc = per_input_latency(&w, n, |input| {
            casc.predict_one(input).expect("prediction succeeds")
        });

        let both = optimize_level(
            &w,
            OptLevel::Cascades,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        )
        .serving_plan();
        let lat_both = per_input_latency(&w, n, |input| {
            both.predict_one(input).expect("prediction succeeds")
        });

        for (row, lat) in results
            .iter_mut()
            .zip([lat_unopt, lat_e2e, lat_feat, lat_casc, lat_both])
        {
            row.push(fmt_latency(lat));
        }
    }

    format_table(
        "Table 3: average per-input latency (remote tables; effective = wall + simulated network)",
        &["configuration", "music", "tracking"],
        &results,
    )
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = latency_table(smoke);
        let body = format!(
            "Per-input latency per serving configuration (effective time =\n\
             wall + simulated network wait); optimized configurations are\n\
             lowered/composed `ServingPlan`s run row-wise.\n\
             Regenerate with `{RECORD_CMD}`.\n{table}"
        );
        (table, body)
    });
}
