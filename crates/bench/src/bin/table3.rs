//! Table 3: average per-input latency on Music and Tracking with
//! remote tables under the same configurations as Table 2, plus the
//! unoptimized (interpreted) pipeline.

use std::sync::Arc;

use willump::{CachingConfig, QueryMode};
use willump_bench::{
    baseline, fmt_latency, generate, optimize_level, per_input_latency, print_table, OptLevel,
};
use willump_serve::E2eCachedPredictor;
use willump_workloads::WorkloadKind;

fn main() {
    let kinds = [WorkloadKind::Music, WorkloadKind::Tracking];
    let n = 500;
    let mut results: Vec<Vec<String>> = vec![
        vec!["Unoptimized".to_string()],
        vec!["End-to-end Caching + No Cascades".to_string()],
        vec!["Feature-Level Caching + No Cascades".to_string()],
        vec!["No Caching + Cascades".to_string()],
        vec!["Feature-Level Caching + Cascades".to_string()],
    ];

    for kind in kinds {
        let w = generate(kind, true);

        let python = baseline(&w);
        let lat_unopt = per_input_latency(&w, n, |input| {
            python.predict_one(input).expect("prediction succeeds")
        });

        let plain = optimize_level(&w, OptLevel::Compiled, QueryMode::ExampleAtATime, None, 1);
        let sources: Vec<String> = plain
            .executor()
            .graph()
            .source_columns()
            .into_iter()
            .map(str::to_string)
            .collect();
        let inner = Arc::new(plain.clone());
        let e2e = E2eCachedPredictor::new(
            move |input| inner.predict_one(input).map_err(|e| e.to_string()),
            sources,
            None,
        );
        let lat_e2e = per_input_latency(&w, n, |input| {
            e2e.predict_one(input).expect("prediction succeeds")
        });

        let feat = optimize_level(
            &w,
            OptLevel::Compiled,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        );
        let lat_feat = per_input_latency(&w, n, |input| {
            feat.predict_one(input).expect("prediction succeeds")
        });

        let casc = optimize_level(&w, OptLevel::Cascades, QueryMode::ExampleAtATime, None, 1);
        let lat_casc = per_input_latency(&w, n, |input| {
            casc.predict_one(input).expect("prediction succeeds")
        });

        let both = optimize_level(
            &w,
            OptLevel::Cascades,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        );
        let lat_both = per_input_latency(&w, n, |input| {
            both.predict_one(input).expect("prediction succeeds")
        });

        for (row, lat) in results
            .iter_mut()
            .zip([lat_unopt, lat_e2e, lat_feat, lat_casc, lat_both])
        {
            row.push(fmt_latency(lat));
        }
    }

    print_table(
        "Table 3: average per-input latency (remote tables; effective = wall + simulated network)",
        &["configuration", "music", "tracking"],
        &results,
    );
}
