//! Inspect Willump's optimization decisions per workload: IFV
//! statistics, the efficient set, threshold selection, and cascade
//! serving behaviour on the test set.

use willump::{Willump, WillumpConfig};
use willump_bench::generate;
use willump_models::metrics;
use willump_workloads::WorkloadKind;

fn main() {
    for kind in WorkloadKind::ALL {
        let w = generate(kind, kind.uses_store());
        let cfg = WillumpConfig::default();
        let opt = Willump::new(cfg)
            .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
            .expect("optimizes");
        let r = opt.report();
        println!("\n=== {} ===", kind.name());
        println!("  optimization time: {:.2}s", r.optimization_seconds);
        for (g, (imp, cost)) in r
            .ifv_stats
            .importance
            .iter()
            .zip(&r.ifv_stats.cost)
            .enumerate()
        {
            let eff = if r.efficient_set.contains(&g) {
                " <- efficient"
            } else {
                ""
            };
            println!(
                "  IFV {g}: importance {imp:.5}  cost {:>9.2}us/row  CE {:.3}{eff}",
                cost * 1e6,
                imp / cost.max(1e-12) / 1e6,
            );
        }
        println!("  cascades deployed: {}", r.cascades_deployed);
        if let Some(reason) = &r.cascade_gate_reason {
            println!("  gate declined: {reason}");
        }
        if let Some(sel) = &r.threshold {
            println!(
                "  threshold {:.1}: full acc {:.4}, cascade acc {:.4}, kept {:.1}%",
                sel.threshold,
                sel.full_accuracy,
                sel.cascade_accuracy,
                sel.kept_fraction * 100.0
            );
        }
        if kind.is_classification() {
            let (scores, stats) = opt.predict_batch_with_stats(&w.test).expect("predicts");
            let acc = metrics::accuracy(&scores, &w.test_y);
            println!("  test accuracy: {acc:.4}");
            if let Some(s) = stats {
                println!(
                    "  test serving: {} small / {} escalated ({:.1}% kept)",
                    s.resolved_small,
                    s.escalated,
                    s.small_fraction() * 100.0
                );
            }
        }
    }
}
