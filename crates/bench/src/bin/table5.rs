//! Table 5: automatically constructed filter models versus random
//! sampling on the benchmarks where filter models were least accurate
//! (Music, Product, Credit). Sampling ratios are chosen so the sampled
//! exact query costs the same as the filtered query, then accuracy is
//! compared at equal throughput.

use willump::QueryMode;
use willump_bench::{effective_seconds, generate, optimize_level, print_table, OptLevel};
use willump_data::rng::seeded;
use willump_models::metrics;
use willump_workloads::WorkloadKind;

const K: usize = 100;

fn main() {
    let kinds = [
        WorkloadKind::Music,
        WorkloadKind::Product,
        WorkloadKind::Credit,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let w = generate(kind, kind.uses_store());
        let n = w.test.n_rows();

        // Exact (compiled) scores define ground truth and the cost of
        // a full pass.
        let compiled = optimize_level(&w, OptLevel::Compiled, QueryMode::TopK { k: K }, None, 1);
        let exec = compiled.executor().clone();
        let full_model = compiled.full_model().clone();
        let (full_secs, exact_scores) = effective_seconds(&w, || {
            let feats = exec.features_batch(&w.test, None).expect("features");
            full_model.predict_scores(&feats)
        });
        let exact_topk = metrics::top_k_indices(&exact_scores, K);

        // Filtered top-K and its cost.
        let filtered = optimize_level(&w, OptLevel::Cascades, QueryMode::TopK { k: K }, None, 1);
        let (filt_secs, approx_topk) =
            effective_seconds(&w, || filtered.top_k(&w.test, K).expect("filtered top-K").0);

        // Random sampling at equal cost: the sampled pass may touch
        // only n / ratio rows, where ratio = full cost / filtered cost.
        let ratio = (full_secs / filt_secs).max(1.0);
        let sample_size = ((n as f64 / ratio).round() as usize).clamp(K.min(n), n);
        let mut rng = seeded(7);
        let sample = willump_data::rng::permutation(&mut rng, n)[..sample_size].to_vec();
        let sample_table = w.test.take_rows(&sample);
        let sampled_scores = {
            let feats = exec.features_batch(&sample_table, None).expect("features");
            full_model.predict_scores(&feats)
        };
        let sampled_topk: Vec<usize> = metrics::top_k_indices(&sampled_scores, K)
            .into_iter()
            .map(|j| sample[j])
            .collect();

        let true_value = metrics::average_value(&exact_topk, &exact_scores);
        rows.push(vec![
            kind.name().to_string(),
            format!("{ratio:.1}x"),
            format!("{:.2}", metrics::precision_at_k(&sampled_topk, &exact_topk)),
            format!("{:.2}", metrics::precision_at_k(&approx_topk, &exact_topk)),
            format!(
                "{:.2}",
                metrics::mean_average_precision(&sampled_topk, &exact_topk)
            ),
            format!(
                "{:.2}",
                metrics::mean_average_precision(&approx_topk, &exact_topk)
            ),
            format!(
                "{:.4}",
                metrics::average_value(&sampled_topk, &exact_scores)
            ),
            format!("{:.4}", metrics::average_value(&approx_topk, &exact_scores)),
            format!("{true_value:.4}"),
        ]);
    }
    print_table(
        "Table 5: filter models vs random sampling at matched cost (top-100)",
        &[
            "benchmark",
            "sampling ratio",
            "sampled precision",
            "filtered precision",
            "sampled mAP",
            "filtered mAP",
            "sampled avg value",
            "filtered avg value",
            "true avg value",
        ],
        &rows,
    );
}
