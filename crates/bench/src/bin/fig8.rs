//! Figure 8: example-at-a-time parallelization. Left: real benchmarks
//! (Product, Toxic), where one dominant IFV Amdahl-limits the gains.
//! Right: a synthetic pipeline of four identical TF-IDF feature
//! generators, which parallelizes nearly linearly.
//!
//! Flags:
//!
//! - `--smoke`: tiny workloads, corpora, and input counts — a
//!   CI-speed sanity pass that also validates the committed
//!   EXPERIMENTS.md schema header (never rewrites the file).
//! - `--record`: re-measure at full experiment size and rewrite this
//!   binary's EXPERIMENTS.md section.

use std::sync::Arc;

use willump_bench::{fmt_speedup, format_table, generate, generate_smoke, run_recorded_experiment};
use willump_data::text::SyntheticVocab;
use willump_data::{Column, Table};
use willump_featurize::{Analyzer, TfIdfVectorizer, VectorizerConfig};
use willump_graph::cost::measure_costs;
use willump_graph::{EngineMode, Executor, GraphBuilder, InputRow, Operator, Parallelism};
use willump_workloads::WorkloadKind;

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: fig8-parallel-speedup v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin fig8 -- --record";

/// Mean feature-computation latency over `n` inputs at a parallelism
/// level.
fn latency(exec: &Executor, table: &Table, n: usize) -> f64 {
    let n = n.min(table.n_rows());
    let inputs: Vec<InputRow> = (0..n)
        .map(|r| InputRow::from_table(table, r).expect("row"))
        .collect();
    let _ = exec.features_one(&inputs[0], None);
    let start = std::time::Instant::now();
    for input in &inputs {
        exec.features_one(input, None).expect("features");
    }
    start.elapsed().as_secs_f64() / n as f64
}

fn bench_real(kind: WorkloadKind, smoke: bool, rows: &mut Vec<Vec<String>>) {
    let w = if smoke {
        generate_smoke(kind, false)
    } else {
        generate(kind, false)
    };
    let n = if smoke { 40 } else { 200 };
    let base_exec =
        Executor::new(w.pipeline.graph().clone(), EngineMode::Compiled).expect("executor builds");
    let costs = measure_costs(&base_exec, &w.train).expect("costs measured");
    let n_fgs = base_exec.analysis().generators.len();
    let serial = latency(&base_exec, &w.test, n);
    for threads in 1..=n_fgs {
        let exec = base_exec
            .clone()
            .with_generator_costs(costs.per_generator.clone())
            .with_parallelism(Parallelism::PerInput(threads));
        let lat = latency(&exec, &w.test, n);
        rows.push(vec![
            kind.name().to_string(),
            threads.to_string(),
            fmt_speedup(serial / lat),
        ]);
    }
}

/// The paper's synthetic benchmark: the same TF-IDF operator four
/// times over four independent inputs, concatenated, then a linear
/// model — embarrassingly parallel across IFVs.
fn bench_synthetic(smoke: bool, rows: &mut Vec<Vec<String>>) {
    let (corpus_docs, col_docs, doc_words, n_inputs) = if smoke {
        (80, 50, 80, 30)
    } else {
        (300, 200, 220, 150)
    };
    let vocab = SyntheticVocab::new(2_000);
    let mut rng = willump_data::rng::seeded(11);
    // Long documents so each TF-IDF generator does ~100 us of work per
    // input — the regime the paper's synthetic benchmark targets,
    // where per-generator compute dominates dispatch overhead.
    let corpus: Vec<String> = (0..corpus_docs)
        .map(|_| vocab.document(&mut rng, doc_words, None, 0.0))
        .collect();
    let mut tfidf = TfIdfVectorizer::new(VectorizerConfig {
        analyzer: Analyzer::Char,
        ngram_lo: 3,
        ngram_hi: 5,
        min_df: 2,
        sublinear_tf: true,
        ..VectorizerConfig::default()
    })
    .expect("config valid");
    tfidf.fit(&corpus);
    let tfidf = Arc::new(tfidf);

    let mut b = GraphBuilder::new();
    let mut fgs = Vec::new();
    for i in 0..4 {
        let src = b.source(format!("text{i}"));
        let f = b
            .add(
                format!("tfidf{i}"),
                Operator::TfIdf(Arc::clone(&tfidf)),
                [src],
            )
            .expect("node added");
        fgs.push(f);
    }
    let graph = Arc::new(b.finish_with_concat("features", fgs).expect("graph built"));

    let mut table = Table::new();
    for i in 0..4 {
        let docs: Vec<String> = (0..col_docs)
            .map(|_| vocab.document(&mut rng, doc_words, None, 0.0))
            .collect();
        table
            .add_column(format!("text{i}"), Column::from(docs))
            .expect("column added");
    }

    let base = Executor::new(graph, EngineMode::Compiled).expect("executor builds");
    let serial = latency(&base, &table, n_inputs);
    for threads in 1..=4 {
        let exec = base
            .clone()
            .with_generator_costs(vec![1.0; 4])
            .with_parallelism(Parallelism::PerInput(threads));
        let lat = latency(&exec, &table, n_inputs);
        rows.push(vec![
            "synthetic-4xTFIDF".to_string(),
            threads.to_string(),
            fmt_speedup(serial / lat),
        ]);
    }
}

fn speedup_table(smoke: bool) -> String {
    let mut rows = Vec::new();
    bench_real(WorkloadKind::Product, smoke, &mut rows);
    bench_real(WorkloadKind::Toxic, smoke, &mut rows);
    bench_synthetic(smoke, &mut rows);
    format_table(
        "Figure 8: per-input parallelization speedup (feature computation latency)",
        &["pipeline", "threads", "speedup"],
        &rows,
    )
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = speedup_table(smoke);
        let body = format!(
            "Per-input parallelization speedup (paper Figure 8): real \
             benchmarks are Amdahl-limited by one\ndominant IFV, the \
             synthetic 4x-TF-IDF pipeline parallelizes nearly linearly. \
             Regenerate with\n`{RECORD_CMD}`.\n{table}"
        );
        (table, body)
    });
}
