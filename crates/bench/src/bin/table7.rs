//! Table 7: effect of the filtered subset size on top-100 query
//! performance and accuracy for Music and Toxic. Shrinking the subset
//! barely improves throughput (the filter model dominates the cost)
//! but sharply degrades accuracy once the subset approaches K.
//!
//! Flags (mirroring `table6`):
//!
//! - `--smoke`: tiny workloads — a CI-speed sanity pass over the full
//!   code path that also checks EXPERIMENTS.md carries this binary's
//!   schema header (never writes the file).
//! - `--record`: rewrite this binary's EXPERIMENTS.md section with
//!   the measured tables.

use willump::{QueryMode, TopKConfig};
use willump_bench::{
    baseline, effective_seconds, fmt_throughput, format_table, generate, generate_smoke,
    optimize_level, run_recorded_experiment, test_sample, OptLevel, PYTHON_SAMPLE_ROWS,
};
use willump_models::metrics;
use willump_workloads::{Workload, WorkloadKind};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table7-topk-subset v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table7 -- --record";

fn gen_workload(kind: WorkloadKind, smoke: bool) -> Workload {
    if smoke {
        generate_smoke(kind, kind.uses_store())
    } else {
        generate(kind, kind.uses_store())
    }
}

fn subset_tables(smoke: bool) -> String {
    let k = if smoke { 20 } else { 100 };
    let kinds = [WorkloadKind::Music, WorkloadKind::Toxic];
    // Subset sizes as fractions of the batch; the last point equals K
    // itself (the paper's 0.55 % of 18 000 = 100 = K endpoint).
    let fractions = [0.10, 0.08, 0.06, 0.05];
    let mut out = String::new();
    for kind in kinds {
        let w = gen_workload(kind, smoke);
        let n = w.test.n_rows();

        let mut opt = optimize_level(&w, OptLevel::Cascades, QueryMode::TopK { k }, None, 1);

        // Python-baseline throughput timed on a bounded sample; the
        // exact reference ranking comes from the compiled engine's
        // identical features.
        let python = baseline(&w);
        let py_sample = test_sample(&w, if smoke { 50 } else { PYTHON_SAMPLE_ROWS });
        let (py_secs, _) = effective_seconds(&w, || {
            python.predict_batch(&py_sample).expect("baseline predicts")
        });
        let ref_feats = opt
            .executor()
            .features_batch(&w.test, None)
            .expect("reference features");
        let py_scores = opt.full_model().predict_scores(&ref_feats);
        let exact_topk = metrics::top_k_indices(&py_scores, k);

        let mut rows = vec![vec![
            "python exact".to_string(),
            n.to_string(),
            fmt_throughput(py_sample.n_rows() as f64 / py_secs),
            "1.00".to_string(),
            "1.00".to_string(),
            format!("{:.4}", metrics::average_value(&exact_topk, &py_scores)),
        ]];
        if !opt.report().filter_deployed {
            out.push_str(&format!(
                "\n## Table 7 ({}): filter not deployed\n",
                kind.name()
            ));
            continue;
        }
        for &frac in &fractions {
            {
                let filter = opt.filter_mut().expect("filter deployed");
                filter.set_config(TopKConfig {
                    ck: 1,
                    min_subset_frac: frac,
                });
            }
            let (secs, approx) =
                effective_seconds(&w, || opt.top_k(&w.test, k).expect("top-K succeeds").0);
            let subset_size = opt.filter().expect("filter deployed").subset_size(n, k);
            rows.push(vec![
                format!("{:.1}% subset", frac * 100.0),
                subset_size.to_string(),
                fmt_throughput(n as f64 / secs),
                format!("{:.2}", metrics::precision_at_k(&approx, &exact_topk)),
                format!(
                    "{:.2}",
                    metrics::mean_average_precision(&approx, &exact_topk)
                ),
                format!("{:.4}", metrics::average_value(&approx, &py_scores)),
            ]);
        }
        out.push_str(&format_table(
            &format!("Table 7 ({}): subset size vs top-{k} accuracy", kind.name()),
            &[
                "subset",
                "subset size",
                "throughput",
                "precision",
                "mAP",
                "avg value",
            ],
            &rows,
        ));
    }
    out
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = subset_tables(smoke);
        let body = format!(
            "Top-K filtered subset size vs throughput and ranking accuracy\n\
             (paper Table 7). Regenerate with `{RECORD_CMD}`.\n{table}"
        );
        (table, body)
    });
}
