//! Table 9 (repo extension): statistically-aware admission control
//! under open-loop Poisson overload.
//!
//! An open-loop generator offers Poisson traffic at 0.5x, 1x, and 2x
//! of an endpoint's nominal service capacity, against two otherwise
//! identical runtimes: one plain, one with an [`AdmissionPolicy`]
//! (degrade to the small-model plan form past the SLO, shed past
//! `shed_factor` x SLO). Latency is measured from each request's
//! *scheduled* arrival time — not its send time — so queue-induced
//! send delay counts (no coordinated omission). A second cell replays
//! a single heavy-hitter key and reports how the hot-key sketch
//! spreads it round-robin across shards.
//!
//! Flags (mirroring the other recording binaries):
//!
//! - `--smoke`: tiny CI-speed sweep + EXPERIMENTS.md schema check.
//! - `--record`: rewrite this binary's EXPERIMENTS.md section.
//!
//! (Registry-wide section validation lives in `cargo run -p xtask --
//! lint`, rule WL004, which replaced the old `--check-schemas` mode.)

use std::sync::Arc;
use std::time::Duration;

use willump_bench::loadgen::{open_loop, poisson_schedule, CallOutcome, LoadReport};
use willump_bench::{format_table, run_recorded_experiment};
use willump_data::{Table, Value};
use willump_serve::{AdmissionPolicy, Request, Servable, ServerConfig, ServingRuntime, WireRow};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table9-admission-overload v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table9 -- --record";

/// Per-request full service time: 5 ms (long against scheduler wake
/// jitter), so two workers give a nominal capacity of 400 rows/s and
/// the load multipliers below are honest.
const SERVICE: Duration = Duration::from_millis(5);
/// The degraded (small-model) form answers 5x faster.
const DEGRADED_SERVICE: Duration = Duration::from_millis(1);
/// Target p99 SLO handed to the admission policy.
const SLO: Duration = Duration::from_millis(25);
const WORKERS: usize = 2;
const SHARDS: usize = 2;

/// A predictor with a fixed, known service time (score = 2x).
struct FixedService(Duration);
impl Servable for FixedService {
    fn predict_table(&self, table: &Table) -> Result<Vec<f64>, String> {
        std::thread::sleep(self.0);
        let xs = table
            .column("x")
            .ok_or_else(|| "missing x".to_string())?
            .to_f64_vec()
            .map_err(|e| e.to_string())?;
        Ok(xs.into_iter().map(|x| 2.0 * x).collect())
    }
}

/// One runtime per sweep cell, so queue state never leaks between
/// cells. Coalescing is off: every request pays the full service
/// time, keeping the nominal capacity exact.
fn build_runtime(admission: bool) -> ServingRuntime {
    let mut b = ServingRuntime::builder();
    b.config(
        ServerConfig::builder()
            .workers(WORKERS)
            .coalesce(false)
            .build(),
    );
    if admission {
        b.admission(
            AdmissionPolicy::with_slo_p99(SLO)
                .shed_factor(2.0)
                .min_samples(16),
        );
    }
    b.endpoint("model", Arc::new(FixedService(SERVICE)))
        .shards(SHARDS)
        .degraded_servable(Arc::new(FixedService(DEGRADED_SERVICE)));
    b.build().expect("runtime builds")
}

fn one_row(x: f64) -> Vec<WireRow> {
    vec![vec![("x".to_string(), Value::Float(x))]]
}

/// Drive one open-loop cell through the shared generator
/// ([`willump_bench::loadgen`]): one `Sync` client is shared by every
/// sender thread; shed responses map to [`CallOutcome::Shed`] and
/// contribute no latency sample (nothing was served).
fn run_cell(runtime: &ServingRuntime, arrivals: &[f64], threads: usize) -> LoadReport {
    let client = runtime.client();
    let report = open_loop(arrivals, threads, |i| {
        let resp = client
            .call(Request {
                endpoint: Some("model".to_string()),
                ..Request::new(i as u64, one_row(i as f64))
            })
            .expect("serving succeeds");
        if resp.overloaded {
            CallOutcome::Shed
        } else {
            assert!(resp.error.is_none(), "unexpected error: {:?}", resp.error);
            CallOutcome::Served
        }
    });
    assert_eq!(report.errors, 0, "every response was checked above");
    report
}

/// Replay one heavy-hitter key through an admission runtime and
/// report how its traffic spread over the endpoint's shards.
fn hot_key_spread(n: usize) -> (Vec<u64>, u64) {
    let runtime = build_runtime(true);
    let client = runtime.client();
    for i in 0..n {
        client
            .predict_keyed("model", "viral-item", one_row(i as f64))
            .expect("hot-key request serves");
    }
    let ep = runtime.endpoint("model", 1).expect("endpoint exists");
    let spread = ep.stats().shard_requests();
    (spread, runtime.stats().hot_keys())
}

fn fmt_ms(seconds: f64) -> String {
    format!("{:.1}ms", seconds * 1e3)
}

fn sweep(smoke: bool) -> (String, String) {
    let capacity = WORKERS as f64 / SERVICE.as_secs_f64();
    let (multipliers, duration, threads): (&[f64], f64, usize) = if smoke {
        (&[0.5, 2.0], 0.25, 32)
    } else {
        (&[0.5, 1.0, 2.0], 2.0, 128)
    };

    let mut rows = Vec::new();
    let mut worst: Option<(f64, f64)> = None; // (plain p99, admission p99)
    for &mult in multipliers {
        let rate = capacity * mult;
        let n = (rate * duration).ceil() as usize;
        let mut pair = (0.0, 0.0);
        for admission in [false, true] {
            let runtime = build_runtime(admission);
            let arrivals = poisson_schedule(rate, n, 42 + mult as u64);
            let cell = run_cell(&runtime, &arrivals, threads);
            if admission {
                pair.1 = cell.p99();
            } else {
                pair.0 = cell.p99();
            }
            rows.push(vec![
                format!("{mult}x"),
                if admission { "on" } else { "off" }.to_string(),
                cell.served.to_string(),
                cell.shed.to_string(),
                runtime.stats().degraded().to_string(),
                fmt_ms(cell.p50()),
                fmt_ms(cell.p99()),
            ]);
        }
        worst = Some(pair);
    }

    // THE acceptance check: at the highest offered load, admission
    // control must at least halve the open-loop p99.
    let (plain_p99, admission_p99) = worst.expect("sweep ran");
    if !smoke {
        assert!(
            admission_p99 <= 0.5 * plain_p99,
            "admission p99 {admission_p99:.4}s not <= 0.5x plain p99 {plain_p99:.4}s"
        );
    }

    let hot_n = if smoke { 100 } else { 400 };
    let (spread, hot_hits) = hot_key_spread(hot_n);
    let spread_shards = spread.iter().filter(|&&c| c > 0).count();
    assert!(
        spread_shards >= 2,
        "hot key never spread: {spread:?} (sketch hits {hot_hits})"
    );

    let table = format_table(
        "Table 9: open-loop Poisson overload, admission control on/off",
        &[
            "offered load",
            "admission",
            "served",
            "shed",
            "degraded",
            "p50",
            "p99",
        ],
        &rows,
    );
    let hot_line = format!(
        "\nHot-key telemetry: one key, {hot_n} requests -> shard spread \
         {spread:?} ({spread_shards}/{SHARDS} shards, {hot_hits} sketch hits).\n"
    );
    let output = format!("{table}{hot_line}");
    let body = format!(
        "Statistically-aware admission control (repo extension beyond\n\
         the paper): open-loop Poisson traffic at fractions of nominal\n\
         capacity ({capacity:.0} rows/s = {WORKERS} workers x {SERVICE:?}\n\
         service), SLO p99 {SLO:?}, shed factor 2.0. Latency is measured\n\
         from scheduled arrival (coordinated-omission-safe); shed\n\
         responses serve no rows and record no latency.\n\
         Regenerate with `{RECORD_CMD}`.\n{output}"
    );
    (output, body)
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, sweep);
}
