//! Figure 5: batch-query throughput of Python, Willump compilation,
//! and compilation + cascades on all six benchmarks (local tables).

use willump::QueryMode;
use willump_bench::{
    baseline, batch_throughput, batch_throughput_rows, fmt_speedup, fmt_throughput, generate,
    optimize_level, print_table, test_sample, OptLevel, PYTHON_SAMPLE_ROWS,
};
use willump_workloads::WorkloadKind;

fn main() {
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let t0 = std::time::Instant::now();
        let w = generate(kind, false);
        let reps = 3;
        eprintln!(
            "[fig5] {} generated ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        // The interpreted baseline is timed on a bounded sample (see
        // PYTHON_SAMPLE_ROWS); throughput is a per-row rate.
        let python = baseline(&w);
        let py_sample = test_sample(&w, PYTHON_SAMPLE_ROWS);
        let py_tp = batch_throughput_rows(&w, py_sample.n_rows(), 1, || {
            python.predict_batch(&py_sample).expect("baseline predicts");
        });
        eprintln!(
            "[fig5] {} python done ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        let compiled = optimize_level(&w, OptLevel::Compiled, QueryMode::Batch, None, 1);
        let c_tp = batch_throughput(&w, reps, || {
            compiled.predict_batch(&w.test).expect("compiled predicts");
        });
        eprintln!(
            "[fig5] {} compiled done ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        let (casc_cell, casc_speedup) = if kind.is_classification() {
            let cascades = optimize_level(&w, OptLevel::Cascades, QueryMode::Batch, None, 1);
            let k_tp = batch_throughput(&w, reps, || {
                cascades.predict_batch(&w.test).expect("cascade predicts");
            });
            (fmt_throughput(k_tp), fmt_speedup(k_tp / c_tp))
        } else {
            ("N/A".to_string(), "N/A".to_string())
        };
        eprintln!(
            "[fig5] {} finished ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        rows.push(vec![
            kind.name().to_string(),
            fmt_throughput(py_tp),
            fmt_throughput(c_tp),
            casc_cell,
            fmt_speedup(c_tp / py_tp),
            casc_speedup,
        ]);
    }
    print_table(
        "Figure 5: batch throughput (rows/s), local tables",
        &[
            "benchmark",
            "python",
            "compiled",
            "compiled+cascades",
            "compile speedup",
            "cascade speedup",
        ],
        &rows,
    );
}
