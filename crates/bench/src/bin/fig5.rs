//! Figure 5: batch-query throughput of Python, Willump compilation,
//! and compilation + cascades on all six benchmarks (local tables).
//!
//! Flags:
//!
//! - `--smoke`: tiny workloads and a single rep — a CI-speed sanity
//!   pass over the full code path that also validates the committed
//!   EXPERIMENTS.md schema header (never rewrites the file).
//! - `--record`: re-measure at full experiment size and rewrite this
//!   binary's EXPERIMENTS.md section.

use willump::QueryMode;
use willump_bench::{
    baseline, batch_throughput, batch_throughput_rows, fmt_speedup, fmt_throughput, format_table,
    generate, generate_smoke, optimize_level, run_recorded_experiment, test_sample, OptLevel,
    PYTHON_SAMPLE_ROWS,
};
use willump_workloads::WorkloadKind;

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: fig5-batch-throughput v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin fig5 -- --record";

fn throughput_table(smoke: bool) -> String {
    let reps = if smoke { 1 } else { 3 };
    let py_rows = if smoke { 40 } else { PYTHON_SAMPLE_ROWS };
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let t0 = std::time::Instant::now();
        let w = if smoke {
            generate_smoke(kind, false)
        } else {
            generate(kind, false)
        };
        eprintln!(
            "[fig5] {} generated ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        // The interpreted baseline is timed on a bounded sample (see
        // PYTHON_SAMPLE_ROWS); throughput is a per-row rate.
        let python = baseline(&w);
        let py_sample = test_sample(&w, py_rows);
        let py_tp = batch_throughput_rows(&w, py_sample.n_rows(), 1, || {
            python.predict_batch(&py_sample).expect("baseline predicts");
        });
        eprintln!(
            "[fig5] {} python done ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        let compiled = optimize_level(&w, OptLevel::Compiled, QueryMode::Batch, None, 1);
        let c_tp = batch_throughput(&w, reps, || {
            compiled.predict_batch(&w.test).expect("compiled predicts");
        });
        eprintln!(
            "[fig5] {} compiled done ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        let (casc_cell, casc_speedup) = if kind.is_classification() {
            let cascades = optimize_level(&w, OptLevel::Cascades, QueryMode::Batch, None, 1);
            let k_tp = batch_throughput(&w, reps, || {
                cascades.predict_batch(&w.test).expect("cascade predicts");
            });
            (fmt_throughput(k_tp), fmt_speedup(k_tp / c_tp))
        } else {
            ("N/A".to_string(), "N/A".to_string())
        };
        eprintln!(
            "[fig5] {} finished ({:.0}s)",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );

        rows.push(vec![
            kind.name().to_string(),
            fmt_throughput(py_tp),
            fmt_throughput(c_tp),
            casc_cell,
            fmt_speedup(c_tp / py_tp),
            casc_speedup,
        ]);
    }
    format_table(
        "Figure 5: batch throughput (rows/s), local tables",
        &[
            "benchmark",
            "python",
            "compiled",
            "compiled+cascades",
            "compile speedup",
            "cascade speedup",
        ],
        &rows,
    )
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = throughput_table(smoke);
        let body = format!(
            "Batch-query throughput at the three optimization levels \
             (paper Figure 5): regenerate with\n`{RECORD_CMD}`.\n\
             The interpreted baseline is timed on a \
             {PYTHON_SAMPLE_ROWS}-row sample (throughput is a per-row \
             rate); optimized\nconfigurations run the full test set.\
             \n{table}"
        );
        (table, body)
    });
}
