//! Table 6: end-to-end serving through the Clipper-like layer.
//!
//! Two experiments:
//!
//! 1. **Latency** (the paper's Table 6 shape): mean request latency
//!    for Product and Toxic, with and without Willump optimization,
//!    at request batch sizes 1, 10, and 100.
//! 2. **Worker sweep** (ROADMAP scale-out): serving *throughput* of
//!    the optimized pipeline under concurrent closed-loop clients,
//!    sweeping worker counts {1, 2, 4} with coalesced batching
//!    against the single-worker seed configuration (no coalescing).
//!
//! Flags:
//!
//! - `--smoke`: tiny workloads and request counts — a CI-speed sanity
//!   pass over the full code path (never writes EXPERIMENTS.md).
//! - `--record`: additionally rewrite `EXPERIMENTS.md` with the
//!   measured tables (the benchmark-trajectory capture; see the
//!   schema comment in that file).

use std::sync::Arc;
use std::time::Instant;

use willump::QueryMode;
use willump_bench::{
    assert_experiments_schema, baseline, fmt_latency, fmt_speedup, fmt_throughput, format_table,
    generate, generate_smoke, optimize_level, record_experiments_section, serving_throughput,
    smoke_record_flags, OptLevel,
};
use willump_serve::{table_row_to_wire, Servable, ServerConfig, ServingRuntime};
use willump_store::LatencyModel;
use willump_workloads::{Workload, WorkloadConfig, WorkloadKind};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shapes change.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table6-serving-sweep v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table6 -- --record";

/// A single-endpoint runtime over one predictor (the modern spelling
/// of the old one-predictor `ClipperServer`), sharded across its
/// workers.
fn single_endpoint_runtime(predictor: Arc<dyn Servable>, config: ServerConfig) -> ServingRuntime {
    let workers = config.workers.max(1);
    let mut builder = ServingRuntime::builder();
    builder.config(config);
    builder.endpoint("bench", predictor).shards(workers);
    builder.build().expect("runtime builds")
}

/// Mean request latency through the serving boundary at one batch
/// size.
fn request_latency(w: &Workload, predictor: Arc<dyn Servable>, batch: usize, reqs: usize) -> f64 {
    let runtime = single_endpoint_runtime(predictor, ServerConfig::default());
    let client = runtime.client();
    let n = w.test.n_rows();
    // Warm-up request.
    let rows: Vec<_> = (0..batch)
        .map(|i| table_row_to_wire(&w.test, i % n).expect("row"))
        .collect();
    client
        .predict_endpoint("bench", rows)
        .expect("serving succeeds");

    let start = Instant::now();
    for r in 0..reqs {
        let rows: Vec<_> = (0..batch)
            .map(|i| table_row_to_wire(&w.test, (r * batch + i) % n).expect("row"))
            .collect();
        client
            .predict_endpoint("bench", rows)
            .expect("serving succeeds");
    }
    start.elapsed().as_secs_f64() / reqs as f64
}

/// The server configurations the sweep compares. The first is the
/// seed behavior (one worker, per-request dispatch); the rest add
/// coalesced batching and scale worker count.
fn sweep_configs() -> Vec<(&'static str, ServerConfig)> {
    vec![
        (
            "seed (1w, no coalesce)",
            ServerConfig::builder().workers(1).coalesce(false).build(),
        ),
        ("1 worker", ServerConfig::builder().workers(1).build()),
        ("2 workers", ServerConfig::builder().workers(2).build()),
        ("4 workers", ServerConfig::builder().workers(4).build()),
    ]
}

struct SweepScale {
    clients: usize,
    /// Requests per client at batch size `b`: `(budget / b).clamp(lo, hi)`.
    req_budget: usize,
    req_min: usize,
    req_max: usize,
    batches: Vec<usize>,
}

fn latency_table(smoke: bool) -> String {
    let kinds = [WorkloadKind::Product, WorkloadKind::Toxic];
    let batches: &[usize] = if smoke { &[1, 10] } else { &[1, 10, 100] };
    let mut rows = Vec::new();
    for kind in kinds {
        let w = gen_workload(kind, smoke);
        let plain: Arc<dyn Servable> = Arc::new(baseline(&w));
        let optimized: Arc<dyn Servable> = Arc::new(optimize_level(
            &w,
            OptLevel::Cascades,
            QueryMode::Batch,
            None,
            1,
        ));
        for &batch in batches {
            let reqs = if smoke {
                3
            } else {
                (400 / batch).clamp(20, 200)
            };
            // The interpreted pipeline is orders of magnitude slower;
            // a handful of requests estimate its mean latency stably.
            let reqs_plain = if smoke { 2 } else { (40 / batch).clamp(3, 40) };
            let lat_plain = request_latency(&w, plain.clone(), batch, reqs_plain);
            let lat_opt = request_latency(&w, optimized.clone(), batch, reqs);
            rows.push(vec![
                kind.name().to_string(),
                batch.to_string(),
                fmt_latency(lat_plain),
                fmt_latency(lat_opt),
                fmt_speedup(lat_plain / lat_opt),
            ]);
        }
    }
    format_table(
        "Table 6: Clipper-style serving latency per request",
        &[
            "benchmark",
            "batch size",
            "clipper latency",
            "clipper+willump latency",
            "speedup",
        ],
        &rows,
    )
}

fn gen_workload(kind: WorkloadKind, smoke: bool) -> Workload {
    if smoke {
        generate_smoke(kind, false)
    } else {
        generate(kind, false)
    }
}

/// Generate the remote-feature serving workload: Music with its data
/// tables behind a feature store whose simulated network really
/// sleeps the calling thread. This is the regime where worker count
/// matters even on one core — workers overlap round-trip waits — and
/// where coalescing amortizes round trips across merged requests,
/// mirroring the paper's remote-Redis serving setup.
fn gen_remote_workload(smoke: bool) -> Workload {
    let (n_train, n_valid, n_test) = if smoke {
        (300, 150, 200)
    } else {
        (1_000, 500, 1_000)
    };
    let rtt = if smoke { 200_000 } else { 1_000_000 };
    let cfg = WorkloadConfig {
        n_train,
        n_valid,
        n_test,
        seed: 42,
        remote: Some(LatencyModel::real_network(rtt, 2_000)),
    };
    WorkloadKind::Music
        .generate(&cfg)
        .expect("workload generates")
}

fn sweep_table(smoke: bool) -> String {
    let kinds = [WorkloadKind::Product, WorkloadKind::Toxic];
    let scale = if smoke {
        SweepScale {
            clients: 4,
            req_budget: 16,
            req_min: 2,
            req_max: 8,
            batches: vec![1, 10],
        }
    } else {
        SweepScale {
            clients: 8,
            req_budget: 1600,
            req_min: 10,
            req_max: 200,
            batches: vec![1, 10, 100],
        }
    };
    let mut workloads: Vec<(String, Workload, usize)> = kinds
        .iter()
        .map(|&kind| (kind.name().to_string(), gen_workload(kind, smoke), 1))
        .collect();
    // Real round trips make requests ~100x slower; shrink the request
    // budget so the remote rows measure in seconds, not minutes.
    workloads.push(("music (remote)".to_string(), gen_remote_workload(smoke), 8));
    let mut rows = Vec::new();
    for (name, w, budget_divisor) in &workloads {
        let optimized: Arc<dyn Servable> = Arc::new(optimize_level(
            w,
            OptLevel::Cascades,
            QueryMode::Batch,
            None,
            1,
        ));
        for &batch in &scale.batches {
            let reqs =
                (scale.req_budget / budget_divisor / batch).clamp(scale.req_min, scale.req_max);
            let mut seed_tput = None;
            for (label, config) in sweep_configs() {
                let runtime = single_endpoint_runtime(optimized.clone(), config);
                let tput = serving_throughput(
                    &runtime,
                    Some("bench"),
                    &w.test,
                    batch,
                    scale.clients,
                    reqs,
                );
                let coalesced = runtime.stats().coalesced_rows();
                let max_rows = runtime.stats().max_batch_rows();
                drop(runtime);
                let vs_seed = match seed_tput {
                    None => {
                        seed_tput = Some(tput);
                        "1.0x (baseline)".to_string()
                    }
                    Some(s) => fmt_speedup(tput / s),
                };
                rows.push(vec![
                    name.clone(),
                    batch.to_string(),
                    scale.clients.to_string(),
                    label.to_string(),
                    format!("{} rows/s", fmt_throughput(tput)),
                    vs_seed,
                    coalesced.to_string(),
                    max_rows.to_string(),
                ]);
            }
        }
    }
    format_table(
        "Table 6b: serving throughput, worker sweep (coalesced batching vs seed)",
        &[
            "benchmark",
            "batch size",
            "clients",
            "server config",
            "throughput",
            "vs seed",
            "coalesced rows",
            "max model batch",
        ],
        &rows,
    )
}

fn main() {
    let (smoke, record) = smoke_record_flags();

    let latency = latency_table(smoke);
    print!("{latency}");
    let sweep = sweep_table(smoke);
    print!("{sweep}");

    if smoke {
        assert_experiments_schema(EXPERIMENTS_SCHEMA, RECORD_CMD);
    }
    if record && !smoke {
        let body = format!(
            "Serving-layer latency and worker sweep: regenerate with\n\
             `{RECORD_CMD}`.\n\
             Throughput rows compare the multi-worker coalescing server \
             against the seed configuration\n\
             (single worker, per-request dispatch) on the same optimized \
             pipeline and machine.\n{latency}{sweep}"
        );
        record_experiments_section(EXPERIMENTS_SCHEMA, &body);
    }
}
