//! Table 6: end-to-end serving through the Clipper-like layer.
//!
//! Three experiments:
//!
//! 1. **Latency** (the paper's Table 6 shape): mean request latency
//!    for Product and Toxic, with and without Willump optimization,
//!    at request batch sizes 1, 10, and 100.
//! 2. **Worker sweep** (ROADMAP scale-out): serving *throughput* of
//!    the optimized pipeline under concurrent closed-loop clients,
//!    sweeping worker counts {1, 2, 4} with coalesced batching
//!    against the single-worker seed configuration (no coalescing).
//! 3. **Local-vs-remote shard sweep** (cross-process sharding): the
//!    same optimized endpoint deployed as 4 local shards, 2 local +
//!    2 remote, and 4 remote — the remote shards served by a
//!    `RemoteRuntimeNode` over real loopback TCP speaking the
//!    multiplexed binary v2 wire protocol — at 1 and 8 closed-loop
//!    clients, measuring what the `WorkerTransport` hop costs
//!    relative to in-process queues and what the node's extra worker
//!    pool buys under concurrency.
//!
//! Flags:
//!
//! - `--smoke`: tiny workloads and request counts — a CI-speed sanity
//!   pass over the full code path (never writes EXPERIMENTS.md).
//! - `--record`: additionally rewrite `EXPERIMENTS.md` with the
//!   measured tables (the benchmark-trajectory capture; see the
//!   schema comment in that file).

use std::sync::Arc;
use std::time::Instant;

use willump::QueryMode;
use willump_bench::{
    baseline, fmt_latency, fmt_speedup, fmt_throughput, format_table, generate, generate_smoke,
    optimize_level, run_recorded_experiment, serving_throughput, OptLevel,
};
use willump_serve::{table_row_to_wire, RemoteRuntimeNode, Servable, ServerConfig, ServingRuntime};
use willump_store::LatencyModel;
use willump_workloads::{Workload, WorkloadConfig, WorkloadKind};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shapes change.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table6-serving-sweep v3 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table6 -- --record";

/// A single-endpoint runtime over one predictor (the modern spelling
/// of the old one-predictor `ClipperServer`), sharded across its
/// workers.
fn single_endpoint_runtime(predictor: Arc<dyn Servable>, config: ServerConfig) -> ServingRuntime {
    let workers = config.workers.max(1);
    let mut builder = ServingRuntime::builder();
    builder.config(config);
    builder.endpoint("bench", predictor).shards(workers);
    builder.build().expect("runtime builds")
}

/// Mean request latency through the serving boundary at one batch
/// size.
fn request_latency(w: &Workload, predictor: Arc<dyn Servable>, batch: usize, reqs: usize) -> f64 {
    let runtime = single_endpoint_runtime(predictor, ServerConfig::default());
    let client = runtime.client();
    let n = w.test.n_rows();
    // Warm-up request.
    let rows: Vec<_> = (0..batch)
        .map(|i| table_row_to_wire(&w.test, i % n).expect("row"))
        .collect();
    client
        .predict_endpoint("bench", rows)
        .expect("serving succeeds");

    let start = Instant::now();
    for r in 0..reqs {
        let rows: Vec<_> = (0..batch)
            .map(|i| table_row_to_wire(&w.test, (r * batch + i) % n).expect("row"))
            .collect();
        client
            .predict_endpoint("bench", rows)
            .expect("serving succeeds");
    }
    start.elapsed().as_secs_f64() / reqs as f64
}

/// The server configurations the sweep compares. The first is the
/// seed behavior (one worker, per-request dispatch); the rest add
/// coalesced batching and scale worker count.
fn sweep_configs() -> Vec<(&'static str, ServerConfig)> {
    vec![
        (
            "seed (1w, no coalesce)",
            ServerConfig::builder().workers(1).coalesce(false).build(),
        ),
        ("1 worker", ServerConfig::builder().workers(1).build()),
        ("2 workers", ServerConfig::builder().workers(2).build()),
        ("4 workers", ServerConfig::builder().workers(4).build()),
    ]
}

struct SweepScale {
    clients: usize,
    /// Requests per client at batch size `b`: `(budget / b).clamp(lo, hi)`.
    req_budget: usize,
    req_min: usize,
    req_max: usize,
    batches: Vec<usize>,
}

fn latency_table(smoke: bool) -> String {
    let kinds = [WorkloadKind::Product, WorkloadKind::Toxic];
    let batches: &[usize] = if smoke { &[1, 10] } else { &[1, 10, 100] };
    let mut rows = Vec::new();
    for kind in kinds {
        let w = gen_workload(kind, smoke);
        let plain: Arc<dyn Servable> = Arc::new(baseline(&w));
        let optimized: Arc<dyn Servable> = Arc::new(optimize_level(
            &w,
            OptLevel::Cascades,
            QueryMode::Batch,
            None,
            1,
        ));
        for &batch in batches {
            let reqs = if smoke {
                3
            } else {
                (400 / batch).clamp(20, 200)
            };
            // The interpreted pipeline is orders of magnitude slower;
            // a handful of requests estimate its mean latency stably.
            let reqs_plain = if smoke { 2 } else { (40 / batch).clamp(3, 40) };
            let lat_plain = request_latency(&w, plain.clone(), batch, reqs_plain);
            let lat_opt = request_latency(&w, optimized.clone(), batch, reqs);
            rows.push(vec![
                kind.name().to_string(),
                batch.to_string(),
                fmt_latency(lat_plain),
                fmt_latency(lat_opt),
                fmt_speedup(lat_plain / lat_opt),
            ]);
        }
    }
    format_table(
        "Table 6: Clipper-style serving latency per request",
        &[
            "benchmark",
            "batch size",
            "clipper latency",
            "clipper+willump latency",
            "speedup",
        ],
        &rows,
    )
}

fn gen_workload(kind: WorkloadKind, smoke: bool) -> Workload {
    if smoke {
        generate_smoke(kind, false)
    } else {
        generate(kind, false)
    }
}

/// Generate the remote-feature serving workload: Music with its data
/// tables behind a feature store whose simulated network really
/// sleeps the calling thread. This is the regime where worker count
/// matters even on one core — workers overlap round-trip waits — and
/// where coalescing amortizes round trips across merged requests,
/// mirroring the paper's remote-Redis serving setup.
fn gen_remote_workload(smoke: bool) -> Workload {
    let (n_train, n_valid, n_test) = if smoke {
        (300, 150, 200)
    } else {
        (1_000, 500, 1_000)
    };
    let rtt = if smoke { 200_000 } else { 1_000_000 };
    let cfg = WorkloadConfig {
        n_train,
        n_valid,
        n_test,
        seed: 42,
        remote: Some(LatencyModel::real_network(rtt, 2_000)),
    };
    WorkloadKind::Music
        .generate(&cfg)
        .expect("workload generates")
}

fn sweep_table(smoke: bool) -> String {
    let kinds = [WorkloadKind::Product, WorkloadKind::Toxic];
    let scale = if smoke {
        SweepScale {
            clients: 4,
            req_budget: 16,
            req_min: 2,
            req_max: 8,
            batches: vec![1, 10],
        }
    } else {
        SweepScale {
            clients: 8,
            req_budget: 1600,
            req_min: 10,
            req_max: 200,
            batches: vec![1, 10, 100],
        }
    };
    let mut workloads: Vec<(String, Workload, usize)> = kinds
        .iter()
        .map(|&kind| (kind.name().to_string(), gen_workload(kind, smoke), 1))
        .collect();
    // Real round trips make requests ~100x slower; shrink the request
    // budget so the remote rows measure in seconds, not minutes.
    workloads.push(("music (remote)".to_string(), gen_remote_workload(smoke), 8));
    let mut rows = Vec::new();
    for (name, w, budget_divisor) in &workloads {
        let optimized: Arc<dyn Servable> = Arc::new(optimize_level(
            w,
            OptLevel::Cascades,
            QueryMode::Batch,
            None,
            1,
        ));
        for &batch in &scale.batches {
            let reqs =
                (scale.req_budget / budget_divisor / batch).clamp(scale.req_min, scale.req_max);
            let mut seed_tput = None;
            for (label, config) in sweep_configs() {
                let runtime = single_endpoint_runtime(optimized.clone(), config);
                let tput = serving_throughput(
                    &runtime,
                    Some("bench"),
                    &w.test,
                    batch,
                    scale.clients,
                    reqs,
                );
                let coalesced = runtime.stats().coalesced_rows();
                let max_rows = runtime.stats().max_batch_rows();
                drop(runtime);
                let vs_seed = match seed_tput {
                    None => {
                        seed_tput = Some(tput);
                        "1.0x (baseline)".to_string()
                    }
                    Some(s) => fmt_speedup(tput / s),
                };
                rows.push(vec![
                    name.clone(),
                    batch.to_string(),
                    scale.clients.to_string(),
                    label.to_string(),
                    format!("{} rows/s", fmt_throughput(tput)),
                    vs_seed,
                    coalesced.to_string(),
                    max_rows.to_string(),
                ]);
            }
        }
    }
    format_table(
        "Table 6b: serving throughput, worker sweep (coalesced batching vs seed)",
        &[
            "benchmark",
            "batch size",
            "clients",
            "server config",
            "throughput",
            "vs seed",
            "coalesced rows",
            "max model batch",
        ],
        &rows,
    )
}

/// The cross-process shard sweep: one optimized Product endpoint
/// deployed over mixes of local worker-queue shards and TCP-remote
/// shards served by a `RemoteRuntimeNode` child runtime on loopback
/// (same machine, so the delta isolates the transport: a binary v2
/// frame + TCP round trip + the node's own admission path). The
/// client dimension is swept because the two regimes differ: a single
/// closed-loop stream pays the forward round trip serially (remote
/// should stay near 1.0x), while concurrent streams forward from
/// their own calling threads — so remote shards add the node's worker
/// pool on top of the parent's and mixed deployments should *exceed*
/// the all-local baseline.
fn remote_shard_table(smoke: bool) -> String {
    let w = gen_workload(WorkloadKind::Product, smoke);
    let optimized: Arc<dyn Servable> = Arc::new(optimize_level(
        &w,
        OptLevel::Cascades,
        QueryMode::Batch,
        None,
        1,
    ));
    let (client_counts, reqs, batches): (Vec<usize>, usize, Vec<usize>) = if smoke {
        (vec![1, 2], 4, vec![4])
    } else {
        (vec![1, 8], 100, vec![1, 10, 100])
    };
    let deployments: &[(&str, usize, usize)] = &[
        ("4 local shards", 4, 0),
        ("2 local + 2 remote", 2, 2),
        ("4 remote shards", 0, 4),
    ];
    let mut rows = Vec::new();
    for &batch in &batches {
        for &clients in &client_counts {
            let mut base_tput = None;
            for &(label, local, remote) in deployments {
                // The child node serves the same plan behind its own
                // 2-worker pool; one node hosts all remote shards. The
                // dispatch pool is widened to 8 so that under 8-way
                // client load as many forwards sit inside the node's
                // runtime as the local baseline queues at its workers
                // — otherwise the node coalesces smaller model batches
                // than the parent and the comparison measures queue
                // shaping, not the transport.
                let node = (remote > 0).then(|| {
                    let mut nb = ServingRuntime::builder();
                    nb.config(ServerConfig::builder().workers(2).build());
                    nb.endpoint("bench", optimized.clone()).shards(2);
                    RemoteRuntimeNode::bind_with_workers(
                        "127.0.0.1:0",
                        nb.build().expect("node runtime builds"),
                        8,
                    )
                    .expect("node binds")
                });
                let mut b = ServingRuntime::builder();
                b.config(ServerConfig::builder().workers(2).build());
                let mut eb = b.endpoint("bench", optimized.clone()).shards(local);
                if let Some(node) = &node {
                    let addr = node.local_addr().to_string();
                    for _ in 0..remote {
                        eb = eb.shard_remote(&addr);
                    }
                }
                let _ = eb;
                let runtime = b.build().expect("runtime builds");
                let tput =
                    serving_throughput(&runtime, Some("bench"), &w.test, batch, clients, reqs);
                let forwards = runtime.stats().remote_forwards();
                let errors = runtime.stats().transport_errors();
                let ep = runtime.endpoint("bench", 1).expect("registered");
                let tstats = ep.transport_stats();
                let (f_sum, n_sum) = tstats.iter().fold((0u64, 0u64), |(f, n), t| {
                    (f + t.forwards, n + t.total_nanos)
                });
                let mean_forward = if f_sum == 0 {
                    "-".to_string()
                } else {
                    fmt_latency(n_sum as f64 / f_sum as f64 / 1e9)
                };
                if remote > 0 {
                    assert!(
                        forwards > 0,
                        "the remote shards must actually serve traffic"
                    );
                    assert_eq!(errors, 0, "loopback transport must not fail");
                }
                let vs_base = match base_tput {
                    None => {
                        base_tput = Some(tput);
                        "1.0x (baseline)".to_string()
                    }
                    Some(b) => fmt_speedup(tput / b),
                };
                rows.push(vec![
                    batch.to_string(),
                    clients.to_string(),
                    label.to_string(),
                    format!("{} rows/s", fmt_throughput(tput)),
                    vs_base,
                    forwards.to_string(),
                    mean_forward,
                ]);
            }
        }
    }
    format_table(
        "Table 6c: local-vs-remote shard sweep (cross-process serving, product)",
        &[
            "batch size",
            "clients",
            "deployment",
            "throughput",
            "vs 4-local",
            "remote forwards",
            "mean forward RTT",
        ],
        &rows,
    )
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let latency = latency_table(smoke);
        print!("{latency}");
        let sweep = sweep_table(smoke);
        print!("{sweep}");
        let remote = remote_shard_table(smoke);
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let body = format!(
            "Serving-layer latency, worker sweep, and cross-process shard \
             sweep: regenerate with\n\
             `{RECORD_CMD}`.\n\
             Throughput rows compare the multi-worker coalescing server \
             against the seed configuration\n\
             (single worker, per-request dispatch) on the same optimized \
             pipeline and machine; the\n\
             local-vs-remote sweep serves the same endpoint over \
             in-process shards, a 2+2 mix, and\n\
             all-remote shards hosted by a `RemoteRuntimeNode` child \
             runtime over loopback TCP\n\
             (binary v2 wire protocol, multiplexed), at 1 and 8 \
             closed-loop clients.\n\
             Recorded on a {cores}-core host. The remote-vs-local \
             ratio is bounded by how much compute a\n\
             forward amortizes: on a single core the node's worker \
             pool cannot add parallel capacity\n\
             (every forward only adds context switches), so \
             concurrency ratios top out near parity\n\
             and the per-row transport tax shows directly — with \
             more cores the remote deployments\n\
             gain the node's pool outright. See the micro-wirecodec \
             section for the codec-level costs.\n{latency}{sweep}{remote}"
        );
        // The first two tables were printed as they finished (the full
        // sweep takes minutes); only the remote table is left to print.
        (remote, body)
    });
}
