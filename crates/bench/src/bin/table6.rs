//! Table 6: end-to-end query latency when serving Product and Toxic
//! through the Clipper-like layer, with and without Willump
//! optimization, at request batch sizes 1, 10, and 100.

use std::sync::Arc;
use std::time::Instant;

use willump::QueryMode;
use willump_bench::{
    baseline, fmt_latency, fmt_speedup, generate, optimize_level, print_table, OptLevel,
};
use willump_serve::{table_row_to_wire, ClipperServer, Servable, ServerConfig};
use willump_workloads::{Workload, WorkloadKind};

/// Mean request latency through the serving boundary at one batch
/// size.
fn request_latency(w: &Workload, predictor: Arc<dyn Servable>, batch: usize, reqs: usize) -> f64 {
    let server = ClipperServer::start(predictor, ServerConfig::default());
    let client = server.client();
    let n = w.test.n_rows();
    // Warm-up request.
    let rows: Vec<_> = (0..batch)
        .map(|i| table_row_to_wire(&w.test, i % n).expect("row"))
        .collect();
    client.predict(rows).expect("serving succeeds");

    let start = Instant::now();
    for r in 0..reqs {
        let rows: Vec<_> = (0..batch)
            .map(|i| table_row_to_wire(&w.test, (r * batch + i) % n).expect("row"))
            .collect();
        client.predict(rows).expect("serving succeeds");
    }
    start.elapsed().as_secs_f64() / reqs as f64
}

fn main() {
    let kinds = [WorkloadKind::Product, WorkloadKind::Toxic];
    let batches = [1usize, 10, 100];
    let mut rows = Vec::new();
    for kind in kinds {
        let w = generate(kind, false);
        let plain: Arc<dyn Servable> = Arc::new(baseline(&w));
        let optimized: Arc<dyn Servable> = Arc::new(optimize_level(
            &w,
            OptLevel::Cascades,
            QueryMode::Batch,
            None,
            1,
        ));
        for &batch in &batches {
            let reqs = (400 / batch).clamp(20, 200);
            // The interpreted pipeline is orders of magnitude slower;
            // a handful of requests estimate its mean latency stably.
            let reqs_plain = (40 / batch).clamp(3, 40);
            let lat_plain = request_latency(&w, plain.clone(), batch, reqs_plain);
            let lat_opt = request_latency(&w, optimized.clone(), batch, reqs);
            rows.push(vec![
                kind.name().to_string(),
                batch.to_string(),
                fmt_latency(lat_plain),
                fmt_latency(lat_opt),
                fmt_speedup(lat_plain / lat_opt),
            ]);
        }
    }
    print_table(
        "Table 6: Clipper-style serving latency per request",
        &[
            "benchmark",
            "batch size",
            "clipper latency",
            "clipper+willump latency",
            "speedup",
        ],
        &rows,
    );
}
