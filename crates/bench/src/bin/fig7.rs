//! Figure 7: throughput versus accuracy on the classification
//! benchmarks while sweeping the cascade threshold. The full model
//! and the small model alone are the two endpoints.
//!
//! Flags:
//!
//! - `--smoke`: tiny workloads and a single rep — a CI-speed sanity
//!   pass that also validates the committed EXPERIMENTS.md schema
//!   header (never rewrites the file). Workloads whose cascades do
//!   not deploy at smoke size are reported as such, which is itself a
//!   valid exercise of the gate-off path.
//! - `--record`: re-measure at full experiment size and rewrite this
//!   binary's EXPERIMENTS.md section.

use willump::cascade::THRESHOLD_CANDIDATES;
use willump::{Willump, WillumpConfig};
use willump_bench::{
    batch_throughput, fmt_throughput, format_table, generate, generate_smoke,
    run_recorded_experiment,
};
use willump_models::metrics;
use willump_workloads::WorkloadKind;

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: fig7-threshold-sweep v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin fig7 -- --record";

fn sweep_tables(smoke: bool) -> String {
    let reps = if smoke { 1 } else { 3 };
    let kinds = [
        WorkloadKind::Product,
        WorkloadKind::Toxic,
        WorkloadKind::Music,
        WorkloadKind::Tracking,
    ];
    let mut out = String::new();
    for kind in kinds {
        let w = if smoke {
            generate_smoke(kind, false)
        } else {
            generate(kind, false)
        };
        // Force deployment (gate off): the sweep wants the whole
        // throughput/accuracy curve even where cascades would not pay.
        let cfg = WillumpConfig {
            cascade_gate: false,
            ..WillumpConfig::default()
        };
        let mut opt = Willump::new(cfg)
            .optimize(&w.pipeline, &w.train, &w.train_y, &w.valid, &w.valid_y)
            .expect("optimization succeeds");
        if !opt.report().cascades_deployed {
            out.push_str(&format!(
                "\n## Figure 7 ({}): cascades not deployed (feature computation too cheap to cascade)\n",
                kind.name()
            ));
            continue;
        }
        let chosen = opt.report().threshold.clone().expect("threshold chosen");
        let mut rows = Vec::new();

        // Full-model endpoint: threshold > 1 escalates everything.
        {
            let cascade = opt.cascade_mut().expect("cascade deployed");
            cascade.set_threshold(1.0);
        }
        let tp_full = batch_throughput(&w, reps, || {
            opt.predict_batch(&w.test).expect("prediction succeeds");
        });
        let scores = opt.predict_batch(&w.test).expect("prediction succeeds");
        rows.push(vec![
            "full model".to_string(),
            "-".to_string(),
            fmt_throughput(tp_full),
            format!("{:.4}", metrics::accuracy(&scores, &w.test_y)),
        ]);

        // Cascaded points across thresholds (descending = more kept by
        // the small model as threshold falls).
        for &tc in THRESHOLD_CANDIDATES.iter().rev() {
            {
                let cascade = opt.cascade_mut().expect("cascade deployed");
                cascade.set_threshold(tc);
            }
            let tp = batch_throughput(&w, reps, || {
                opt.predict_batch(&w.test).expect("prediction succeeds");
            });
            let scores = opt.predict_batch(&w.test).expect("prediction succeeds");
            let marker = if (tc - chosen.threshold).abs() < 1e-9 {
                " (selected)"
            } else {
                ""
            };
            rows.push(vec![
                format!("threshold {tc:.1}{marker}"),
                format!("{tc:.1}"),
                fmt_throughput(tp),
                format!("{:.4}", metrics::accuracy(&scores, &w.test_y)),
            ]);
        }

        // Small-model endpoint: threshold below any confidence keeps
        // everything (confidence >= 0.5 always).
        {
            let cascade = opt.cascade_mut().expect("cascade deployed");
            cascade.set_threshold(0.49);
        }
        let tp_small = batch_throughput(&w, reps, || {
            opt.predict_batch(&w.test).expect("prediction succeeds");
        });
        let scores = opt.predict_batch(&w.test).expect("prediction succeeds");
        rows.push(vec![
            "small model".to_string(),
            "-".to_string(),
            fmt_throughput(tp_small),
            format!("{:.4}", metrics::accuracy(&scores, &w.test_y)),
        ]);

        out.push_str(&format_table(
            &format!(
                "Figure 7 ({}): throughput vs accuracy across cascade thresholds",
                kind.name()
            ),
            &["point", "threshold", "throughput", "accuracy"],
            &rows,
        ));
    }
    out
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = sweep_tables(smoke);
        let body = format!(
            "Cascade-threshold sweep, throughput vs accuracy (paper \
             Figure 7), with the gate forced open so\nthe full curve is \
             visible even where cascades would not deploy: regenerate \
             with\n`{RECORD_CMD}`.\n{table}"
        );
        (table, body)
    });
}
