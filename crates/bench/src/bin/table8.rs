//! Table 8: comparison of efficient-IFV selection strategies on
//! Product and Toxic — Willump's cost-effectiveness greedy
//! (Algorithm 1) versus most-important, cheapest, and a brute-force
//! oracle over all proper subsets.
//!
//! Flags (mirroring `table6`):
//!
//! - `--smoke`: tiny workloads — a CI-speed sanity pass over the full
//!   code path (including the oracle enumeration) that also checks
//!   EXPERIMENTS.md carries this binary's schema header (never writes
//!   the file).
//! - `--record`: rewrite this binary's EXPERIMENTS.md section with
//!   the measured table.

use std::sync::Arc;

use willump::cascade::train_cascade_with_subset;
use willump::efficient::{enumerate_proper_subsets, select_efficient_ifvs, SelectionStrategy};
use willump::stats::compute_ifv_stats;
use willump::QueryMode;
use willump_bench::{
    batch_throughput, fmt_throughput, format_table, generate, generate_smoke, optimize_level,
    run_recorded_experiment, OptLevel,
};
use willump_models::metrics;
use willump_workloads::{Workload, WorkloadKind};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table8-ifv-strategies v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table8 -- --record";

/// Throughput of a cascade built over a forced subset, or `None` when
/// the cascade's test accuracy misses the target.
fn subset_throughput(
    w: &Workload,
    opt: &willump::OptimizedPipeline,
    subset: Vec<usize>,
) -> Option<f64> {
    let exec = opt.executor().clone();
    let full = opt.full_model().clone();
    let full_feats = exec.features_batch(&w.test, None).ok()?;
    let full_acc = metrics::accuracy(&full.predict_scores(&full_feats), &w.test_y);
    let (cascade, _sel) = train_cascade_with_subset(
        &exec,
        w.pipeline.spec(),
        Arc::clone(&full),
        &w.train,
        &w.train_y,
        &w.valid,
        &w.valid_y,
        subset,
        0.001,
        42,
    )
    .ok()?;
    let (scores, _) = cascade.predict_batch(&w.test).ok()?;
    let acc = metrics::accuracy(&scores, &w.test_y);
    // Enforce the accuracy target with the paper's significance margin
    // (95 % CI half-width on the test set).
    let margin = metrics::accuracy_ci_95(full_acc, w.test_y.len());
    if acc < full_acc - margin {
        return None;
    }
    Some(batch_throughput(w, 3, || {
        cascade.predict_batch(&w.test).expect("cascade predicts");
    }))
}

fn gen_workload(kind: WorkloadKind, smoke: bool) -> Workload {
    if smoke {
        generate_smoke(kind, false)
    } else {
        generate(kind, false)
    }
}

fn strategy_table(smoke: bool) -> String {
    let kinds = [WorkloadKind::Product, WorkloadKind::Toxic];
    let mut rows = Vec::new();
    for kind in kinds {
        let w = gen_workload(kind, smoke);
        let opt = optimize_level(&w, OptLevel::Compiled, QueryMode::Batch, None, 1);
        let orig_tp = batch_throughput(&w, 3, || {
            opt.predict_batch(&w.test).expect("compiled predicts");
        });

        // IFV statistics drive the heuristic strategies.
        let exec = opt.executor();
        let full_feats = exec
            .features_batch(&w.train, None)
            .expect("training features");
        let stats = compute_ifv_stats(
            exec,
            opt.full_model(),
            &full_feats,
            &w.train,
            &w.train_y,
            42,
        )
        .expect("stats computed");
        let n_fgs = exec.analysis().generators.len();

        let strategies: [(&str, Vec<usize>); 3] = [
            (
                "willump",
                // The optimizer's production default (WillumpConfig
                // gamma), so this column shows what Willump deploys.
                select_efficient_ifvs(
                    &stats,
                    SelectionStrategy::CostEffective {
                        gamma: 0.02,
                        use_gamma_rule: true,
                    },
                    0.5,
                ),
            ),
            (
                "important",
                select_efficient_ifvs(&stats, SelectionStrategy::MostImportant, 0.5),
            ),
            (
                "cheap",
                select_efficient_ifvs(&stats, SelectionStrategy::Cheapest, 0.5),
            ),
        ];

        let mut cells = vec![kind.name().to_string(), fmt_throughput(orig_tp)];
        for (name, subset) in strategies {
            let tp = if subset.is_empty() || subset.len() >= n_fgs {
                None
            } else {
                subset_throughput(&w, &opt, subset.clone())
            };
            let cell = match tp {
                Some(v) => format!("{} {:?}", fmt_throughput(v), subset),
                None => "no cascade".to_string(),
            };
            let _ = name;
            cells.push(cell);
        }

        // Oracle: best throughput over every accuracy-passing proper
        // subset.
        let mut best: Option<(f64, Vec<usize>)> = None;
        for subset in enumerate_proper_subsets(n_fgs) {
            if let Some(tp) = subset_throughput(&w, &opt, subset.clone()) {
                if best.as_ref().is_none_or(|(b, _)| tp > *b) {
                    best = Some((tp, subset));
                }
            }
        }
        cells.push(match best {
            Some((tp, subset)) => format!("{} {:?}", fmt_throughput(tp), subset),
            None => "no cascade".to_string(),
        });
        rows.push(cells);
    }
    format_table(
        "Table 8: cascade throughput by efficient-IFV selection strategy (subset in brackets)",
        &[
            "benchmark",
            "no cascade",
            "willump",
            "important",
            "cheap",
            "oracle",
        ],
        &rows,
    )
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = strategy_table(smoke);
        let body = format!(
            "Efficient-IFV selection strategy comparison, incl. the\n\
             brute-force oracle over all proper subsets (paper Table 8).\n\
             Regenerate with `{RECORD_CMD}`.\n{table}"
        );
        (table, body)
    });
}
