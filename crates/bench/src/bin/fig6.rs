//! Figure 6: example-at-a-time latency of Python, Willump compilation,
//! and compilation + cascades on all six benchmarks (local tables).

use willump::QueryMode;
use willump_bench::{
    baseline, fmt_latency, fmt_speedup, generate, optimize_level, per_input_latency, print_table,
    OptLevel,
};
use willump_workloads::WorkloadKind;

fn main() {
    let n = 400;
    // The interpreted baseline's per-row latency is hundreds of
    // milliseconds on the text workloads; 60 inputs estimate its mean
    // stably without dominating the suite. Optimized configurations
    // are measured over the full `n`.
    let n_python = 60;
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = generate(kind, false);

        let python = baseline(&w);
        let py_lat = per_input_latency(&w, n_python, |input| {
            python.predict_one(input).expect("baseline predicts")
        });

        let compiled = optimize_level(&w, OptLevel::Compiled, QueryMode::ExampleAtATime, None, 1);
        let c_lat = per_input_latency(&w, n, |input| {
            compiled.predict_one(input).expect("compiled predicts")
        });

        let (casc_cell, casc_speedup) = if kind.is_classification() {
            let cascades =
                optimize_level(&w, OptLevel::Cascades, QueryMode::ExampleAtATime, None, 1);
            let k_lat = per_input_latency(&w, n, |input| {
                cascades.predict_one(input).expect("cascade predicts")
            });
            (fmt_latency(k_lat), fmt_speedup(c_lat / k_lat))
        } else {
            ("N/A".to_string(), "N/A".to_string())
        };

        rows.push(vec![
            kind.name().to_string(),
            fmt_latency(py_lat),
            fmt_latency(c_lat),
            casc_cell,
            fmt_speedup(py_lat / c_lat),
            casc_speedup,
        ]);
    }
    print_table(
        "Figure 6: example-at-a-time latency, local tables",
        &[
            "benchmark",
            "python",
            "compiled",
            "compiled+cascades",
            "compile speedup",
            "cascade speedup",
        ],
        &rows,
    );
}
