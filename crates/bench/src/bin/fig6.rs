//! Figure 6: example-at-a-time latency of Python, Willump compilation,
//! and compilation + cascades on all six benchmarks (local tables).
//!
//! Flags:
//!
//! - `--smoke`: tiny workloads and input counts — a CI-speed sanity
//!   pass that also validates the committed EXPERIMENTS.md schema
//!   header (never rewrites the file).
//! - `--record`: re-measure at full experiment size and rewrite this
//!   binary's EXPERIMENTS.md section.

use willump::QueryMode;
use willump_bench::{
    baseline, fmt_latency, fmt_speedup, format_table, generate, generate_smoke, optimize_level,
    per_input_latency, run_recorded_experiment, OptLevel,
};
use willump_workloads::WorkloadKind;

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: fig6-per-input-latency v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin fig6 -- --record";

fn latency_table(smoke: bool) -> String {
    let n = if smoke { 40 } else { 400 };
    // The interpreted baseline's per-row latency is hundreds of
    // milliseconds on the text workloads; a small sample estimates
    // its mean stably without dominating the suite. Optimized
    // configurations are measured over the full `n`.
    let n_python = if smoke { 6 } else { 60 };
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = if smoke {
            generate_smoke(kind, false)
        } else {
            generate(kind, false)
        };

        let python = baseline(&w);
        let py_lat = per_input_latency(&w, n_python, |input| {
            python.predict_one(input).expect("baseline predicts")
        });

        let compiled = optimize_level(&w, OptLevel::Compiled, QueryMode::ExampleAtATime, None, 1);
        let c_lat = per_input_latency(&w, n, |input| {
            compiled.predict_one(input).expect("compiled predicts")
        });

        let (casc_cell, casc_speedup) = if kind.is_classification() {
            let cascades =
                optimize_level(&w, OptLevel::Cascades, QueryMode::ExampleAtATime, None, 1);
            let k_lat = per_input_latency(&w, n, |input| {
                cascades.predict_one(input).expect("cascade predicts")
            });
            (fmt_latency(k_lat), fmt_speedup(c_lat / k_lat))
        } else {
            ("N/A".to_string(), "N/A".to_string())
        };

        rows.push(vec![
            kind.name().to_string(),
            fmt_latency(py_lat),
            fmt_latency(c_lat),
            casc_cell,
            fmt_speedup(py_lat / c_lat),
            casc_speedup,
        ]);
    }
    format_table(
        "Figure 6: example-at-a-time latency, local tables",
        &[
            "benchmark",
            "python",
            "compiled",
            "compiled+cascades",
            "compile speedup",
            "cascade speedup",
        ],
        &rows,
    )
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = latency_table(smoke);
        let body = format!(
            "Example-at-a-time latency at the three optimization levels \
             (paper Figure 6): regenerate with\n`{RECORD_CMD}`.\n\
             The interpreted baseline is timed on a 60-input sample; \
             optimized configurations run 400 inputs.\n{table}"
        );
        (table, body)
    });
}
