//! Table 2: percent reduction in remote requests made by per-input
//! queries on Music and Tracking with remote tables, under four
//! optimization combinations (end-to-end caching, feature-level
//! caching, cascades, and feature caching + cascades).
//!
//! Every configuration is a lowered `ServingPlan`: the end-to-end
//! cache rows compose `with_e2e_cache` onto the plain compiled plan
//! instead of wrapping a bespoke cached predictor, and the cascade
//! rows run the cascade plan the optimizer lowered.
//!
//! Flags (mirroring `table6`):
//!
//! - `--smoke`: tiny workloads — a CI-speed sanity pass over the full
//!   code path that also checks EXPERIMENTS.md carries this binary's
//!   schema header (never writes the file).
//! - `--record`: rewrite this binary's EXPERIMENTS.md section with
//!   the measured table.

use willump::{CachingConfig, QueryMode, ServingPlan};
use willump_bench::{
    format_table, generate_remote, optimize_level, run_recorded_experiment, OptLevel,
};
use willump_graph::InputRow;
use willump_workloads::{Workload, WorkloadKind};

/// The schema header CI greps for in EXPERIMENTS.md; bump the version
/// when the recorded table shape changes.
const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table2-remote-requests v1 -->";
const RECORD_CMD: &str = "cargo run --release -p willump-bench --bin table2 -- --record";

/// Serve the test set one input at a time through a plan, returning
/// the feature store's round trips.
fn serve_and_count(w: &Workload, plan: &ServingPlan) -> u64 {
    let store = w.store.clone().expect("lookup workload has a store");
    store.stats().reset();
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row in range");
        plan.predict_one(&input).expect("prediction succeeds");
    }
    store.stats().round_trips()
}

fn reduction(baseline: u64, observed: u64) -> String {
    format!("{:.1}%", 100.0 * (1.0 - observed as f64 / baseline as f64))
}

fn remote_request_table(smoke: bool) -> String {
    let kinds = [WorkloadKind::Music, WorkloadKind::Tracking];
    let mut results: Vec<Vec<String>> = vec![
        vec!["End-to-end Caching + No Cascades".to_string()],
        vec!["Feature-Level Caching + No Cascades".to_string()],
        vec!["No Caching + Cascades".to_string()],
        vec!["Feature-Level Caching + Cascades".to_string()],
    ];

    for kind in kinds {
        let w = generate_remote(kind, smoke);

        // Baseline: the plain compiled plan — no caching, no cascades.
        let plain = optimize_level(&w, OptLevel::Compiled, QueryMode::ExampleAtATime, None, 1);
        let base_requests = serve_and_count(&w, &plain.serving_plan());

        // 1. End-to-end caching (Clipper-style): the same plan with
        //    cache_lookup/cache_fill stages composed around it.
        let e2e = plain
            .serving_plan()
            .with_e2e_cache(w.source_columns(), None)
            .expect("cache composes onto the plain plan");
        let e2e_requests = serve_and_count(&w, &e2e);

        // 2. Feature-level caching, no cascades (executor-level
        //    per-IFV caches; the plan is otherwise the plain one).
        let feat = optimize_level(
            &w,
            OptLevel::Compiled,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        );
        let feat_requests = serve_and_count(&w, &feat.serving_plan());

        // 3. Cascades, no caching: the lowered cascade plan.
        let casc = optimize_level(&w, OptLevel::Cascades, QueryMode::ExampleAtATime, None, 1);
        let casc_requests = serve_and_count(&w, &casc.serving_plan());

        // 4. Feature-level caching + cascades.
        let both = optimize_level(
            &w,
            OptLevel::Cascades,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        );
        let both_requests = serve_and_count(&w, &both.serving_plan());

        results[0].push(reduction(base_requests, e2e_requests));
        results[1].push(reduction(base_requests, feat_requests));
        results[2].push(reduction(base_requests, casc_requests));
        results[3].push(reduction(base_requests, both_requests));
    }

    format_table(
        "Table 2: percent reduction in remote requests (per-input queries, remote tables)",
        &["configuration", "music", "tracking"],
        &results,
    )
}

fn main() {
    run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, |smoke| {
        let table = remote_request_table(smoke);
        let body = format!(
            "Remote-request reduction per serving configuration; every\n\
             configuration is a lowered/composed `ServingPlan` run row-wise.\n\
             Regenerate with `{RECORD_CMD}`.\n{table}"
        );
        (table, body)
    });
}
