//! Table 2: percent reduction in remote requests made by per-input
//! queries on Music and Tracking with remote tables, under four
//! optimization combinations (end-to-end caching, feature-level
//! caching, cascades, and feature caching + cascades).

use std::sync::Arc;

use willump::{CachingConfig, QueryMode};
use willump_bench::{generate, optimize_level, print_table, OptLevel};
use willump_graph::InputRow;
use willump_serve::E2eCachedPredictor;
use willump_workloads::{Workload, WorkloadKind};

/// Serve the test set one input at a time, returning store round trips.
fn serve_and_count(w: &Workload, mut predict: impl FnMut(&InputRow)) -> u64 {
    let store = w.store.clone().expect("lookup workload has a store");
    store.stats().reset();
    for r in 0..w.test.n_rows() {
        let input = InputRow::from_table(&w.test, r).expect("row in range");
        predict(&input);
    }
    store.stats().round_trips()
}

fn reduction(baseline: u64, observed: u64) -> String {
    format!("{:.1}%", 100.0 * (1.0 - observed as f64 / baseline as f64))
}

fn main() {
    let kinds = [WorkloadKind::Music, WorkloadKind::Tracking];
    let mut results: Vec<Vec<String>> = vec![
        vec!["End-to-end Caching + No Cascades".to_string()],
        vec!["Feature-Level Caching + No Cascades".to_string()],
        vec!["No Caching + Cascades".to_string()],
        vec!["Feature-Level Caching + Cascades".to_string()],
    ];

    for kind in kinds {
        let w = generate(kind, true);

        // Baseline: compiled, no caching, no cascades.
        let plain = optimize_level(&w, OptLevel::Compiled, QueryMode::ExampleAtATime, None, 1);
        let base_requests = serve_and_count(&w, |input| {
            plain.predict_one(input).expect("prediction succeeds");
        });

        // 1. End-to-end caching (Clipper-style), no cascades.
        let sources: Vec<String> = plain
            .executor()
            .graph()
            .source_columns()
            .into_iter()
            .map(str::to_string)
            .collect();
        let inner = Arc::new(plain.clone());
        let e2e = E2eCachedPredictor::new(
            move |input| inner.predict_one(input).map_err(|e| e.to_string()),
            sources,
            None,
        );
        let e2e_requests = serve_and_count(&w, |input| {
            e2e.predict_one(input).expect("prediction succeeds");
        });

        // 2. Feature-level caching, no cascades.
        let feat = optimize_level(
            &w,
            OptLevel::Compiled,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        );
        let feat_requests = serve_and_count(&w, |input| {
            feat.predict_one(input).expect("prediction succeeds");
        });

        // 3. Cascades, no caching.
        let casc = optimize_level(&w, OptLevel::Cascades, QueryMode::ExampleAtATime, None, 1);
        let casc_requests = serve_and_count(&w, |input| {
            casc.predict_one(input).expect("prediction succeeds");
        });

        // 4. Feature-level caching + cascades.
        let both = optimize_level(
            &w,
            OptLevel::Cascades,
            QueryMode::ExampleAtATime,
            Some(CachingConfig { capacity: None }),
            1,
        );
        let both_requests = serve_and_count(&w, |input| {
            both.predict_one(input).expect("prediction succeeds");
        });

        results[0].push(reduction(base_requests, e2e_requests));
        results[1].push(reduction(base_requests, feat_requests));
        results[2].push(reduction(base_requests, casc_requests));
        results[3].push(reduction(base_requests, both_requests));
    }

    print_table(
        "Table 2: percent reduction in remote requests (per-input queries, remote tables)",
        &["configuration", "music", "tracking"],
        &results,
    );
}
