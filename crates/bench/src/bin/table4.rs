//! Table 4: top-K (K=100) query performance and accuracy with
//! automatic filter models on Product, Toxic, Price, Music, and
//! Credit (Tracking excluded: its near-deterministic duplicate tuples
//! make top-K ill-defined, as in the paper). Lookup workloads use
//! remote tables.

use willump::QueryMode;
use willump_bench::{
    baseline, effective_seconds, fmt_throughput, generate, optimize_level, print_table,
    test_sample, OptLevel, PYTHON_SAMPLE_ROWS,
};
use willump_models::metrics;
use willump_workloads::WorkloadKind;

const K: usize = 100;

fn main() {
    let kinds = [
        WorkloadKind::Product,
        WorkloadKind::Toxic,
        WorkloadKind::Price,
        WorkloadKind::Music,
        WorkloadKind::Credit,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let w = generate(kind, kind.uses_store());
        let n = w.test.n_rows() as f64;

        // Python-baseline throughput, timed on a bounded sample (the
        // engines produce identical features, so the exact reference
        // scores come from the compiled engine below).
        let python = baseline(&w);
        let py_sample = test_sample(&w, PYTHON_SAMPLE_ROWS);
        let (py_secs, _) = effective_seconds(&w, || {
            python.predict_batch(&py_sample).expect("baseline predicts")
        });
        let py_tp = py_sample.n_rows() as f64 / py_secs;

        // Compiled, exact top-K; its full-model scores are the exact
        // reference ranking.
        let compiled = optimize_level(&w, OptLevel::Compiled, QueryMode::TopK { k: K }, None, 1);
        let ref_feats = compiled
            .executor()
            .features_batch(&w.test, None)
            .expect("reference features");
        let py_scores = compiled.full_model().predict_scores(&ref_feats);
        let exact_topk = metrics::top_k_indices(&py_scores, K);
        let (c_secs, _) = effective_seconds(&w, || {
            compiled
                .top_k(&w.test, K)
                .expect("compiled top-K succeeds")
                .0
        });

        // Compiled + filter model.
        let filtered = optimize_level(&w, OptLevel::Cascades, QueryMode::TopK { k: K }, None, 1);
        assert!(
            filtered.report().filter_deployed,
            "{}: filter must deploy",
            kind.name()
        );
        let (f_secs, approx_topk) = effective_seconds(&w, || {
            filtered
                .top_k(&w.test, K)
                .expect("filtered top-K succeeds")
                .0
        });

        let precision = metrics::precision_at_k(&approx_topk, &exact_topk);
        let map = metrics::mean_average_precision(&approx_topk, &exact_topk);
        let exact_value = metrics::average_value(&exact_topk, &py_scores);
        let approx_value = metrics::average_value(&approx_topk, &py_scores);

        rows.push(vec![
            kind.name().to_string(),
            fmt_throughput(py_tp),
            fmt_throughput(n / c_secs),
            fmt_throughput(n / f_secs),
            format!("{precision:.2}"),
            format!("{map:.2}"),
            format!("{exact_value:.4}"),
            format!("{approx_value:.4}"),
        ]);
    }
    print_table(
        "Table 4: top-100 queries (filter models; remote tables for lookup workloads)",
        &[
            "benchmark",
            "python tput",
            "compiled tput",
            "filtered tput",
            "precision",
            "mAP",
            "exact avg value",
            "filtered avg value",
        ],
        &rows,
    );
}
