//! A fixed-size LRU cache with hit/miss accounting.
//!
//! Willump "allocates a fixed-size LRU cache for each IFV whose keys
//! are sources of the IFV's feature generator and whose values are the
//! features in the IFV" (paper §4.5). This is that cache; the same
//! type also backs the Clipper-style end-to-end prediction cache the
//! paper compares against.

use std::collections::HashMap;
use std::hash::Hash;

/// Intrusive doubly-linked list entry stored in a slab slot.
#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
    pinned: bool,
}

const NIL: usize = usize::MAX;

/// An LRU cache with optional capacity bound and hit/miss counters.
///
/// `capacity = None` means unbounded, matching the paper's Table 2/3
/// evaluation ("we evaluate feature-level caching with an unlimited
/// cache size").
///
/// ```
/// use willump_store::LruCache;
///
/// let mut cache = LruCache::with_capacity(2);
/// cache.put("a", 1);
/// cache.put("b", 2);
/// assert_eq!(cache.get(&"a"), Some(&1)); // "a" is now most recent
/// cache.put("c", 3);                     // evicts "b"
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    pinned: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An unbounded cache.
    pub fn unbounded() -> LruCache<K, V> {
        LruCache::new(None)
    }

    /// A cache evicting beyond `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> LruCache<K, V> {
        assert!(capacity > 0, "capacity must be positive");
        LruCache::new(Some(capacity))
    }

    fn new(capacity: Option<usize>) -> LruCache<K, V> {
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            pinned: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of `get` calls that found their key.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of `get` calls that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all `get` calls so far (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of currently pinned entries.
    pub fn pinned_len(&self) -> usize {
        self.pinned
    }

    /// Pin `key` against eviction; returns `false` if absent.
    ///
    /// Pinned entries are skipped by capacity eviction (hot keys stay
    /// resident no matter how cold the rest of the cache runs). The
    /// capacity bound still holds: inserting into a cache whose other
    /// entries are all pinned evicts the least-recent *unpinned*
    /// entry, which may be the incoming one.
    pub fn pin(&mut self, key: &K) -> bool {
        match self.map.get(key).copied() {
            Some(idx) => {
                let e = self.slab[idx].as_mut().expect("mapped slot occupied");
                if !e.pinned {
                    e.pinned = true;
                    self.pinned += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Unpin `key`, making it evictable again; returns `false` if
    /// absent.
    pub fn unpin(&mut self, key: &K) -> bool {
        match self.map.get(key).copied() {
            Some(idx) => {
                let e = self.slab[idx].as_mut().expect("mapped slot occupied");
                if e.pinned {
                    e.pinned = false;
                    self.pinned -= 1;
                }
                true
            }
            None => false,
        }
    }

    /// Whether `key` is present and pinned.
    pub fn is_pinned(&self, key: &K) -> bool {
        self.map
            .get(key)
            .and_then(|&idx| self.slab[idx].as_ref())
            .is_some_and(|e| e.pinned)
    }

    /// Look up `key`, marking it most-recently used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                self.slab[idx].as_ref().map(|e| &e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up without updating recency or counters (for inspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.slab[idx].as_ref())
            .map(|e| &e.value)
    }

    /// Insert or update `key`, marking it most-recently used; returns
    /// the evicted `(key, value)` if the capacity bound was exceeded.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].as_mut().expect("mapped slot occupied").value = value;
            self.detach(idx);
            self.push_front(idx);
            return None;
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
            pinned: false,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(entry);
                i
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        if let Some(cap) = self.capacity {
            if self.map.len() > cap {
                return self.evict_lru();
            }
        }
        None
    }

    /// Drop all entries and reset counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hits = 0;
        self.misses = 0;
        self.pinned = 0;
    }

    fn evict_lru(&mut self) -> Option<(K, V)> {
        // Walk from the LRU end toward the head, skipping pinned
        // entries; evict the least-recent *unpinned* entry.
        let mut idx = self.tail;
        while idx != NIL {
            let e = self.slab[idx].as_ref().expect("linked slot occupied");
            if !e.pinned {
                break;
            }
            idx = e.prev;
        }
        if idx == NIL {
            return None;
        }
        self.detach(idx);
        let entry = self.slab[idx].take().expect("evicted slot occupied");
        self.map.remove(&entry.key);
        self.free.push(idx);
        Some((entry.key, entry.value))
    }

    fn links(&self, idx: usize) -> (usize, usize) {
        let e = self.slab[idx].as_ref().expect("linked slot occupied");
        (e.prev, e.next)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = self.links(idx);
        if prev != NIL {
            self.slab[prev].as_mut().expect("prev occupied").next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].as_mut().expect("next occupied").prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let e = self.slab[idx].as_mut().expect("slot occupied");
        e.prev = NIL;
        e.next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.slab[idx].as_mut().expect("slot occupied");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head].as_mut().expect("head occupied").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c: LruCache<i32, i32> = LruCache::unbounded();
        assert_eq!(c.get(&1), None);
        c.put(1, 10);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut c = LruCache::with_capacity(2);
        c.put(1, "a");
        c.put(2, "b");
        assert_eq!(c.get(&1), Some(&"a"));
        let evicted = c.put(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
    }

    #[test]
    fn update_refreshes_recency_without_eviction() {
        let mut c = LruCache::with_capacity(2);
        c.put(1, 1);
        c.put(2, 2);
        assert!(c.put(1, 11).is_none());
        assert_eq!(c.len(), 2);
        c.put(3, 3); // evicts 2, since 1 was refreshed
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.peek(&1), Some(&11));
    }

    #[test]
    fn peek_does_not_touch_counters_or_order() {
        let mut c = LruCache::with_capacity(2);
        c.put(1, 1);
        c.put(2, 2);
        assert_eq!(c.peek(&1), Some(&1));
        assert_eq!(c.hits(), 0);
        c.put(3, 3); // 1 is still LRU because peek didn't refresh
        assert_eq!(c.peek(&1), None);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = LruCache::with_capacity(8);
        for i in 0..1000 {
            c.put(i, i);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = LruCache::with_capacity(2);
        c.put(1, 1);
        c.get(&1);
        c.get(&9);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        c.put(1, 5);
        assert_eq!(c.get(&1), Some(&5));
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut c = LruCache::unbounded();
        for i in 0..10_000 {
            assert!(c.put(i, i).is_none());
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<i32, i32>::with_capacity(0);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut c = LruCache::with_capacity(2);
        for i in 0..100 {
            c.put(i, i);
        }
        // Evicted slots are recycled through the free list, so the slab
        // stays near the capacity bound instead of growing per insert.
        assert!(c.slab.len() <= 3, "slab len {}", c.slab.len());
    }

    #[test]
    fn heap_values_drop_cleanly() {
        let mut c = LruCache::with_capacity(2);
        for i in 0..50 {
            c.put(i, format!("value-{i}"));
        }
        assert_eq!(c.get(&49), Some(&"value-49".to_string()));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let mut c = LruCache::with_capacity(3);
        c.put("hot", 0);
        assert!(c.pin(&"hot"));
        assert!(c.is_pinned(&"hot"));
        assert_eq!(c.pinned_len(), 1);
        // A long cold scan: "hot" is always the LRU candidate yet
        // never evicted.
        for i in 0..100 {
            c.put("cold", i);
            c.put("colder", i);
            c.put("coldest", i);
            assert_eq!(c.peek(&"hot"), Some(&0));
        }
        assert!(c.len() <= 3);
    }

    #[test]
    fn unpin_restores_lru_eviction() {
        let mut c = LruCache::with_capacity(2);
        c.put(1, 1);
        c.pin(&1);
        c.put(2, 2);
        assert_eq!(c.put(3, 3), Some((2, 2)), "unpinned neighbour evicts");
        assert!(c.unpin(&1));
        assert_eq!(c.pinned_len(), 0);
        c.put(4, 4); // 1 is now the LRU and evictable again
        assert_eq!(c.peek(&1), None);
        assert_eq!(c.peek(&3), Some(&3));
        assert_eq!(c.peek(&4), Some(&4));
    }

    #[test]
    fn fully_pinned_cache_bounces_new_inserts() {
        let mut c = LruCache::with_capacity(2);
        c.put(1, 1);
        c.put(2, 2);
        c.pin(&1);
        c.pin(&2);
        // Every other entry is pinned: the only eviction candidate is
        // the incoming entry itself, so capacity still holds.
        assert_eq!(c.put(3, 3), Some((3, 3)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&1), Some(&1));
        assert_eq!(c.peek(&2), Some(&2));
    }

    #[test]
    fn pin_missing_key_is_a_noop() {
        let mut c: LruCache<i32, i32> = LruCache::with_capacity(2);
        assert!(!c.pin(&7));
        assert!(!c.unpin(&7));
        assert!(!c.is_pinned(&7));
        assert_eq!(c.pinned_len(), 0);
        c.put(7, 7);
        c.pin(&7);
        c.pin(&7); // double-pin counts once
        assert_eq!(c.pinned_len(), 1);
        c.clear();
        assert_eq!(c.pinned_len(), 0);
    }

    #[test]
    fn single_entry_cache_cycles() {
        let mut c = LruCache::with_capacity(1);
        assert_eq!(c.put(1, 1), None);
        assert_eq!(c.put(2, 2), Some((1, 1)));
        assert_eq!(c.put(3, 3), Some((2, 2)));
        assert_eq!(c.get(&3), Some(&3));
    }
}
