//! # willump-store
//!
//! Feature-store substrate for the Willump reproduction.
//!
//! Three of the paper's benchmarks (Music, Credit, Tracking) compute
//! most of their features by *looking them up* in data tables that may
//! live on a remote Redis server. This crate provides:
//!
//! - [`FeatureTable`]: an in-memory key → feature-row table,
//! - [`Store`]: a collection of tables behind a [`LatencyModel`] that
//!   simulates network round trips (virtually by default, with an
//!   opt-in real-sleep mode) and counts requests,
//! - [`LruCache`]: the fixed-size LRU used by Willump's feature-level
//!   caching optimization (paper §4.5),
//! - [`SimClock`]: a virtual clock so latency experiments (Table 3)
//!   are fast and deterministic.
//!
//! ```
//! use willump_store::{FeatureTable, Key, LatencyModel, Store};
//!
//! # fn main() -> Result<(), willump_store::StoreError> {
//! let mut users = FeatureTable::new(2);
//! users.insert(Key::Int(7), vec![0.5, 1.0])?;
//! let store = Store::remote(
//!     [("users".to_string(), users)],
//!     LatencyModel::virtual_network(1_000_000, 10_000), // 1ms RTT, 10us/key
//! );
//! let rows = store.get_batch("users", &[Key::Int(7)])?;
//! assert_eq!(&*rows[0], &[0.5, 1.0]);
//! assert_eq!(store.stats().round_trips(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod clock;
mod error;
mod kv;
mod lru;

pub use clock::SimClock;
pub use error::StoreError;
pub use kv::{FaultPlan, FeatureTable, Key, LatencyMode, LatencyModel, Store, StoreStats};
pub use lru::LruCache;
