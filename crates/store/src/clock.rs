//! A virtual clock for deterministic latency accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared virtual clock counting nanoseconds.
///
/// The latency experiments (paper Tables 2/3) measure how Willump's
/// optimizations change per-query latency when features live behind a
/// network. Rather than sleeping through real round trips, [`SimClock`]
/// *accounts* them: each simulated round trip advances the clock, and
/// per-query latency is the clock delta plus measured compute time.
/// This keeps the experiment binaries fast, deterministic, and free of
/// scheduler noise, while preserving exactly the quantity the paper
/// reports.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Advance the clock by `delta` nanoseconds, returning the new time.
    pub fn advance(&self, delta: u64) -> u64 {
        self.nanos.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Reset to time zero (between experiment configurations).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_resets() {
        let c = SimClock::new();
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.advance(500), 500);
        assert_eq!(c.advance(250), 750);
        c.reset();
        assert_eq!(c.now_nanos(), 0);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(10);
        assert_eq!(b.now_nanos(), 10);
    }

    #[test]
    fn concurrent_advances_sum() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now_nanos(), 4000);
    }
}
