//! Key-value feature tables and the (optionally remote) store.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{SimClock, StoreError};

/// A lookup key into a [`FeatureTable`]: an entity id.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    /// Integer id (users, songs, IPs, ...).
    Int(i64),
    /// String id (genres, categories, ...).
    Str(Arc<str>),
}

impl Key {
    /// Construct a string key.
    pub fn str(s: impl Into<Arc<str>>) -> Key {
        Key::Str(s.into())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Int(i) => write!(f, "{i}"),
            Key::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Key {
    fn from(i: i64) -> Self {
        Key::Int(i)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::Str(Arc::from(s))
    }
}

/// An in-memory table mapping entity keys to fixed-width feature rows.
///
/// This plays the role of one Redis hash / precomputed feature table in
/// the paper's benchmarks (e.g. per-user latent factors in Music).
#[derive(Debug, Clone, Default)]
pub struct FeatureTable {
    dim: usize,
    rows: HashMap<Key, Arc<[f64]>>,
    /// Returned for unknown keys when set (cold-start entities).
    default: Option<Arc<[f64]>>,
}

impl FeatureTable {
    /// An empty table whose rows have `dim` features.
    pub fn new(dim: usize) -> FeatureTable {
        FeatureTable {
            dim,
            rows: HashMap::new(),
            default: None,
        }
    }

    /// Feature dimensionality of the table's rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no keys.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row for `key`.
    ///
    /// # Errors
    /// Returns [`StoreError::DimMismatch`] when `row.len() != dim()`.
    pub fn insert(&mut self, key: Key, row: Vec<f64>) -> Result<(), StoreError> {
        if row.len() != self.dim {
            return Err(StoreError::DimMismatch {
                expected: self.dim,
                found: row.len(),
            });
        }
        self.rows.insert(key, Arc::from(row));
        Ok(())
    }

    /// Set the row returned for keys that are not present.
    ///
    /// # Errors
    /// Returns [`StoreError::DimMismatch`] when `row.len() != dim()`.
    pub fn set_default(&mut self, row: Vec<f64>) -> Result<(), StoreError> {
        if row.len() != self.dim {
            return Err(StoreError::DimMismatch {
                expected: self.dim,
                found: row.len(),
            });
        }
        self.default = Some(Arc::from(row));
        Ok(())
    }

    /// Look up one key (no latency accounting; used by `Store`).
    pub fn get(&self, key: &Key) -> Option<Arc<[f64]>> {
        self.rows.get(key).cloned().or_else(|| self.default.clone())
    }
}

/// How simulated latency is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMode {
    /// No latency: the paper's "data tables stored locally" setting.
    Local,
    /// Advance a virtual [`SimClock`] (default for experiments).
    Virtual,
    /// Really sleep the calling thread (for end-to-end demos).
    RealSleep,
}

/// Latency model for a remote feature store.
///
/// A batched `get_batch` call costs one `round_trip` plus `per_key`
/// for each key fetched, matching the paper's asynchronous batched
/// Redis queries ("we store data tables on remote Redis servers and
/// query them asynchronously").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// How the latency is applied.
    pub mode: LatencyMode,
    /// Cost of one round trip, in nanoseconds.
    pub round_trip_nanos: u64,
    /// Marginal cost per key in a batch, in nanoseconds.
    pub per_key_nanos: u64,
}

impl LatencyModel {
    /// Zero-latency local tables.
    pub fn local() -> LatencyModel {
        LatencyModel {
            mode: LatencyMode::Local,
            round_trip_nanos: 0,
            per_key_nanos: 0,
        }
    }

    /// A virtual-clock network with the given costs.
    pub fn virtual_network(round_trip_nanos: u64, per_key_nanos: u64) -> LatencyModel {
        LatencyModel {
            mode: LatencyMode::Virtual,
            round_trip_nanos,
            per_key_nanos,
        }
    }

    /// A real-sleep network with the given costs.
    pub fn real_network(round_trip_nanos: u64, per_key_nanos: u64) -> LatencyModel {
        LatencyModel {
            mode: LatencyMode::RealSleep,
            round_trip_nanos,
            per_key_nanos,
        }
    }

    /// Total cost of a batch of `n_keys`.
    pub fn batch_cost_nanos(&self, n_keys: usize) -> u64 {
        match self.mode {
            LatencyMode::Local => 0,
            _ => self.round_trip_nanos + self.per_key_nanos * n_keys as u64,
        }
    }
}

/// Deterministic transient-fault injection for a [`Store`].
///
/// Real feature stores time out and shed load; serving code above the
/// store must tolerate that. A `FaultPlan` fails a deterministic,
/// pseudo-random `rate` fraction of round trips (decided by hashing
/// the request ordinal against `seed`, so a test run is exactly
/// reproducible). Failed round trips still pay latency and count in
/// [`StoreStats`] — as a timed-out RPC would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Fraction of round trips to fail, in `[0, 1]`.
    pub rate: f64,
    /// Seed decorrelating fault schedules across stores.
    pub seed: u64,
}

impl FaultPlan {
    /// Whether request number `ordinal` should fail under this plan.
    pub fn fails(&self, ordinal: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        // SplitMix64 over (seed, ordinal) for a uniform [0,1) draw.
        let mut z = self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.rate
    }
}

/// Request counters for a [`Store`].
///
/// Table 2 of the paper reports the *percent reduction in remote
/// requests* under different optimization combinations; these counters
/// are what that experiment reads.
#[derive(Debug, Default)]
pub struct StoreStats {
    round_trips: AtomicU64,
    keys_fetched: AtomicU64,
    keys_written: AtomicU64,
    virtual_wait_nanos: AtomicU64,
    faults: AtomicU64,
}

impl StoreStats {
    /// Number of batched requests (network round trips) issued.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Total number of keys fetched across all requests.
    pub fn keys_fetched(&self) -> u64 {
        self.keys_fetched.load(Ordering::Relaxed)
    }

    /// Total number of rows written through
    /// [`Store::upsert_row`] / [`Store::update_row`] (streaming
    /// ingestion traffic).
    pub fn keys_written(&self) -> u64 {
        self.keys_written.load(Ordering::Relaxed)
    }

    /// Total simulated network time spent, in nanoseconds.
    pub fn wait_nanos(&self) -> u64 {
        self.virtual_wait_nanos.load(Ordering::Relaxed)
    }

    /// Number of round trips that failed with an injected fault.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.round_trips.store(0, Ordering::Relaxed);
        self.keys_fetched.store(0, Ordering::Relaxed);
        self.keys_written.store(0, Ordering::Relaxed);
        self.virtual_wait_nanos.store(0, Ordering::Relaxed);
        self.faults.store(0, Ordering::Relaxed);
    }
}

/// A named collection of [`FeatureTable`]s behind a latency model.
///
/// Cloning is cheap (shared state): pipelines, caches, and experiment
/// harnesses can all hold handles to the same store.
#[derive(Debug, Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    tables: RwLock<HashMap<String, FeatureTable>>,
    latency: LatencyModel,
    clock: SimClock,
    stats: StoreStats,
    faults: RwLock<Option<FaultPlan>>,
}

impl Store {
    /// A zero-latency store over the given tables ("local" setting).
    pub fn local(tables: impl IntoIterator<Item = (String, FeatureTable)>) -> Store {
        Store::with_latency(tables, LatencyModel::local())
    }

    /// A latency-modelled store over the given tables ("remote").
    pub fn remote(
        tables: impl IntoIterator<Item = (String, FeatureTable)>,
        latency: LatencyModel,
    ) -> Store {
        Store::with_latency(tables, latency)
    }

    fn with_latency(
        tables: impl IntoIterator<Item = (String, FeatureTable)>,
        latency: LatencyModel,
    ) -> Store {
        Store {
            inner: Arc::new(StoreInner {
                tables: RwLock::new(tables.into_iter().collect()),
                latency,
                clock: SimClock::new(),
                stats: StoreStats::default(),
                faults: RwLock::new(None),
            }),
        }
    }

    /// Install (or clear) a transient-fault injection plan. Applies to
    /// all clones of this store.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.inner.faults.write() = plan;
    }

    /// The latency model in effect.
    pub fn latency(&self) -> LatencyModel {
        self.inner.latency
    }

    /// Request counters.
    pub fn stats(&self) -> &StoreStats {
        &self.inner.stats
    }

    /// The virtual clock latency is charged to (Virtual mode).
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Feature dimensionality of a table.
    ///
    /// # Errors
    /// Returns [`StoreError::UnknownTable`] if absent.
    pub fn table_dim(&self, table: &str) -> Result<usize, StoreError> {
        self.inner
            .tables
            .read()
            .get(table)
            .map(FeatureTable::dim)
            .ok_or_else(|| StoreError::UnknownTable {
                name: table.to_string(),
            })
    }

    /// Add or replace a table.
    pub fn put_table(&self, name: impl Into<String>, table: FeatureTable) {
        self.inner.tables.write().insert(name.into(), table);
    }

    /// Fetch feature rows for a batch of keys from one table, charging
    /// one round trip plus per-key latency.
    ///
    /// # Errors
    /// Returns [`StoreError::UnknownTable`] for a missing table,
    /// [`StoreError::MissingKey`] for an absent key in a table with no
    /// default row, or [`StoreError::Transient`] when a fault plan
    /// fails the request (the round trip is still paid, as a timed-out
    /// RPC would be).
    pub fn get_batch(&self, table: &str, keys: &[Key]) -> Result<Vec<Arc<[f64]>>, StoreError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(plan) = *self.inner.faults.read() {
            // Fault decisions are made per round trip, in issue order.
            let ordinal = self.inner.stats.round_trips.load(Ordering::Relaxed);
            if plan.fails(ordinal) {
                self.charge(keys.len());
                self.inner.stats.faults.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::Transient {
                    table: table.to_string(),
                });
            }
        }
        let guard = self.inner.tables.read();
        let t = guard.get(table).ok_or_else(|| StoreError::UnknownTable {
            name: table.to_string(),
        })?;
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let row = t.get(key).ok_or_else(|| StoreError::MissingKey {
                table: table.to_string(),
                key: key.to_string(),
            })?;
            out.push(row);
        }
        drop(guard);
        self.charge(keys.len());
        Ok(out)
    }

    /// Insert or replace one feature row, charging one single-key
    /// round trip. This is the streaming-ingestion path: feature
    /// folders push updated entity state back while serving reads the
    /// same tables concurrently.
    ///
    /// # Errors
    /// Returns [`StoreError::UnknownTable`] for a missing table,
    /// [`StoreError::DimMismatch`] when `row.len()` differs from the
    /// table's dimensionality, or [`StoreError::Transient`] when a
    /// fault plan fails the request (the round trip is still paid).
    pub fn upsert_row(&self, table: &str, key: Key, row: Vec<f64>) -> Result<(), StoreError> {
        if self.write_faulted() {
            self.charge_write();
            return Err(StoreError::Transient {
                table: table.to_string(),
            });
        }
        let mut guard = self.inner.tables.write();
        let t = guard
            .get_mut(table)
            .ok_or_else(|| StoreError::UnknownTable {
                name: table.to_string(),
            })?;
        t.insert(key, row)?;
        drop(guard);
        self.charge_write();
        Ok(())
    }

    /// Atomically read-modify-write one row under the table lock: `f`
    /// sees the current row (or `None` when the key is absent and the
    /// table has no default) and returns the replacement. Returns the
    /// row as written. Charges one single-key round trip.
    ///
    /// Because the table lock is held across `f`, concurrent updates
    /// to the same key serialize instead of losing writes — keep `f`
    /// cheap.
    ///
    /// # Errors
    /// Returns [`StoreError::UnknownTable`] for a missing table,
    /// [`StoreError::DimMismatch`] when the replacement row has the
    /// wrong dimensionality, or [`StoreError::Transient`] when a fault
    /// plan fails the request (the round trip is still paid).
    pub fn update_row(
        &self,
        table: &str,
        key: &Key,
        f: impl FnOnce(Option<&[f64]>) -> Vec<f64>,
    ) -> Result<Vec<f64>, StoreError> {
        if self.write_faulted() {
            self.charge_write();
            return Err(StoreError::Transient {
                table: table.to_string(),
            });
        }
        let mut guard = self.inner.tables.write();
        let t = guard
            .get_mut(table)
            .ok_or_else(|| StoreError::UnknownTable {
                name: table.to_string(),
            })?;
        let current = t.get(key);
        let updated = f(current.as_deref());
        t.insert(key.clone(), updated.clone())?;
        drop(guard);
        self.charge_write();
        Ok(updated)
    }

    /// Whether the fault plan fails the next round trip (and counts
    /// the fault). Decisions are per round trip, in issue order, so
    /// reads and writes share one fault schedule.
    fn write_faulted(&self) -> bool {
        if let Some(plan) = *self.inner.faults.read() {
            let ordinal = self.inner.stats.round_trips.load(Ordering::Relaxed);
            if plan.fails(ordinal) {
                self.inner.stats.faults.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    fn charge(&self, n_keys: usize) {
        self.inner.stats.round_trips.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .keys_fetched
            .fetch_add(n_keys as u64, Ordering::Relaxed);
        self.pay(self.inner.latency.batch_cost_nanos(n_keys));
    }

    fn charge_write(&self) {
        self.inner.stats.round_trips.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .keys_written
            .fetch_add(1, Ordering::Relaxed);
        self.pay(self.inner.latency.batch_cost_nanos(1));
    }

    fn pay(&self, cost: u64) {
        if cost == 0 {
            return;
        }
        self.inner
            .stats
            .virtual_wait_nanos
            .fetch_add(cost, Ordering::Relaxed);
        match self.inner.latency.mode {
            LatencyMode::Local => {}
            LatencyMode::Virtual => {
                self.inner.clock.advance(cost);
            }
            LatencyMode::RealSleep => {
                std::thread::sleep(Duration::from_nanos(cost));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users() -> FeatureTable {
        let mut t = FeatureTable::new(2);
        t.insert(Key::Int(1), vec![1.0, 2.0]).unwrap();
        t.insert(Key::Int(2), vec![3.0, 4.0]).unwrap();
        t
    }

    #[test]
    fn insert_validates_dim() {
        let mut t = FeatureTable::new(2);
        assert!(matches!(
            t.insert(Key::Int(1), vec![1.0]),
            Err(StoreError::DimMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(t.set_default(vec![0.0]).is_err());
    }

    #[test]
    fn get_batch_counts_one_round_trip() {
        let store = Store::remote(
            [("users".to_string(), users())],
            LatencyModel::virtual_network(1_000, 10),
        );
        let rows = store
            .get_batch("users", &[Key::Int(1), Key::Int(2)])
            .unwrap();
        assert_eq!(&*rows[0], &[1.0, 2.0]);
        assert_eq!(&*rows[1], &[3.0, 4.0]);
        assert_eq!(store.stats().round_trips(), 1);
        assert_eq!(store.stats().keys_fetched(), 2);
        assert_eq!(store.clock().now_nanos(), 1_020);
    }

    #[test]
    fn empty_batch_is_free() {
        let store = Store::remote(
            [("users".to_string(), users())],
            LatencyModel::virtual_network(1_000, 10),
        );
        store.get_batch("users", &[]).unwrap();
        assert_eq!(store.stats().round_trips(), 0);
        assert_eq!(store.clock().now_nanos(), 0);
    }

    #[test]
    fn local_store_charges_nothing() {
        let store = Store::local([("users".to_string(), users())]);
        store.get_batch("users", &[Key::Int(1)]).unwrap();
        assert_eq!(store.stats().round_trips(), 1);
        assert_eq!(store.stats().wait_nanos(), 0);
        assert_eq!(store.clock().now_nanos(), 0);
    }

    #[test]
    fn missing_key_without_default_errors() {
        let store = Store::local([("users".to_string(), users())]);
        assert!(matches!(
            store.get_batch("users", &[Key::Int(99)]),
            Err(StoreError::MissingKey { .. })
        ));
    }

    #[test]
    fn default_row_serves_unknown_keys() {
        let mut t = users();
        t.set_default(vec![0.0, 0.0]).unwrap();
        let store = Store::local([("users".to_string(), t)]);
        let rows = store.get_batch("users", &[Key::Int(99)]).unwrap();
        assert_eq!(&*rows[0], &[0.0, 0.0]);
    }

    #[test]
    fn unknown_table_errors() {
        let store = Store::local([]);
        assert!(matches!(
            store.get_batch("nope", &[Key::Int(1)]),
            Err(StoreError::UnknownTable { .. })
        ));
        assert!(store.table_dim("nope").is_err());
    }

    #[test]
    fn string_keys_work() {
        let mut t = FeatureTable::new(1);
        t.insert(Key::str("rock"), vec![0.7]).unwrap();
        let store = Store::local([("genres".to_string(), t)]);
        let rows = store.get_batch("genres", &[Key::str("rock")]).unwrap();
        assert_eq!(&*rows[0], &[0.7]);
    }

    #[test]
    fn stats_reset() {
        let store = Store::remote(
            [("users".to_string(), users())],
            LatencyModel::virtual_network(100, 1),
        );
        store.get_batch("users", &[Key::Int(1)]).unwrap();
        store.stats().reset();
        assert_eq!(store.stats().round_trips(), 0);
        assert_eq!(store.stats().keys_fetched(), 0);
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let plan = FaultPlan { rate: 0.3, seed: 9 };
        let a: Vec<bool> = (0..100).map(|i| plan.fails(i)).collect();
        let b: Vec<bool> = (0..100).map(|i| plan.fails(i)).collect();
        assert_eq!(a, b);
        let hits = a.iter().filter(|f| **f).count();
        assert!((15..=45).contains(&hits), "rate ~0.3 of 100: {hits}");
        assert!(!FaultPlan { rate: 0.0, seed: 1 }.fails(5));
        assert!(FaultPlan { rate: 1.0, seed: 1 }.fails(5));
    }

    #[test]
    fn injected_faults_fail_requests_but_charge_latency() {
        let store = Store::remote(
            [("users".to_string(), users())],
            LatencyModel::virtual_network(1_000, 10),
        );
        store.set_fault_plan(Some(FaultPlan { rate: 1.0, seed: 0 }));
        let err = store.get_batch("users", &[Key::Int(1)]).unwrap_err();
        assert!(matches!(err, StoreError::Transient { .. }));
        assert_eq!(store.stats().faults(), 1);
        assert_eq!(store.stats().round_trips(), 1, "failed RPC still pays");
        assert!(store.stats().wait_nanos() > 0);
        // Clearing the plan restores service.
        store.set_fault_plan(None);
        assert!(store.get_batch("users", &[Key::Int(1)]).is_ok());
    }

    #[test]
    fn clones_share_fault_plan() {
        let store = Store::local([("users".to_string(), users())]);
        let clone = store.clone();
        store.set_fault_plan(Some(FaultPlan { rate: 1.0, seed: 0 }));
        assert!(clone.get_batch("users", &[Key::Int(1)]).is_err());
    }

    #[test]
    fn upsert_row_charges_and_is_visible() {
        let store = Store::remote(
            [("users".to_string(), users())],
            LatencyModel::virtual_network(1_000, 10),
        );
        store
            .upsert_row("users", Key::Int(3), vec![5.0, 6.0])
            .unwrap();
        assert_eq!(store.stats().round_trips(), 1);
        assert_eq!(store.stats().keys_written(), 1);
        assert_eq!(store.stats().keys_fetched(), 0);
        assert_eq!(store.clock().now_nanos(), 1_010, "one single-key trip");
        let rows = store.get_batch("users", &[Key::Int(3)]).unwrap();
        assert_eq!(&*rows[0], &[5.0, 6.0]);
    }

    #[test]
    fn upsert_row_validates_dim_and_table() {
        let store = Store::local([("users".to_string(), users())]);
        assert!(matches!(
            store.upsert_row("users", Key::Int(3), vec![1.0]),
            Err(StoreError::DimMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            store.upsert_row("nope", Key::Int(3), vec![1.0]),
            Err(StoreError::UnknownTable { .. })
        ));
        // Neither failed write charged a round trip.
        assert_eq!(store.stats().round_trips(), 0);
        assert_eq!(store.stats().keys_written(), 0);
    }

    #[test]
    fn update_row_reads_then_replaces() {
        let store = Store::local([("users".to_string(), users())]);
        let written = store
            .update_row("users", &Key::Int(1), |cur| {
                let cur = cur.expect("key 1 exists");
                vec![cur[0] + 10.0, cur[1]]
            })
            .unwrap();
        assert_eq!(written, vec![11.0, 2.0]);
        // Absent key with no default sees None.
        let fresh = store
            .update_row("users", &Key::Int(42), |cur| {
                assert!(cur.is_none());
                vec![0.5, 0.5]
            })
            .unwrap();
        assert_eq!(fresh, vec![0.5, 0.5]);
        assert_eq!(store.stats().keys_written(), 2);
        let rows = store
            .get_batch("users", &[Key::Int(1), Key::Int(42)])
            .unwrap();
        assert_eq!(&*rows[0], &[11.0, 2.0]);
        assert_eq!(&*rows[1], &[0.5, 0.5]);
    }

    #[test]
    fn write_faults_fail_but_charge() {
        let store = Store::remote(
            [("users".to_string(), users())],
            LatencyModel::virtual_network(1_000, 10),
        );
        store.set_fault_plan(Some(FaultPlan { rate: 1.0, seed: 0 }));
        let err = store
            .upsert_row("users", Key::Int(3), vec![5.0, 6.0])
            .unwrap_err();
        assert!(matches!(err, StoreError::Transient { .. }));
        let err = store
            .update_row("users", &Key::Int(1), |_| vec![0.0, 0.0])
            .unwrap_err();
        assert!(matches!(err, StoreError::Transient { .. }));
        assert_eq!(store.stats().faults(), 2);
        assert_eq!(store.stats().round_trips(), 2, "failed writes still pay");
        assert_eq!(store.stats().keys_written(), 2);
        // The faulted upsert did not land.
        assert!(matches!(
            store.get_batch("users", &[Key::Int(3)]),
            Err(StoreError::Transient { .. } | StoreError::MissingKey { .. })
        ));
    }

    #[test]
    fn concurrent_update_rows_never_lose_increments() {
        let mut t = FeatureTable::new(1);
        t.insert(Key::Int(0), vec![0.0]).unwrap();
        let store = Store::local([("counters".to_string(), t)]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for _ in 0..250 {
                        store
                            .update_row("counters", &Key::Int(0), |cur| {
                                vec![cur.expect("row exists")[0] + 1.0]
                            })
                            .unwrap();
                    }
                });
            }
        });
        let rows = store.get_batch("counters", &[Key::Int(0)]).unwrap();
        assert_eq!(rows[0][0], 1_000.0, "read-modify-write serializes");
        assert_eq!(store.stats().keys_written(), 1_000);
    }

    #[test]
    fn clones_share_tables_and_stats() {
        let store = Store::local([("users".to_string(), users())]);
        let other = store.clone();
        other.get_batch("users", &[Key::Int(1)]).unwrap();
        assert_eq!(store.stats().round_trips(), 1);
        let mut extra = FeatureTable::new(1);
        extra.insert(Key::Int(5), vec![9.0]).unwrap();
        other.put_table("extra", extra);
        assert_eq!(store.table_dim("extra").unwrap(), 1);
    }
}
