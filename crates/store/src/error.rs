//! Error type for the store substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by feature-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A table name was not found in the store.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// A key was not present and the table has no default row.
    MissingKey {
        /// Table queried.
        table: String,
        /// Display form of the missing key.
        key: String,
    },
    /// A row's dimensionality did not match the table's.
    DimMismatch {
        /// Dimension the table holds.
        expected: usize,
        /// Dimension supplied.
        found: usize,
    },
    /// The request failed transiently (injected fault / timed-out RPC).
    Transient {
        /// Table that was being queried.
        table: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownTable { name } => write!(f, "unknown table `{name}`"),
            StoreError::MissingKey { table, key } => {
                write!(
                    f,
                    "key `{key}` not found in table `{table}` and no default row set"
                )
            }
            StoreError::DimMismatch { expected, found } => {
                write!(
                    f,
                    "row dimension mismatch: table holds {expected}, row has {found}"
                )
            }
            StoreError::Transient { table } => {
                write!(f, "transient failure querying table `{table}`")
            }
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = StoreError::UnknownTable { name: "t".into() };
        assert_eq!(e.to_string(), "unknown table `t`");
        let e = StoreError::DimMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("table holds 3"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
