//! WL001 fixture: `endpoint` is beyond the frozen v1 set (`id`,
//! `rows`) and lacks `#[serde(default)]` — exactly one violation.

use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
pub struct Request {
    pub id: u64,
    pub rows: Vec<u32>,
    pub endpoint: Option<String>,
    #[serde(default)]
    pub version: Option<u32>,
}

#[derive(Serialize, Deserialize)]
pub struct Response {
    pub id: u64,
    pub scores: Vec<f64>,
    pub error: Option<String>,
}
