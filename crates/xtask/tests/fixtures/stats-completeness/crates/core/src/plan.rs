//! WL002 fixture: `gate_resolved` is declared on `PlanCounters` but
//! neither folded by `snapshot()` nor mirrored on
//! `PlanCountersSnapshot` — exactly two violations.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct PlanCounters {
    rows: AtomicU64,
    gate_resolved: AtomicU64,
}

pub struct PlanCountersSnapshot {
    pub rows: u64,
}

impl PlanCounters {
    pub fn snapshot(&self) -> PlanCountersSnapshot {
        PlanCountersSnapshot {
            rows: self.rows.load(Ordering::Relaxed),
        }
    }
}

impl PlanCountersSnapshot {
    pub fn merged(self, other: PlanCountersSnapshot) -> PlanCountersSnapshot {
        PlanCountersSnapshot {
            rows: self.rows + other.rows,
        }
    }
}
