//! Known-bad fixture for the wire2 half of WL001: the `Request`
//! layout swaps `endpoint` and `version` relative to the frozen v2
//! copy, but `WIRE2_VERSION` was left at 2 — exactly the silent wire
//! break the rule exists to catch.

pub const WIRE2_VERSION: u8 = 2;

pub const WIRE2_LAYOUT: &[(&str, &[&str])] = &[
    (
        "Request",
        &[
            "id",
            "rows",
            "version",
            "endpoint",
            "key",
            "forwarded",
            "control",
        ],
    ),
    (
        "Response",
        &[
            "id",
            "scores",
            "error",
            "endpoint",
            "version",
            "counters",
            "degraded",
            "overloaded",
        ],
    ),
    ("EndpointCounters", &["endpoint", "version", "counters"]),
    (
        "PlanCountersSnapshot",
        &["rows", "gate_resolved", "escalated", "filter_dropped"],
    ),
    ("Value", &["Null", "Bool", "Int", "Float", "Str"]),
];
