//! WL003 fixture: one `.lock().unwrap()` and one `.send(..).expect()`
//! on the hot path fire; the test-module copy, the allow-marked line,
//! the string literal, and the argument-taking `read` call all stay
//! silent — exactly two violations.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn hot_path(m: &Mutex<u64>, tx: &Sender<u64>) -> u64 {
    let v = *m.lock().unwrap();
    tx.send(v).expect("worker channel closed");
    v
}

pub fn allowed_path(m: &Mutex<u64>) -> u64 {
    // lint:allow(WL003: fixture demonstrates the escape hatch)
    *m.lock().unwrap()
}

pub fn not_a_lock(s: &str) -> String {
    // A string mentioning m.lock().unwrap() must not fire.
    let mut buf = [0u8; 4];
    let _ = std::io::Read::read(&mut s.as_bytes(), &mut buf).unwrap();
    "m.lock().unwrap()".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let m = Mutex::new(7);
        assert_eq!(*m.lock().unwrap(), 7);
    }
}
