//! Healthy recording binary: schema registered and present in
//! EXPERIMENTS.md — contributes no violation.

const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table1-good v1 -->";
const RECORD_CMD: &str = "cargo run --bin table1 -- --record";

fn main() {
    willump_bench::run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, || {});
}
