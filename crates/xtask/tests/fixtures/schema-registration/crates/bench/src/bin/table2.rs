//! Unregistered recording binary: declares a schema missing from
//! `RECORDED_SCHEMAS` — one violation fires on the const below.

const EXPERIMENTS_SCHEMA: &str = "<!-- schema: table2-unregistered v1 -->";
const RECORD_CMD: &str = "cargo run --bin table2 -- --record";

fn main() {
    willump_bench::run_recorded_experiment(EXPERIMENTS_SCHEMA, RECORD_CMD, || {});
}
