//! WL004 fixture registry: `table1` is healthy, `table9-stale` is
//! registered but declared by no binary (and absent from
//! EXPERIMENTS.md) — two of the fixture's three violations come from
//! here.

pub const RECORDED_SCHEMAS: &[(&str, &str)] = &[
    (
        "<!-- schema: table1-good v1 -->",
        "cargo run --bin table1 -- --record",
    ),
    (
        "<!-- schema: table9-stale v1 -->",
        "cargo run --bin table9 -- --record",
    ),
];

pub fn run_recorded_experiment(_schema: &str, _cmd: &str, run: impl FnOnce()) {
    run();
}
