//! Fixture-backed coverage for every lint rule: each rule fires in
//! its own known-bad fixture tree (and only there), the real tree is
//! clean, `--fix` round-trips, and the binary's exit codes match.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint a fixture and return the set of rule IDs that fired plus the
/// violations themselves.
fn lint_fixture(name: &str) -> (BTreeSet<&'static str>, Vec<xtask::Violation>) {
    let violations = xtask::lint(&fixture(name)).expect("lint fixture");
    let ids = violations.iter().map(|v| v.rule).collect();
    (ids, violations)
}

/// The real tree satisfies every invariant — the PR that breaks one
/// must either fix the code or add a reasoned `lint:allow`.
#[test]
fn real_tree_is_clean() {
    let violations = xtask::lint(&repo_root()).expect("lint repo");
    assert!(
        violations.is_empty(),
        "real tree has violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn wire_compat_fixture_fires_exactly_wl001() {
    let (ids, violations) = lint_fixture("wire-compat");
    assert_eq!(ids, BTreeSet::from(["WL001"]), "{violations:?}");
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert!(v.message.contains("Request::endpoint"), "{v}");
    assert!(v.fix.is_some(), "WL001 must offer a mechanical fix");
}

#[test]
fn wire2_compat_fixture_fires_exactly_wl001() {
    let (ids, violations) = lint_fixture("wire2-compat");
    assert_eq!(ids, BTreeSet::from(["WL001"]), "{violations:?}");
    // One finding, anchored at the first diverging layout entry, and
    // no mechanical fix — a wire break needs a human version bump.
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert!(v.file.ends_with("wire2.rs"), "{v}");
    assert!(v.message.contains("WIRE2_VERSION is still 2"), "{v}");
    assert!(
        v.message.contains("`version` where v2 froze `endpoint`"),
        "{v}"
    );
    assert!(v.fix.is_none(), "{v}");
}

#[test]
fn stats_completeness_fixture_fires_exactly_wl002() {
    let (ids, violations) = lint_fixture("stats-completeness");
    assert_eq!(ids, BTreeSet::from(["WL002"]), "{violations:?}");
    // `gate_resolved` is both unfolded in snapshot() and missing from
    // the mirror struct.
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations
        .iter()
        .all(|v| v.message.contains("gate_resolved")));
}

#[test]
fn no_lock_unwrap_fixture_fires_exactly_wl003() {
    let (ids, violations) = lint_fixture("no-lock-unwrap");
    assert_eq!(ids, BTreeSet::from(["WL003"]), "{violations:?}");
    // The hot-path unwrap and expect fire; the allow-marked line, the
    // #[cfg(test)] copy, the string literal, and `read(&mut buf)` do
    // not.
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations.iter().any(|v| v.message.contains(".lock(")));
    assert!(violations.iter().any(|v| v.message.contains(".send(")));
}

#[test]
fn schema_registration_fixture_fires_exactly_wl004() {
    let (ids, violations) = lint_fixture("schema-registration");
    assert_eq!(ids, BTreeSet::from(["WL004"]), "{violations:?}");
    // Unregistered binary schema + stale registry entry + registered
    // schema missing from EXPERIMENTS.md.
    assert_eq!(violations.len(), 3, "{violations:?}");
    assert!(violations
        .iter()
        .any(|v| v.file.ends_with("table2.rs") && v.message.contains("not registered")));
    assert!(violations
        .iter()
        .any(|v| v.file.ends_with("lib.rs") && v.message.contains("stale")));
    assert!(violations
        .iter()
        .any(|v| v.file == "EXPERIMENTS.md" && v.message.contains("missing recorded section")));
}

#[test]
fn vendor_hygiene_fixture_fires_exactly_wl005() {
    let (ids, violations) = lint_fixture("vendor-hygiene");
    assert_eq!(ids, BTreeSet::from(["WL005"]), "{violations:?}");
    // `rand = "0.8"` fires; the git dep is suppressed by its
    // lint:allow marker.
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].message.contains("rand"), "{violations:?}");
}

/// `--fix` inserts `#[serde(default)]` and the tree lints clean
/// afterwards (run against a scratch copy, never the fixture itself).
#[test]
fn wire_compat_fix_round_trips() {
    let scratch = Path::new(env!("CARGO_TARGET_TMPDIR")).join("wire-compat-fix");
    let proto_dir = scratch.join("crates/serve/src");
    std::fs::create_dir_all(&proto_dir).expect("scratch dirs");
    std::fs::copy(
        fixture("wire-compat").join("crates/serve/src/protocol.rs"),
        proto_dir.join("protocol.rs"),
    )
    .expect("copy fixture");

    let before = xtask::lint(&scratch).expect("lint scratch");
    assert_eq!(before.len(), 1);
    let applied = xtask::apply_fixes(&scratch, &before).expect("apply fixes");
    assert_eq!(applied, 1);
    let after = xtask::lint(&scratch).expect("re-lint scratch");
    assert!(after.is_empty(), "{after:?}");
    let fixed = std::fs::read_to_string(proto_dir.join("protocol.rs")).expect("read fixed");
    assert!(
        fixed.contains("#[serde(default)]\n    pub endpoint: Option<String>,"),
        "attribute inserted with field indentation:\n{fixed}"
    );
}

/// The shipped binary exits 0 on the real tree and nonzero on every
/// fixture — the exact contract the CI lint job relies on.
#[test]
fn binary_exit_codes_match_contract() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let ok = Command::new(bin)
        .args(["lint", "--root"])
        .arg(repo_root())
        .output()
        .expect("run xtask");
    assert!(
        ok.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&ok.stdout)
    );
    for name in [
        "wire-compat",
        "wire2-compat",
        "stats-completeness",
        "no-lock-unwrap",
        "schema-registration",
        "vendor-hygiene",
    ] {
        let out = Command::new(bin)
            .args(["lint", "--root"])
            .arg(fixture(name))
            .output()
            .expect("run xtask on fixture");
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {name}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

/// Rule metadata stays well-formed: ids unique, sequential, named.
#[test]
fn rule_table_is_consistent() {
    let ids: Vec<&str> = xtask::RULES.iter().map(|r| r.id).collect();
    assert_eq!(ids, ["WL001", "WL002", "WL003", "WL004", "WL005"]);
    let names: BTreeSet<&str> = xtask::RULES.iter().map(|r| r.name).collect();
    assert_eq!(names.len(), xtask::RULES.len());
    assert!(xtask::RULES.iter().all(|r| !r.summary.is_empty()));
}
