//! `cargo run -p xtask -- lint [--fix] [--root PATH]`
//!
//! Exit code 0 when the workspace satisfies every invariant, 1 when
//! violations remain (after `--fix` applied what it could), 2 on
//! usage or I/O errors.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--fix] [--root PATH]");
    eprintln!();
    eprintln!("rules:");
    for r in xtask::RULES {
        eprintln!("  {} {:<20} {}", r.id, r.name, r.summary);
    }
    ExitCode::from(2)
}

/// The workspace root: `--root` override, else the directory cargo
/// launched us from (cargo sets the cwd to the invocation dir; `cargo
/// run -p xtask` from anywhere inside the repo still compiles with
/// the manifest dir baked in as a fallback).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    if let Ok(cwd) = env::current_dir() {
        for dir in cwd.ancestors() {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return dir.to_path_buf();
            }
        }
    }
    // Compiled-in fallback: crates/xtask/../..
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    if cmd != "lint" {
        return usage();
    }
    let mut fix = false;
    let mut root_arg: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fix" => fix = true,
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let root = workspace_root(root_arg);
    let mut violations = match xtask::lint(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if fix && violations.iter().any(|v| v.fix.is_some()) {
        match xtask::apply_fixes(&root, &violations) {
            Ok(n) => {
                eprintln!("xtask lint: applied {n} fix(es), re-checking");
                violations = match xtask::lint(&root) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("xtask lint: I/O error: {e}");
                        return ExitCode::from(2);
                    }
                };
            }
            Err(e) => {
                eprintln!("xtask lint: failed to apply fixes: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} rules checked against {})",
            xtask::RULES.len(),
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "xtask lint: {} violation(s); suppress with a `lint:allow(WLxxx: reason)` \
             comment only when the invariant genuinely does not apply",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
