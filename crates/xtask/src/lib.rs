//! Repo-specific static analysis for the Willump workspace.
//!
//! Six PRs in, the runtime's correctness rests on cross-cutting
//! invariants that no general-purpose tool checks: wire back-compat
//! attributes, counter-aggregation completeness, lock hygiene on hot
//! paths, experiment-schema registration, and the offline vendored
//! dependency policy. This crate is a small line/token-level Rust and
//! TOML scanner (deliberately dependency-free — no `syn`, because no
//! crates.io access is itself one of the invariants) that enforces
//! them mechanically:
//!
//! | ID | name | invariant |
//! |----|------|-----------|
//! | WL001 | `wire-compat` | every field of the `crates/serve/src/protocol.rs` wire structs beyond the frozen v1 set carries `#[serde(default)]`, so legacy frames keep decoding; and `wire2.rs`'s binary `WIRE2_LAYOUT` matches its frozen per-version copy, so layout changes must bump `WIRE2_VERSION` |
//! | WL002 | `stats-completeness` | every numeric counter on `EndpointStats`/`PlanCounters`/`TransportStats` (and their snapshot mirrors) folds into the corresponding `snapshot()`/`merged()` aggregation |
//! | WL003 | `no-lock-unwrap` | no `.unwrap()`/`.expect()` on lock or channel results in `crates/serve`/`crates/core` non-test code |
//! | WL004 | `schema-registration` | every recording bench binary's schema header is registered in `RECORDED_SCHEMAS`, no registry entry is stale, and every registered section exists in `EXPERIMENTS.md` |
//! | WL005 | `vendor-hygiene` | every dependency across workspace manifests resolves to a path inside `vendor/` or `crates/` (no registry/git deps — the build env is offline) |
//!
//! Run with `cargo run -p xtask -- lint` (add `--fix` to apply the
//! mechanical fixes, currently WL001 attribute insertion). A finding
//! can be suppressed — with a reason — by a `lint:allow(WLxxx: why)`
//! comment on the offending line or the line directly above it.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Stable metadata for one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable identifier (`WL001` …), used in reports and
    /// `lint:allow(...)` markers.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// Every rule this linter knows, in ID order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "WL001",
        name: "wire-compat",
        summary:
            "protocol.rs wire-struct fields beyond the frozen v1 set carry #[serde(default)]; \
                  wire2.rs binary layout changes bump WIRE2_VERSION",
    },
    Rule {
        id: "WL002",
        name: "stats-completeness",
        summary: "every numeric stats counter folds into its snapshot()/merged() aggregation",
    },
    Rule {
        id: "WL003",
        name: "no-lock-unwrap",
        summary: "no .unwrap()/.expect() on lock or channel results in serve/core non-test code",
    },
    Rule {
        id: "WL004",
        name: "schema-registration",
        summary: "recording binaries, RECORDED_SCHEMAS, and EXPERIMENTS.md sections stay in sync",
    },
    Rule {
        id: "WL005",
        name: "vendor-hygiene",
        summary: "every workspace dependency is a path into vendor/ or crates/",
    },
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule ID (`WL001` …).
    pub rule: &'static str,
    /// Rule name (`wire-compat` …).
    pub name: &'static str,
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Mechanical fix, when the rule has one (applied by `--fix`).
    pub fix: Option<Fix>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}:{}: {}",
            self.rule, self.name, self.file, self.line, self.message
        )
    }
}

/// A mechanical fix attached to a [`Violation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fix {
    /// Insert `text` as a new line directly above 1-based `line` of
    /// `file` (relative to the workspace root).
    InsertLineAbove {
        /// Target file, relative to the workspace root.
        file: String,
        /// 1-based line number the new line is inserted above.
        line: usize,
        /// The full text of the inserted line (indentation included).
        text: String,
    },
}

// ---- source model ---------------------------------------------------

/// A loaded Rust source file with the derived views the rules scan.
struct SourceFile {
    rel: String,
    /// Original text, line-split (allow markers, string literals).
    lines: Vec<String>,
    /// Comments and literals blanked out, newlines preserved, so
    /// token scans cannot match inside strings or docs.
    stripped: String,
    /// `true` for lines inside a `#[cfg(test)] mod … { … }` block.
    test_mask: Vec<bool>,
}

impl SourceFile {
    fn load(root: &Path, rel: &str) -> io::Result<Option<SourceFile>> {
        let path = root.join(rel);
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        let stripped = strip_source(&text);
        let test_mask = test_line_mask(&stripped);
        Ok(Some(SourceFile {
            rel: rel.to_string(),
            lines: text.lines().map(str::to_string).collect(),
            stripped,
            test_mask,
        }))
    }

    fn line_of_offset(&self, offset: usize) -> usize {
        self.stripped[..offset].matches('\n').count() + 1
    }

    fn in_test(&self, line: usize) -> bool {
        self.test_mask
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Blank out comments, string/char literals, and raw strings,
/// preserving every newline (so byte offsets map to the original line
/// numbers) and the delimiting quotes (so string positions stay
/// visible without their contents).
fn strip_source(src: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    let keep = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = St::Line;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                } else if c == 'r' && matches!(b.get(i + 1), Some(&'"') | Some(&'#')) {
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        out.extend(std::iter::repeat_n(' ', j - i + 1));
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal when the quote closes within two
                    // chars (or an escape follows); lifetime otherwise.
                    let is_char = b.get(i + 1) == Some(&'\\')
                        || (b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\''));
                    if is_char {
                        st = St::Char;
                    }
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::Line => {
                if c == '\n' {
                    st = St::Code;
                }
                out.push(keep(c));
                i += 1;
            }
            St::Block(d) => {
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::Block(d + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(keep(c));
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(&n) = b.get(i + 1) {
                        out.push(keep(n));
                    }
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(keep(c));
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == '"' && (0..h).all(|k| b.get(i + 1 + k) == Some(&'#')) {
                    st = St::Code;
                    out.extend(std::iter::repeat_n(' ', h + 1));
                    i += h + 1;
                } else {
                    out.push(keep(c));
                    i += 1;
                }
            }
            St::Char => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(&n) = b.get(i + 1) {
                        out.push(keep(n));
                    }
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(keep(c));
                    i += 1;
                }
            }
        }
    }
    out
}

/// Mark the lines belonging to `#[cfg(test)] mod … { … }` blocks
/// (the workspace convention for unit tests) so hot-path rules skip
/// test code.
fn test_line_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() == "#[cfg(test)]" {
            // The mod item follows, possibly after more attributes.
            let mut j = i + 1;
            while j < lines.len() && j <= i + 5 && !lines[j].contains("mod ") {
                j += 1;
            }
            if j < lines.len() && lines[j].contains("mod ") {
                let mut depth: i64 = 0;
                let mut opened = false;
                let mut k = j;
                while k < lines.len() {
                    for ch in lines[k].chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    mask[k] = true;
                    if opened && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                let hi = j.min(mask.len() - 1);
                mask[i..=hi].fill(true);
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Whole-word containment (`_`-aware), so counter `rows` does not
/// match inside `coalesced_rows`.
fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(word) {
        let p = start + pos;
        let word_char = |b: u8| b == b'_' || (b as char).is_ascii_alphanumeric();
        let before_ok = p == 0 || !word_char(bytes[p - 1]);
        let after = p + word.len();
        let after_ok = after >= bytes.len() || !word_char(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = p + 1;
    }
    false
}

/// Find `struct <name>`'s brace-delimited body in stripped source:
/// `(line_of_open_brace, body_text, body_offset)`.
fn struct_body<'a>(stripped: &'a str, name: &str) -> Option<(usize, &'a str, usize)> {
    let mut search = 0;
    while let Some(pos) = stripped[search..].find("struct ") {
        let p = search + pos + "struct ".len();
        let rest = &stripped[p..];
        if rest.trim_start().starts_with(name) {
            let after = rest.trim_start()[name.len()..].trim_start();
            // Reject prefixes: `struct RequestBody` when asked for
            // `Request`.
            if after.starts_with('{') || after.starts_with('<') {
                let name_ok = {
                    let n = rest.trim_start();
                    n.len() == name.len()
                        || !n.as_bytes()[name.len()].is_ascii_alphanumeric()
                            && n.as_bytes()[name.len()] != b'_'
                };
                if name_ok {
                    if let Some(open_rel) = stripped[p..].find('{') {
                        let open = p + open_rel;
                        let body_end = matching_brace(stripped, open)?;
                        let line = stripped[..open].matches('\n').count() + 1;
                        return Some((line, &stripped[open + 1..body_end], open + 1));
                    }
                }
            }
        }
        search = p;
    }
    None
}

/// Offset of the `}` matching the `{` at `open`.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i);
                }
            }
            _ => {}
        }
    }
    None
}

/// A parsed struct field: `(line, name, type_text, has_serde_default)`.
struct FieldInfo {
    line: usize,
    name: String,
    ty: String,
    serde_default: bool,
}

/// Parse the top-level fields of a struct body (stripped text), with
/// the attributes attached to each.
fn parse_fields(body: &str, body_offset: usize, full: &str) -> Vec<FieldInfo> {
    let base_line = full[..body_offset].matches('\n').count() + 1;
    let mut fields = Vec::new();
    let mut attrs: Vec<String> = Vec::new();
    let mut depth = 0i64;
    for (i, raw) in body.lines().enumerate() {
        let line = base_line + i;
        let t = raw.trim();
        if depth == 0 {
            if t.starts_with("#[") {
                attrs.push(t.to_string());
            } else if let Some(colon) = t.find(':') {
                let head = t[..colon].trim();
                let name = head.strip_prefix("pub ").unwrap_or(head).trim();
                let is_ident =
                    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if is_ident && !t.starts_with("//") {
                    let ty = t[colon + 1..].trim_end_matches(',').trim().to_string();
                    fields.push(FieldInfo {
                        line,
                        name: name.to_string(),
                        ty,
                        serde_default: attrs.iter().any(|a| a.contains("serde(default)")),
                    });
                    attrs.clear();
                }
            } else if !t.is_empty() {
                attrs.clear();
            }
        }
        for c in raw.chars() {
            match c {
                '{' | '(' => depth += 1,
                '}' | ')' => depth -= 1,
                _ => {}
            }
        }
    }
    fields
}

/// Body text of `fn <fn_name>` inside `impl <impl_name> { … }`
/// (stripped text), with the 1-based line of the fn.
fn impl_fn_body<'a>(stripped: &'a str, impl_name: &str, fn_name: &str) -> Option<(usize, &'a str)> {
    let needle = format!("impl {impl_name} {{");
    let impl_open = stripped.find(&needle)? + needle.len() - 1;
    let impl_end = matching_brace(stripped, impl_open)?;
    let body = &stripped[impl_open..impl_end];
    let fn_needle = format!("fn {fn_name}(");
    let fn_pos = body.find(&fn_needle)?;
    let open = impl_open + fn_pos + body[fn_pos..].find('{')?;
    let end = matching_brace(stripped, open)?;
    let line = stripped[..open].matches('\n').count() + 1;
    Some((line, &stripped[open + 1..end]))
}

/// Extract every double-quoted string literal from original source
/// text along with its 1-based line (good enough for the literal
/// tables the WL004 rule reads — no escapes in schema strings).
fn string_literals(src: &str) -> Vec<(usize, String)> {
    let stripped = strip_source(src);
    let bytes = stripped.as_bytes();
    let src_chars: Vec<char> = src.chars().collect();
    // Stripped text keeps the quote positions; contents come from the
    // original. Both are pure ASCII in the files this reads, so byte
    // offsets line up; fall back to char indexing for safety.
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            if j < bytes.len() {
                let content: String = src_chars.get(i + 1..j).unwrap_or(&[]).iter().collect();
                let line = stripped[..i].matches('\n').count() + 1;
                out.push((line, content));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

// ---- rule 1: wire-compat -------------------------------------------

/// The wire structs of `protocol.rs` and their frozen v1 field sets.
/// Fields in these sets predate versioned decoding and MUST stay; any
/// field beyond them must be `#[serde(default)]` so legacy frames
/// keep decoding. Adding a new wire struct? Register it here with the
/// fields of its first released shape.
const WIRE_STRUCTS: &[(&str, &[&str])] = &[
    ("Request", &["id", "rows"]),
    ("Response", &["id", "scores", "error"]),
    ("EndpointCounters", &["endpoint", "version", "counters"]),
];

const PROTOCOL_RS: &str = "crates/serve/src/protocol.rs";
const WIRE2_RS: &str = "crates/serve/src/wire2.rs";

/// The frozen v2 binary layout: `WIRE2_LAYOUT`'s string literals,
/// flattened in declaration order (struct/enum names interleaved with
/// their field/variant sequences). While `WIRE2_VERSION == 2`, the
/// source constant must match this copy exactly — reordering, adding,
/// or removing an entry is a wire break that requires bumping the
/// negotiation version byte (at which point this copy is re-frozen).
const WIRE2_V2_LAYOUT: &[&str] = &[
    "Request",
    "id",
    "rows",
    "endpoint",
    "version",
    "key",
    "forwarded",
    "control",
    "Response",
    "id",
    "scores",
    "error",
    "endpoint",
    "version",
    "counters",
    "degraded",
    "overloaded",
    "EndpointCounters",
    "endpoint",
    "version",
    "counters",
    "PlanCountersSnapshot",
    "rows",
    "gate_resolved",
    "escalated",
    "filter_dropped",
    "Value",
    "Null",
    "Bool",
    "Int",
    "Float",
    "Str",
];

/// The frozen v3 binary layout: v2 plus the `ControlRequest`
/// variant-tag order (the cluster-lifecycle control frames). Same
/// discipline as [`WIRE2_V2_LAYOUT`] — while `WIRE2_VERSION == 3` the
/// source manifest must match this copy exactly.
const WIRE2_V3_LAYOUT: &[&str] = &[
    "Request",
    "id",
    "rows",
    "endpoint",
    "version",
    "key",
    "forwarded",
    "control",
    "Response",
    "id",
    "scores",
    "error",
    "endpoint",
    "version",
    "counters",
    "degraded",
    "overloaded",
    "EndpointCounters",
    "endpoint",
    "version",
    "counters",
    "PlanCountersSnapshot",
    "rows",
    "gate_resolved",
    "escalated",
    "filter_dropped",
    "Value",
    "Null",
    "Bool",
    "Int",
    "Float",
    "Str",
    "ControlRequest",
    "Counters",
    "Join",
    "Drain",
    "Leave",
];

fn rule_wire_compat(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    rule_wire2_layout(root, out)?;
    let Some(src) = SourceFile::load(root, PROTOCOL_RS)? else {
        return Ok(());
    };
    for (name, frozen) in WIRE_STRUCTS {
        let Some((_, body, off)) = struct_body(&src.stripped, name) else {
            continue;
        };
        for f in parse_fields(body, off, &src.stripped) {
            if frozen.contains(&f.name.as_str()) || f.serde_default {
                continue;
            }
            let indent: String = src
                .lines
                .get(f.line - 1)
                .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
                .unwrap_or_default();
            out.push(Violation {
                rule: "WL001",
                name: "wire-compat",
                file: src.rel.clone(),
                line: f.line,
                message: format!(
                    "field `{}::{}` is beyond the frozen v1 wire set and lacks \
                     #[serde(default)]; legacy frames would fail to decode",
                    name, f.name
                ),
                fix: Some(Fix::InsertLineAbove {
                    file: src.rel.clone(),
                    line: f.line,
                    text: format!("{indent}#[serde(default)]"),
                }),
            });
        }
    }
    Ok(())
}

/// The wire2 half of WL001: the source's `WIRE2_LAYOUT` manifest must
/// match the frozen copy for its declared `WIRE2_VERSION`
/// ([`WIRE2_V2_LAYOUT`] / [`WIRE2_V3_LAYOUT`]) exactly; any drift
/// means the binary encoding changed shape and the version byte must
/// be bumped (a new version is accepted — its layout gets frozen in
/// the PR that bumps).
fn rule_wire2_layout(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let path = root.join(WIRE2_RS);
    if !path.is_file() {
        return Ok(());
    }
    let src = fs::read_to_string(&path)?;
    let stripped = strip_source(&src);

    let version: Option<u8> = stripped.find("WIRE2_VERSION").and_then(|p| {
        let rest = &stripped[p..];
        let eq = rest.find('=')?;
        rest[eq + 1..].split(';').next()?.trim().parse::<u8>().ok()
    });
    let Some(version) = version else {
        out.push(Violation {
            rule: "WL001",
            name: "wire-compat",
            file: WIRE2_RS.to_string(),
            line: 1,
            message: "could not parse `WIRE2_VERSION: u8 = <n>;` — the layout freeze \
                      cannot be checked"
                .to_string(),
            fix: None,
        });
        return Ok(());
    };
    let frozen: &[&str] = match version {
        2 => WIRE2_V2_LAYOUT,
        3 => WIRE2_V3_LAYOUT,
        // A version this linter has no freeze for: the bumping PR
        // re-freezes the new layout here.
        _ => return Ok(()),
    };

    // Anchor on the declaration, not the (earlier) doc-comment
    // mentions of the constant's name.
    let Some(layout_start) = src.find("const WIRE2_LAYOUT") else {
        out.push(Violation {
            rule: "WL001",
            name: "wire-compat",
            file: WIRE2_RS.to_string(),
            line: 1,
            message: "wire2.rs has no WIRE2_LAYOUT manifest to check the frozen binary \
                      field order against"
                .to_string(),
            fix: None,
        });
        return Ok(());
    };
    let layout_end = src[layout_start..]
        .find("];")
        .map_or(src.len(), |e| layout_start + e);
    let base_line = src[..layout_start].matches('\n').count();
    let literals: Vec<(usize, String)> = string_literals(&src[layout_start..layout_end])
        .into_iter()
        .map(|(l, s)| (base_line + l, s))
        .collect();
    let declared: Vec<&str> = literals.iter().map(|(_, s)| s.as_str()).collect();
    if declared != frozen {
        // Anchor the finding at the first diverging entry when one
        // exists, else at the manifest head (pure add/remove at the
        // tail).
        let (line, detail) = declared
            .iter()
            .zip(frozen)
            .position(|(d, f)| d != f)
            .map_or_else(
                || {
                    (
                        base_line + 1,
                        format!(
                            "{} entries declared, {} frozen",
                            declared.len(),
                            frozen.len()
                        ),
                    )
                },
                |i| {
                    (
                        literals[i].0,
                        format!("`{}` where v{version} froze `{}`", declared[i], frozen[i]),
                    )
                },
            );
        out.push(Violation {
            rule: "WL001",
            name: "wire-compat",
            file: WIRE2_RS.to_string(),
            line,
            message: format!(
                "WIRE2_LAYOUT diverges from the frozen v{version} binary layout ({detail}) \
                 but WIRE2_VERSION is still {version} — layout changes must bump the \
                 version byte so peers renegotiate instead of misdecoding frames"
            ),
            fix: None,
        });
    }
    Ok(())
}

// ---- rule 2: stats-completeness ------------------------------------

/// One counter-aggregation invariant: every numeric field of `source`
/// (in `file`) must appear in `impl agg_impl { fn agg_fn }`, and — when
/// `mirror` is set — as a field of the mirror snapshot struct too.
struct StatsCheck {
    file: &'static str,
    source: &'static str,
    agg_impl: &'static str,
    agg_fn: &'static str,
    mirror: Option<&'static str>,
}

const STATS_CHECKS: &[StatsCheck] = &[
    StatsCheck {
        file: "crates/core/src/plan.rs",
        source: "PlanCounters",
        agg_impl: "PlanCounters",
        agg_fn: "snapshot",
        mirror: Some("PlanCountersSnapshot"),
    },
    StatsCheck {
        file: "crates/core/src/plan.rs",
        source: "PlanCountersSnapshot",
        agg_impl: "PlanCountersSnapshot",
        agg_fn: "merged",
        mirror: None,
    },
    StatsCheck {
        file: "crates/serve/src/runtime.rs",
        source: "EndpointStats",
        agg_impl: "EndpointStats",
        agg_fn: "snapshot",
        mirror: Some("EndpointStatsSnapshot"),
    },
    StatsCheck {
        file: "crates/serve/src/runtime.rs",
        source: "EndpointStatsSnapshot",
        agg_impl: "EndpointStatsSnapshot",
        agg_fn: "merged",
        mirror: None,
    },
    StatsCheck {
        file: "crates/serve/src/runtime.rs",
        source: "ServerStats",
        agg_impl: "ServerStats",
        agg_fn: "snapshot",
        mirror: Some("ServerStatsSnapshot"),
    },
    StatsCheck {
        file: "crates/serve/src/remote.rs",
        source: "TransportCounters",
        agg_impl: "TransportCounters",
        agg_fn: "snapshot",
        mirror: Some("TransportStats"),
    },
    StatsCheck {
        file: "crates/serve/src/remote.rs",
        source: "TransportStats",
        agg_impl: "TransportStats",
        agg_fn: "merged",
        mirror: None,
    },
    StatsCheck {
        file: "crates/serve/src/monitor.rs",
        source: "MonitorSample",
        agg_impl: "MonitorSample",
        agg_fn: "delta",
        mirror: None,
    },
];

fn rule_stats_completeness(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    for check in STATS_CHECKS {
        let Some(src) = SourceFile::load(root, check.file)? else {
            continue;
        };
        let Some((_, body, off)) = struct_body(&src.stripped, check.source) else {
            continue;
        };
        let counters: Vec<FieldInfo> = parse_fields(body, off, &src.stripped)
            .into_iter()
            .filter(|f| f.ty.contains("u64") || f.ty.contains("U64"))
            .collect();
        let agg = impl_fn_body(&src.stripped, check.agg_impl, check.agg_fn);
        let mirror_fields: Option<Vec<String>> = check.mirror.and_then(|m| {
            struct_body(&src.stripped, m).map(|(_, mb, moff)| {
                parse_fields(mb, moff, &src.stripped)
                    .into_iter()
                    .map(|f| f.name)
                    .collect()
            })
        });
        for f in &counters {
            match &agg {
                Some((_, agg_body)) => {
                    if !contains_word(agg_body, &f.name) {
                        out.push(Violation {
                            rule: "WL002",
                            name: "stats-completeness",
                            file: src.rel.clone(),
                            line: f.line,
                            message: format!(
                                "counter `{}::{}` is never folded by `{}::{}` — \
                                 aggregated views silently drop it",
                                check.source, f.name, check.agg_impl, check.agg_fn
                            ),
                            fix: None,
                        });
                    }
                }
                None => out.push(Violation {
                    rule: "WL002",
                    name: "stats-completeness",
                    file: src.rel.clone(),
                    line: f.line,
                    message: format!(
                        "`{}::{}` exists but `{}::{}` was not found to fold it into",
                        check.source, f.name, check.agg_impl, check.agg_fn
                    ),
                    fix: None,
                }),
            }
            if let Some(mirror) = &mirror_fields {
                if !mirror.iter().any(|m| m == &f.name) {
                    out.push(Violation {
                        rule: "WL002",
                        name: "stats-completeness",
                        file: src.rel.clone(),
                        line: f.line,
                        message: format!(
                            "counter `{}::{}` has no matching field on `{}`",
                            check.source,
                            f.name,
                            check.mirror.unwrap_or("?")
                        ),
                        fix: None,
                    });
                }
            }
        }
    }
    Ok(())
}

// ---- rule 3: no-lock-unwrap ----------------------------------------

/// Methods whose `Result` must not be `.unwrap()`/`.expect()`ed on
/// hot paths. `no_args == true` requires an empty argument list, so
/// `io::Read::read(buf)` and friends don't false-positive.
const GUARDED_METHODS: &[(&str, bool)] = &[
    ("lock", true),
    ("try_lock", true),
    ("read", true),
    ("write", true),
    ("recv", true),
    ("try_recv", true),
    ("send", false),
    ("try_send", false),
    ("recv_timeout", false),
];

/// The crate sources WL003 sweeps (unit-test modules excluded).
const HOT_PATH_DIRS: &[&str] = &["crates/serve/src", "crates/core/src"];

fn rule_no_lock_unwrap(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, files)?;
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
        Ok(())
    }
    for dir in HOT_PATH_DIRS {
        let abs = root.join(dir);
        if !abs.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk(&abs, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let Some(src) = SourceFile::load(root, &rel)? else {
                continue;
            };
            scan_guarded_unwraps(&src, out);
        }
    }
    Ok(())
}

fn scan_guarded_unwraps(src: &SourceFile, out: &mut Vec<Violation>) {
    let text = &src.stripped;
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(dot) = text[i..].find('.') {
        let p = i + dot;
        i = p + 1;
        let rest = &text[p + 1..];
        let Some((method, no_args)) = GUARDED_METHODS
            .iter()
            .find(|(m, _)| rest.starts_with(m) && rest[m.len()..].starts_with('('))
            .copied()
        else {
            continue;
        };
        let open = p + 1 + method.len();
        let Some(close) = matching_paren(text, open) else {
            continue;
        };
        if no_args && !text[open + 1..close].trim().is_empty() {
            continue;
        }
        // Skip whitespace after the call, expect `.unwrap()`/`.expect(`.
        let mut q = close + 1;
        while q < bytes.len() && (bytes[q] as char).is_whitespace() {
            q += 1;
        }
        let tail = &text[q..];
        let offender = if tail.starts_with(".unwrap()") {
            "unwrap"
        } else if tail.starts_with(".expect(") {
            "expect"
        } else {
            continue;
        };
        let line = src.line_of_offset(p);
        if src.in_test(line) {
            continue;
        }
        out.push(Violation {
            rule: "WL003",
            name: "no-lock-unwrap",
            file: src.rel.clone(),
            line,
            message: format!(
                ".{method}(…).{offender}() on a hot path — a poisoned lock or closed \
                 channel must degrade, not panic the worker; handle the Err or route \
                 through the shutdown path"
            ),
            fix: None,
        });
    }
}

/// Offset of the `)` matching the `(` at `open`.
fn matching_paren(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i);
                }
            }
            _ => {}
        }
    }
    None
}

// ---- rule 4: schema-registration -----------------------------------

const BENCH_LIB: &str = "crates/bench/src/lib.rs";
const BENCH_BIN_DIR: &str = "crates/bench/src/bin";
const EXPERIMENTS_MD: &str = "EXPERIMENTS.md";
const SCHEMA_PREFIX: &str = "<!-- schema:";

fn rule_schema_registration(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let lib_path = root.join(BENCH_LIB);
    if !lib_path.is_file() {
        return Ok(());
    }
    let lib_src = fs::read_to_string(&lib_path)?;
    // The registry block: every schema literal between the const's
    // opening bracket and its closing `];`.
    let Some(reg_start) = lib_src.find("RECORDED_SCHEMAS") else {
        return Ok(());
    };
    let reg_end = lib_src[reg_start..]
        .find("];")
        .map_or(lib_src.len(), |e| reg_start + e);
    let registry: Vec<(usize, String)> = string_literals(&lib_src[reg_start..reg_end])
        .into_iter()
        .filter(|(_, s)| s.starts_with(SCHEMA_PREFIX))
        .map(|(l, s)| (lib_src[..reg_start].matches('\n').count() + l, s))
        .collect();

    // Every recording binary's schema literal(s).
    let mut declared: Vec<(String, usize, String)> = Vec::new(); // (file, line, schema)
    let bin_dir = root.join(BENCH_BIN_DIR);
    if bin_dir.is_dir() {
        let mut bins: Vec<PathBuf> = fs::read_dir(&bin_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        bins.sort();
        for bin in bins {
            let rel = format!(
                "{BENCH_BIN_DIR}/{}",
                bin.file_name().and_then(|n| n.to_str()).unwrap_or("?")
            );
            let src = fs::read_to_string(&bin)?;
            if !contains_word(&strip_source(&src), "run_recorded_experiment") {
                continue;
            }
            let schemas: Vec<(usize, String)> = string_literals(&src)
                .into_iter()
                .filter(|(_, s)| s.starts_with(SCHEMA_PREFIX))
                .collect();
            if schemas.is_empty() {
                out.push(Violation {
                    rule: "WL004",
                    name: "schema-registration",
                    file: rel.clone(),
                    line: 1,
                    message: "recording binary calls run_recorded_experiment but declares \
                              no `<!-- schema: … -->` header constant"
                        .to_string(),
                    fix: None,
                });
            }
            for (line, schema) in schemas {
                if !registry.iter().any(|(_, r)| *r == schema) {
                    out.push(Violation {
                        rule: "WL004",
                        name: "schema-registration",
                        file: rel.clone(),
                        line,
                        message: format!(
                            "schema {schema:?} is not registered in RECORDED_SCHEMAS \
                             ({BENCH_LIB}); the schema sweep would miss this binary"
                        ),
                        fix: None,
                    });
                }
                declared.push((rel.clone(), line, schema));
            }
        }
    }

    // Stale registry entries: registered but no binary declares them.
    for (line, schema) in &registry {
        if !declared.iter().any(|(_, _, s)| s == schema) {
            out.push(Violation {
                rule: "WL004",
                name: "schema-registration",
                file: BENCH_LIB.to_string(),
                line: *line,
                message: format!(
                    "registry entry {schema:?} is declared by no recording binary \
                     under {BENCH_BIN_DIR}/ — stale after a rename or deletion?"
                ),
                fix: None,
            });
        }
    }

    // Folded `--check-schemas`: every registered section must exist in
    // the committed EXPERIMENTS.md.
    let experiments = fs::read_to_string(root.join(EXPERIMENTS_MD)).unwrap_or_default();
    let cmds: Vec<(usize, String)> = string_literals(&lib_src[reg_start..reg_end])
        .into_iter()
        .filter(|(_, s)| !s.starts_with(SCHEMA_PREFIX))
        .collect();
    for (idx, (_, schema)) in registry.iter().enumerate() {
        if !experiments.contains(schema.as_str()) {
            let cmd = cmds
                .get(idx)
                .map_or("its --record mode".to_string(), |(_, c)| format!("`{c}`"));
            out.push(Violation {
                rule: "WL004",
                name: "schema-registration",
                file: EXPERIMENTS_MD.to_string(),
                line: 1,
                message: format!(
                    "missing recorded section {schema:?}; re-record with {cmd} and commit"
                ),
                fix: None,
            });
        }
    }
    Ok(())
}

// ---- rule 5: vendor-hygiene ----------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum DepSpec {
    /// `path = "…"` (the path, manifest-relative).
    Path(String),
    /// `workspace = true` — resolved through `[workspace.dependencies]`.
    Workspace,
    /// Anything else: bare version string, `version =`, `git =`, … —
    /// all of which need registry or network access.
    External(String),
}

struct DepEntry {
    name: String,
    line: usize,
    spec: DepSpec,
}

/// Parse the dependency entries of one manifest. Handles the forms
/// this workspace uses: `[dependencies]` tables with `name = "ver"`,
/// `name = { … }`, `name.workspace = true`, and `[dependencies.name]`
/// sub-tables.
fn parse_manifest_deps(src: &str) -> Vec<DepEntry> {
    let mut out: Vec<DepEntry> = Vec::new();
    let mut in_dep_table = false;
    let mut sub_table: Option<usize> = None; // index into out
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let t = raw.split('#').next().unwrap_or("").trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('[') {
            let section = t.trim_matches(['[', ']']);
            sub_table = None;
            in_dep_table = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section == "workspace.dependencies";
            if !in_dep_table {
                // `[dependencies.foo]` sub-table form.
                for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                    if let Some(name) = section.strip_prefix(prefix) {
                        out.push(DepEntry {
                            name: name.to_string(),
                            line,
                            spec: DepSpec::External("(empty sub-table)".to_string()),
                        });
                        sub_table = Some(out.len() - 1);
                    }
                }
            }
            continue;
        }
        if let Some(idx) = sub_table {
            if let Some((k, v)) = t.split_once('=') {
                let (k, v) = (k.trim(), v.trim().trim_matches('"'));
                match k {
                    "path" => out[idx].spec = DepSpec::Path(v.to_string()),
                    "workspace" if v == "true" => out[idx].spec = DepSpec::Workspace,
                    _ => {}
                }
            }
            continue;
        }
        if !in_dep_table {
            continue;
        }
        let Some((key, value)) = t.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        let (name, spec) = if let Some(name) = key.strip_suffix(".workspace") {
            (name.trim(), DepSpec::Workspace)
        } else if value.starts_with('{') {
            let spec = if let Some(p) = value.find("path") {
                let after = value[p + "path".len()..].trim_start();
                let path = after
                    .strip_prefix('=')
                    .map(|r| r.trim_start().trim_start_matches('"'))
                    .and_then(|r| r.split('"').next())
                    .unwrap_or("");
                DepSpec::Path(path.to_string())
            } else if value.contains("workspace = true") {
                DepSpec::Workspace
            } else {
                DepSpec::External(value.to_string())
            };
            (key, spec)
        } else {
            (key, DepSpec::External(value.to_string()))
        };
        out.push(DepEntry {
            name: name.to_string(),
            line,
            spec,
        });
    }
    out
}

/// Lexically normalize `dir/path` against the workspace root and
/// return it root-relative, or `None` when it escapes the root.
fn resolve_rel(root: &Path, manifest_dir: &Path, path: &str) -> Option<PathBuf> {
    let joined = manifest_dir.join(path);
    let mut stack: Vec<std::ffi::OsString> = Vec::new();
    for comp in joined.components() {
        match comp {
            std::path::Component::ParentDir => {
                stack.pop()?;
            }
            std::path::Component::CurDir => {}
            c => stack.push(c.as_os_str().to_os_string()),
        }
    }
    let normalized: PathBuf = stack.iter().collect();
    normalized.strip_prefix(root).ok().map(Path::to_path_buf)
}

fn rule_vendor_hygiene(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    let root_manifest = root.join("Cargo.toml");
    if !root_manifest.is_file() {
        return Ok(());
    }
    let root_src = fs::read_to_string(&root_manifest)?;

    // Workspace members: string literals of the `members = [ … ]`
    // array.
    let mut manifests: Vec<String> = vec!["Cargo.toml".to_string()];
    if let Some(members_start) = root_src.find("members") {
        if let Some(close) = root_src[members_start..].find(']') {
            for (_, member) in string_literals(&root_src[members_start..members_start + close]) {
                manifests.push(format!("{member}/Cargo.toml"));
            }
        }
    }

    // `[workspace.dependencies]` — the table `workspace = true`
    // entries resolve through. Parse the root manifest once; entries
    // found under the workspace.dependencies section are keyed by
    // name.
    let mut ws_deps: BTreeMap<String, DepSpec> = BTreeMap::new();
    if let Some(ws_start) = root_src.find("[workspace.dependencies]") {
        let rest = &root_src[ws_start + 1..];
        let ws_end = rest
            .find("\n[")
            .map_or(root_src.len(), |e| ws_start + 1 + e);
        let section = &root_src[ws_start..ws_end];
        for dep in parse_manifest_deps(section) {
            ws_deps.insert(dep.name, dep.spec);
        }
    }

    let in_repo = |rel: &Path| {
        rel.components().next().is_some_and(|c| {
            let c = c.as_os_str();
            c == "vendor" || c == "crates"
        }) || rel.as_os_str().is_empty()
    };

    for rel_manifest in manifests {
        let path = root.join(&rel_manifest);
        if !path.is_file() {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        let manifest_dir = path.parent().unwrap_or(root).to_path_buf();
        for dep in parse_manifest_deps(&src) {
            let verdict: Result<(), String> = match &dep.spec {
                DepSpec::Path(p) => match resolve_rel(root, &manifest_dir, p) {
                    Some(rel) if in_repo(&rel) => Ok(()),
                    Some(rel) => Err(format!(
                        "path dependency resolves to `{}`, outside vendor/ and crates/",
                        rel.display()
                    )),
                    None => Err(format!("path dependency `{p}` escapes the workspace root")),
                },
                DepSpec::Workspace => match ws_deps.get(&dep.name) {
                    Some(DepSpec::Path(p)) => match resolve_rel(root, root, p) {
                        Some(rel) if in_repo(&rel) => Ok(()),
                        _ => Err(format!(
                            "workspace dependency `{}` resolves outside vendor/ and crates/",
                            dep.name
                        )),
                    },
                    Some(other) => Err(format!(
                        "workspace dependency `{}` is not a path entry ({other:?})",
                        dep.name
                    )),
                    None => Err(format!(
                        "`{}` uses workspace = true but [workspace.dependencies] has no \
                         such entry",
                        dep.name
                    )),
                },
                DepSpec::External(v) => Err(format!(
                    "`{} = {v}` needs registry/network access; the build env is offline — \
                     vendor a stand-in under vendor/ instead",
                    dep.name
                )),
            };
            if let Err(why) = verdict {
                out.push(Violation {
                    rule: "WL005",
                    name: "vendor-hygiene",
                    file: rel_manifest.clone(),
                    line: dep.line,
                    message: why,
                    fix: None,
                });
            }
        }
    }
    Ok(())
}

// ---- driver ---------------------------------------------------------

/// Run every rule against the workspace at `root`, returning the
/// surviving violations (allow-marker suppressions already applied),
/// sorted by file/line/rule.
///
/// # Errors
/// Returns any I/O error encountered while reading workspace files.
pub fn lint(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    rule_wire_compat(root, &mut out)?;
    rule_stats_completeness(root, &mut out)?;
    rule_no_lock_unwrap(root, &mut out)?;
    rule_schema_registration(root, &mut out)?;
    rule_vendor_hygiene(root, &mut out)?;
    let out = filter_allowed(root, out);
    let mut out = out;
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

/// Drop violations suppressed by a `lint:allow(WLxxx…)` marker on the
/// offending line or the line directly above it.
fn filter_allowed(root: &Path, violations: Vec<Violation>) -> Vec<Violation> {
    let mut cache: BTreeMap<String, Vec<String>> = BTreeMap::new();
    violations
        .into_iter()
        .filter(|v| {
            let lines = cache.entry(v.file.clone()).or_insert_with(|| {
                fs::read_to_string(root.join(&v.file))
                    .map(|s| s.lines().map(str::to_string).collect())
                    .unwrap_or_default()
            });
            let marker = format!("lint:allow({}", v.rule);
            let hit =
                |idx: usize| idx >= 1 && lines.get(idx - 1).is_some_and(|l| l.contains(&marker));
            !(hit(v.line) || hit(v.line.saturating_sub(1)))
        })
        .collect()
}

/// Apply the mechanical fixes attached to `violations` (currently
/// WL001 `#[serde(default)]` insertion). Returns how many were
/// applied.
///
/// # Errors
/// Returns any I/O error encountered while rewriting files.
pub fn apply_fixes(root: &Path, violations: &[Violation]) -> io::Result<usize> {
    let mut by_file: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    for v in violations {
        if let Some(Fix::InsertLineAbove { file, line, text }) = &v.fix {
            by_file
                .entry(file.clone())
                .or_default()
                .push((*line, text.clone()));
        }
    }
    let mut applied = 0;
    for (file, mut inserts) in by_file {
        let path = root.join(&file);
        let src = fs::read_to_string(&path)?;
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        // Bottom-up so earlier insertions don't shift later targets.
        inserts.sort_by_key(|(line, _)| std::cmp::Reverse(*line));
        for (line, text) in inserts {
            let idx = line.saturating_sub(1).min(lines.len());
            lines.insert(idx, text);
            applied += 1;
        }
        let mut out = lines.join("\n");
        if src.ends_with('\n') {
            out.push('\n');
        }
        fs::write(&path, out)?;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_and_strings() {
        let src = "let a = \"lock().unwrap()\"; // lock().unwrap()\nlet b = 1;\n";
        let s = strip_source(src);
        assert!(!s.contains("unwrap"));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
        assert!(s.contains("let b = 1;"));
    }

    #[test]
    fn strip_handles_raw_strings_and_chars() {
        let src = "let r = r#\"x.lock().unwrap()\"#;\nlet c = '\"';\nlet l: &'static str = \"\";\n";
        let s = strip_source(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("'static"));
        assert_eq!(s.matches('\n').count(), 3);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("a + rows + b", "rows"));
        assert!(!contains_word("coalesced_rows", "rows"));
        assert!(contains_word("self.rows()", "rows"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let mask = test_line_mask(&strip_source(src));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn guarded_scan_matches_channels_and_locks_only() {
        let mk = |code: &str| {
            let stripped = strip_source(code);
            let test_mask = test_line_mask(&stripped);
            SourceFile {
                rel: "x.rs".to_string(),
                lines: code.lines().map(str::to_string).collect(),
                stripped,
                test_mask,
            }
        };
        let mut v = Vec::new();
        scan_guarded_unwraps(&mk("let g = m.lock().unwrap();\n"), &mut v);
        scan_guarded_unwraps(&mk("tx.send(job).expect(\"send\");\n"), &mut v);
        scan_guarded_unwraps(&mk("let n = file.read(&mut buf).unwrap();\n"), &mut v);
        scan_guarded_unwraps(&mk("let x = rx.recv()\n    .unwrap();\n"), &mut v);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "WL003"));
    }

    #[test]
    fn manifest_parser_classifies_specs() {
        let src = "[dependencies]\n\
                   serde = { path = \"vendor/serde\", features = [\"derive\"] }\n\
                   willump.workspace = true\n\
                   rand = \"0.8\"\n\
                   [dev-dependencies]\n\
                   evil = { git = \"https://example.com\" }\n";
        let deps = parse_manifest_deps(src);
        assert_eq!(deps.len(), 4);
        assert_eq!(deps[0].spec, DepSpec::Path("vendor/serde".to_string()));
        assert_eq!(deps[1].spec, DepSpec::Workspace);
        assert!(matches!(deps[2].spec, DepSpec::External(_)));
        assert!(matches!(deps[3].spec, DepSpec::External(_)));
    }

    #[test]
    fn resolve_rel_normalizes_parent_hops() {
        let root = Path::new("/repo");
        let rel = resolve_rel(root, &root.join("vendor/serde"), "../serde_derive").unwrap();
        assert_eq!(rel, Path::new("vendor/serde_derive"));
        assert!(resolve_rel(root, root, "../outside").is_none());
    }
}
